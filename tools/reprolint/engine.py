"""File walking, rule dispatch, and suppression filtering (stage 1).

The heavy lifting — findings, suppressions, baselines, walking, output —
lives in :mod:`lintcore`; this module keeps reprolint's public API
(``lint_source`` / ``lint_file`` / ``lint_paths``) and wires the stage-1
rule set and path policy into it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence

from lintcore.findings import Finding
from lintcore.policy import PathPolicy
from lintcore.suppress import is_suppressed, parse_suppressions
from lintcore.walk import iter_python_files

from reprolint.policy import DEFAULT_POLICY
from reprolint.rules import ALL_RULES, FileInfo

__all__ = ["Finding", "iter_python_files", "lint_file", "lint_paths",
           "lint_source"]


def lint_source(source: str, path: str,
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file's source text.  ``path`` is used for reporting and
    for path-scoped rule exemptions (e.g. ``sim/random.py``)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, rule="PARSE", line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}", text="")]
    lines = source.splitlines()
    suppressions = parse_suppressions(lines, tool="reprolint")
    info = FileInfo(path, tree)
    findings: List[Finding] = []
    selected = rules if rules is not None else sorted(ALL_RULES)
    for rule_id in selected:
        _, checker = ALL_RULES[rule_id]
        for lineno, col, message in checker(tree, info):
            if is_suppressed(suppressions, lineno, rule_id):
                continue
            text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
            findings.append(Finding(path=path, rule=rule_id, line=lineno,
                                    col=col, message=message, text=text))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str,
              rules: Optional[Sequence[str]] = None,
              policy: Optional[PathPolicy] = DEFAULT_POLICY) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    findings = lint_source(source, path, rules=rules)
    if policy is not None:
        findings = [f for f in findings
                    if not policy.exempt(f.path, f.rule)]
    return findings


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[str]] = None,
               policy: Optional[PathPolicy] = DEFAULT_POLICY
               ) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules, policy=policy))
    return findings
