"""File walking, rule dispatch, and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from reprolint.rules import ALL_RULES, FileInfo
from reprolint.suppress import is_suppressed, parse_suppressions


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    rule: str
    line: int
    col: int
    message: str
    #: stripped source text of the offending line — the stable part of the
    #: baseline fingerprint (line numbers drift, code rarely does)
    text: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.rule} {self.message}"


def lint_source(source: str, path: str,
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file's source text.  ``path`` is used for reporting and
    for path-scoped rule exemptions (e.g. ``sim/random.py``)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, rule="PARSE", line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}", text="")]
    lines = source.splitlines()
    suppressions = parse_suppressions(lines)
    info = FileInfo(path, tree)
    findings: List[Finding] = []
    selected = rules if rules is not None else sorted(ALL_RULES)
    for rule_id in selected:
        _, checker = ALL_RULES[rule_id]
        for lineno, col, message in checker(tree, info):
            if is_suppressed(suppressions, lineno, rule_id):
                continue
            text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
            findings.append(Finding(path=path, rule=rule_id, line=lineno,
                                    col=col, message=message, text=text))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str,
              rules: Optional[Sequence[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings
