"""Baseline handling — shared implementation lives in :mod:`lintcore`."""

from lintcore.baseline import (
    FingerprintKey,
    filter_new,
    fingerprint,
    load_baseline,
    write_baseline,
)

__all__ = ["FingerprintKey", "filter_new", "fingerprint", "load_baseline",
           "write_baseline"]
