"""Command-line front end: ``python -m reprolint src/``.

Exit status: 0 when no (non-baselined) findings, 1 when violations were
found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from reprolint.baseline import filter_new, load_baseline, write_baseline
from reprolint.engine import Finding, lint_paths
from reprolint.rules import ALL_RULES, rule_table

DEFAULT_BASELINE = ".reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Determinism lint suite for the DiversiFi simulator.")
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="freeze current findings into the baseline "
                             "file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding output")
    return parser


def main(argv: Optional[List[str]] = None,
         out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rule_table(), file=out)
        return 0

    paths = args.paths or ["src/"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    rules = None
    if args.select:
        rules = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings: List[Finding] = lint_paths(paths, rules=rules)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"reprolint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=out)
        return 0

    if not args.no_baseline and os.path.exists(baseline_path):
        findings = filter_new(findings, load_baseline(baseline_path))

    if not args.quiet:
        for finding in findings:
            print(finding.render(), file=out)
    checked = "all rules" if rules is None else ",".join(rules)
    print(f"reprolint: {len(findings)} new finding(s) ({checked})", file=out)
    return 1 if findings else 0


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
