"""The lint rules.

Determinism rules (DET*) encode the repo-specific invariants the paired
strategy comparisons rest on; generic rules (GEN*) catch correctness
hazards that have bitten discrete-event simulators before.

==========  =============================  =======================================
id          name                           what it flags
==========  =============================  =======================================
DET001      unrouted-rng                   global/unrouted RNG use (``random.*``,
                                           ``np.random.<fn>``, bare
                                           ``default_rng``) anywhere except
                                           ``sim/random.py``
DET002      wall-clock                     wall/monotonic clock or OS entropy
                                           (``time.time``, ``time.perf_counter``,
                                           ``datetime.now``, ``time.sleep``,
                                           ``os.urandom``) in simulation code
DET003      unordered-iteration            iteration over sets inside functions
                                           that schedule events
DET004      fork-start-method              ``fork`` multiprocessing start method
                                           (``get_context("fork")``,
                                           ``set_start_method("fork")``) or a
                                           ``ProcessPoolExecutor`` without an
                                           explicit ``mp_context``
GEN101      mutable-default-arg            ``def f(x=[])`` and friends
GEN102      overbroad-except               bare ``except:`` / ``except Exception``
GEN103      float-time-equality            ``==``/``!=`` on simulated timestamps
GEN104      event-class-missing-slots      hot ``*Event`` classes without
                                           ``__slots__``
GEN105      shadowed-stream-name           one stream-name literal passed to
                                           ``.stream()`` from two call sites
OBS001      adhoc-observability            ``print`` / stdout-stderr writes /
                                           module-global ad-hoc counters inside
                                           the instrumented simulation packages
                                           (route through ``repro.obs``)
==========  =============================  =======================================
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Set, Tuple

# A rule callback receives (tree, context) and yields
# (lineno, col, message) tuples; the engine attaches rule id and file.
RawFinding = Tuple[int, int, str]


class FileInfo:
    """Per-file facts shared by every rule (imports, path classification)."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        posix = path.replace("\\", "/")
        #: sim/random.py is the one module allowed to build raw generators —
        #: it is where the named-stream discipline is *implemented*.
        self.is_stream_factory = posix.endswith("sim/random.py")
        #: The packages instrumented with repro.obs metrics; ad-hoc
        #: observability (print / stdout writes / global counters) there
        #: bypasses the deterministic export path (OBS001).
        self.is_instrumented = any(
            f"src/repro/{pkg}/" in posix for pkg in _INSTRUMENTED_PACKAGES)
        # Names bound to modules of interest by the file's imports.
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.stdlib_random_aliases: Set[str] = set()
        self.datetime_mod_aliases: Set[str] = set()
        self.datetime_cls_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.os_aliases: Set[str] = set()
        # Bare names imported from the random modules (``from numpy.random
        # import default_rng`` / ``from random import choice``).
        self.bare_rng_names: Set[str] = set()
        self.bare_clock_names: Set[str] = set()
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random_aliases.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mod_aliases.add(bound)
                    elif alias.name == "time":
                        self.time_aliases.add(bound)
                    elif alias.name == "os":
                        self.os_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if module == "numpy" and alias.name == "random":
                        self.numpy_random_aliases.add(bound)
                    elif module in ("numpy.random", "random"):
                        self.bare_rng_names.add(bound)
                    elif module == "datetime" and alias.name == "datetime":
                        self.datetime_cls_aliases.add(bound)
                    elif module == "time" and alias.name in _CLOCK_FUNCTIONS:
                        self.bare_clock_names.add(bound)
                    elif module == "os" and alias.name == "urandom":
                        self.bare_clock_names.add(bound)


def _dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; '' for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# DET001 — unrouted RNG
# ---------------------------------------------------------------------------

def check_det001(tree: ast.Module, info: FileInfo):
    """Global/unrouted randomness outside the stream factory."""
    if info.is_stream_factory:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = _dotted(func)
        if not name:
            continue
        head, _, rest = name.partition(".")
        if head in info.stdlib_random_aliases and rest:
            yield (node.lineno, node.col_offset,
                   f"call to stdlib '{name}' bypasses RandomRouter; "
                   "draw from a named stream instead")
        elif head in info.numpy_aliases and rest.startswith("random."):
            yield (node.lineno, node.col_offset,
                   f"call to '{name}' bypasses RandomRouter; "
                   "draw from a named stream instead")
        elif head in info.numpy_random_aliases and rest:
            yield (node.lineno, node.col_offset,
                   f"call to numpy.random '{name}' bypasses RandomRouter; "
                   "draw from a named stream instead")
        elif "." not in name and name in info.bare_rng_names:
            yield (node.lineno, node.col_offset,
                   f"bare '{name}()' creates an unrouted generator; "
                   "inject one from RandomRouter.stream(...)")


# ---------------------------------------------------------------------------
# DET002 — wall clock / OS entropy
# ---------------------------------------------------------------------------

_CLOCK_FUNCTIONS = {
    "time", "time_ns", "sleep", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_DATETIME_FACTORIES = {"now", "utcnow", "today"}


def check_det002(tree: ast.Module, info: FileInfo):
    """Wall-clock reads make runs unreproducible; simulated time only."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if not name:
            continue
        head, _, rest = name.partition(".")
        if head in info.time_aliases and rest in _CLOCK_FUNCTIONS:
            yield (node.lineno, node.col_offset,
                   f"'{name}()' reads the host clock; simulation code "
                   "must use Simulator.now")
        elif head in info.os_aliases and rest == "urandom":
            yield (node.lineno, node.col_offset,
                   "'os.urandom' is nondeterministic OS entropy; "
                   "use RandomRouter")
        elif (head in info.datetime_mod_aliases
              and rest.startswith("datetime.")
              and rest.split(".")[1] in _DATETIME_FACTORIES):
            yield (node.lineno, node.col_offset,
                   f"'{name}()' reads the host clock; simulation code "
                   "must use Simulator.now")
        elif head in info.datetime_cls_aliases and rest in _DATETIME_FACTORIES:
            yield (node.lineno, node.col_offset,
                   f"'{name}()' reads the host clock; simulation code "
                   "must use Simulator.now")
        elif "." not in name and name in info.bare_clock_names:
            yield (node.lineno, node.col_offset,
                   f"'{name}()' reads host clock/entropy; not allowed in "
                   "simulation code")


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding event scheduling
# ---------------------------------------------------------------------------

_SCHEDULING_CALLS = {"call_at", "call_in", "schedule"}


def _function_schedules(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name and name.rsplit(".", 1)[-1] in _SCHEDULING_CALLS:
                return True
    return False


def _is_unordered_iterable(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def check_det003(tree: ast.Module, info: FileInfo):
    """Set iteration order is hash-salted; scheduling from it diverges."""
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _function_schedules(func):
            continue
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_unordered_iterable(node.iter):
                yield (node.lineno, node.col_offset,
                       "iterating an unordered set in a function that "
                       "schedules events; sort it first")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_unordered_iterable(comp.iter):
                        yield (node.lineno, node.col_offset,
                               "comprehension over an unordered set in a "
                               "function that schedules events; sort it "
                               "first")


# ---------------------------------------------------------------------------
# DET004 — fork start method
# ---------------------------------------------------------------------------

_START_METHOD_CALLS = {"get_context", "set_start_method"}


def check_det004(tree: ast.Module, info: FileInfo):
    """Forked workers inherit RNG state and sanitizer digests; use spawn.

    A forked child starts as a copy of the parent at fork time — lazily
    created generators, the in-process memo and the sanitizer's event
    digest all come along, so worker results can depend on what the
    parent happened to do first.  The spawn start method re-imports from
    a clean interpreter.  ``ProcessPoolExecutor`` without an explicit
    ``mp_context`` silently uses the platform default (fork on older
    POSIX Pythons)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if not name:
            continue
        tail = name.rsplit(".", 1)[-1]
        if tail in _START_METHOD_CALLS:
            first = node.args[0] if node.args else None
            if isinstance(first, ast.Constant) and first.value == "fork":
                yield (node.lineno, node.col_offset,
                       f"'{tail}(\"fork\")' inherits parent RNG/sanitizer "
                       "state into workers; use the spawn start method")
        elif tail == "ProcessPoolExecutor":
            if not any(kw.arg == "mp_context" for kw in node.keywords):
                yield (node.lineno, node.col_offset,
                       "ProcessPoolExecutor without mp_context uses the "
                       "platform-default start method (fork on POSIX); "
                       "pass mp_context=multiprocessing.get_context"
                       "('spawn')")


# ---------------------------------------------------------------------------
# GEN101 — mutable default arguments
# ---------------------------------------------------------------------------

def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def check_gen101(tree: ast.Module, info: FileInfo):
    """Mutable defaults are shared across calls — classic state leak."""
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(func.args.defaults)
        defaults += [d for d in func.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_literal(default):
                label = getattr(func, "name", "<lambda>")
                yield (default.lineno, default.col_offset,
                       f"mutable default argument in '{label}'; "
                       "use None and create inside")


# ---------------------------------------------------------------------------
# GEN102 — bare / overbroad except
# ---------------------------------------------------------------------------

def check_gen102(tree: ast.Module, info: FileInfo):
    """Catching everything swallows SimulationError and sanitizer faults."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield (node.lineno, node.col_offset,
                   "bare 'except:' swallows every error including "
                   "engine invariant failures")
        elif isinstance(node.type, ast.Name) \
                and node.type.id in ("Exception", "BaseException"):
            yield (node.lineno, node.col_offset,
                   f"overbroad 'except {node.type.id}' hides engine "
                   "invariant failures; catch the specific error")


# ---------------------------------------------------------------------------
# GEN103 — float equality on simulated timestamps
# ---------------------------------------------------------------------------

_TIME_NAMES = {"now", "time", "deadline", "timestamp", "t"}
_TIME_SUFFIXES = ("_time", "_ts", "_deadline", "_at")


def _looks_time_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return False
    return ident in _TIME_NAMES or ident.endswith(_TIME_SUFFIXES)


def check_gen103(tree: ast.Module, info: FileInfo):
    """Float timestamps accumulate rounding error; == comparisons flap."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _looks_time_like(left) or _looks_time_like(right):
                yield (node.lineno, node.col_offset,
                       "exact ==/!= on a simulated timestamp; compare "
                       "with a tolerance (abs(a - b) < eps)")


# ---------------------------------------------------------------------------
# GEN104 — missing __slots__ on hot Event-like classes
# ---------------------------------------------------------------------------

def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_dataclass_or_namedtuple(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        name = _dotted(decorator.func if isinstance(decorator, ast.Call)
                       else decorator)
        if name.rsplit(".", 1)[-1] == "dataclass":
            return True
    for base in cls.bases:
        if _dotted(base).rsplit(".", 1)[-1] in ("NamedTuple", "Enum"):
            return True
    return False


def check_gen104(tree: ast.Module, info: FileInfo):
    """Hot *Event classes need __slots__; per-instance dicts dominate.

    Event objects are allocated millions of times per run.  Dataclasses
    and NamedTuples are exempt (they manage their own layout)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Event"):
            continue
        if _is_dataclass_or_namedtuple(node) or _has_slots(node):
            continue
        yield (node.lineno, node.col_offset,
               f"hot event class '{node.name}' lacks __slots__")


# ---------------------------------------------------------------------------
# GEN105 — shadowed stream names
# ---------------------------------------------------------------------------

def check_gen105(tree: ast.Module, info: FileInfo):
    """One stream-name literal used at two call sites shares a generator.

    Each component's draws would then perturb the other's — exactly the
    coupling the named-stream design exists to prevent."""
    seen: Dict[str, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "stream"):
            continue
        if not node.args or not isinstance(node.args[0], ast.Constant):
            continue
        value = node.args[0].value
        if not isinstance(value, str):
            continue
        first = seen.get(value)
        if first is None:
            seen[value] = (node.lineno, node.col_offset)
        elif first[0] != node.lineno:
            yield (node.lineno, node.col_offset,
                   f"stream name '{value}' already requested at "
                   f"line {first[0]}; two components would share one "
                   "generator")


# ---------------------------------------------------------------------------
# OBS001 — ad-hoc observability in instrumented packages
# ---------------------------------------------------------------------------

#: Subpackages of src/repro that carry repro.obs instrumentation.  Code
#: here must report through MetricsRegistry / EventLog so that serial,
#: parallel and cached runs export byte-identical metrics; a stray
#: ``print`` interleaves nondeterministically across worker processes and
#: a module-global tally survives from one task to the next in-process.
_INSTRUMENTED_PACKAGES = (
    "sim", "core", "wifi", "voice", "runner", "channel", "net", "traffic",
    "batch", "studies",
)

_COUNTER_SUFFIXES = ("_count", "_counter", "_counts", "_total", "_calls")


def check_obs001(tree: ast.Module, info: FileInfo):
    """Ad-hoc observability bypasses repro.obs; metrics must merge.

    Flags, inside the instrumented simulation packages only:

    * ``print(...)`` calls — worker processes interleave them
      nondeterministically and nothing folds them into the batch digest;
    * ``sys.stdout`` / ``sys.stderr`` ``.write``/``.writelines`` — same
      problem with the lid off;
    * ``global <name>`` where the name looks like a tally
      (``*_count``, ``*_total``, ...) — module-global counters leak
      state across runner tasks sharing a worker process.

    Use ``repro.obs``: a :class:`MetricsRegistry` counter/gauge/histogram
    for numbers, :class:`EventLog` for traces."""
    if not info.is_instrumented:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name.endswith(_COUNTER_SUFFIXES):
                    yield (node.lineno, node.col_offset,
                           f"module-global tally '{name}' leaks across "
                           "runner tasks; use a repro.obs counter")
            continue
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name == "print":
            yield (node.lineno, node.col_offset,
                   "'print' in instrumented simulation code; record a "
                   "repro.obs metric or EventLog entry instead")
        elif (name in ("sys.stdout.write", "sys.stderr.write",
                       "sys.stdout.writelines", "sys.stderr.writelines")):
            yield (node.lineno, node.col_offset,
                   f"'{name}' in instrumented simulation code; route "
                   "output through repro.obs exporters")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: rule id -> (short name, checker)
ALL_RULES: Dict[str, Tuple[str, Callable]] = {
    "DET001": ("unrouted-rng", check_det001),
    "DET002": ("wall-clock", check_det002),
    "DET003": ("unordered-iteration", check_det003),
    "DET004": ("fork-start-method", check_det004),
    "GEN101": ("mutable-default-arg", check_gen101),
    "GEN102": ("overbroad-except", check_gen102),
    "GEN103": ("float-time-equality", check_gen103),
    "GEN104": ("event-class-missing-slots", check_gen104),
    "GEN105": ("shadowed-stream-name", check_gen105),
    "OBS001": ("adhoc-observability", check_obs001),
}


def rule_table() -> str:
    """Human-readable rule listing (``--list-rules``)."""
    width = max(len(rule_id) for rule_id in ALL_RULES)
    lines = []
    for rule_id in sorted(ALL_RULES):
        name, checker = ALL_RULES[rule_id]
        summary = (checker.__doc__ or "").strip().splitlines()[0]
        lines.append(f"{rule_id.ljust(width)}  {name.ljust(26)} {summary}")
    return "\n".join(lines)
