"""reprolint — determinism lint suite for the DiversiFi reproduction.

The whole evaluation rests on bit-for-bit deterministic simulation runs:
paired strategy comparisons are only valid because every stochastic
component draws from its own named :class:`repro.sim.random.RandomRouter`
stream and the engine enforces causality.  ``reprolint`` statically checks
those invariants (plus a handful of generic correctness rules) so that
silent nondeterminism cannot creep back in as the codebase grows.

Run it as::

    PYTHONPATH=tools python -m reprolint src/

Findings can be suppressed per line with ``# reprolint: disable=DET001``
(comma-separated rule ids, or ``all``), and known findings can be frozen
into a baseline file so only *new* violations fail the build
(``--write-baseline`` / ``--baseline``).
"""

from reprolint.engine import Finding, lint_file, lint_paths
from reprolint.rules import ALL_RULES, rule_table

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "lint_file",
    "lint_paths",
    "rule_table",
]
