"""Stage-1 path-scoped exemptions.

``make lint`` runs reprolint over ``src/``, ``tools/`` and ``tests/``.
The determinism rules encode invariants of *simulation* code; applied
verbatim to tests and developer tooling they would flag idioms that are
the whole point of those trees, so the exemptions below are granted once,
with rationale:

* ``tests/``
    - DET001/DET002: tests legitimately build throwaway seeded RNGs and
      measure wall-clock time (e.g. performance smoke tests).
    - DET003: test helpers freely schedule from literal collections.
    - GEN103: engine unit tests assert *exact* event timestamps they
      themselves constructed — exactness is the property under test.
    - GEN105: several tests request the same stream name twice on purpose
      to prove the router's same-generator semantics.
* ``tools/``
    - DET002/DET003: developer tooling runs in real time and schedules
      nothing on the event heap.
* ``src/repro/runner/``
    - deliberately exempt from NOTHING.  The parallel runner is where
      determinism is easiest to lose: worker code must draw randomness
      only through :mod:`repro.sim.random` streams seeded from the spec
      (DET001), must not read wall clocks except the explicitly
      suppressed telemetry timers (DET002), and must never use the fork
      start method (DET004, added with the runner).  The empty entry
      records that decision so nobody "fixes" runner lint noise with a
      path exemption instead of fixing the code.
* ``src/repro/batch/``
    - same zero-exemption stance as the runner, for the same reason:
      batch blocks execute inside runner workers and their results are
      content-address cached, so any stray RNG, wall-clock read or
      ad-hoc print poisons digests across serial/parallel/warm-cache
      runs.
* ``src/repro/net/``
    - zero exemptions, same reasoning again: the control plane
      (topology, rolling link metrics, QoE controller) runs inside
      cached runner tasks, and its decisions — reroutes, middlebox
      start/stop — feed the digested payload.  A single unseeded draw
      or wall-clock read in a poll loop would make the sdn-smoke
      digests diverge between serial and --jobs runs.
* ``src/repro/studies/``
    - zero exemptions: the population backend's pass-1/pass-2/nettest
      block tasks execute inside runner workers with content-addressed
      caching, and the scalar paths share bit-parity contracts with
      them, so the whole package gets the runner's stance — any stray
      print, unseeded draw or wall-clock read would break the
      population-smoke digest equality.

Everything else (mutable defaults, overbroad excepts, slot-less Event
classes...) applies everywhere, including to the linters themselves.

Entries may also name a single ``.py`` file (see
:class:`lintcore.policy.PathPolicy`) for one-file exceptions; this
policy currently needs none.
"""

from __future__ import annotations

from lintcore.policy import PathPolicy

DEFAULT_POLICY = PathPolicy((
    ("tests/", ("DET001", "DET002", "DET003", "GEN103", "GEN105")),
    ("tools/", ("DET002", "DET003")),
    ("src/repro/runner/", ()),
    ("src/repro/batch/", ()),
    ("src/repro/net/", ()),
    ("src/repro/studies/", ()),
))
