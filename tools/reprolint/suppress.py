"""Suppression comments — shared implementation lives in :mod:`lintcore`.

reprolint findings are silenced with ``# reprolint: disable=RULE``; a
``# reproflow: disable=...`` comment never affects stage 1.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from lintcore.suppress import is_suppressed
from lintcore.suppress import parse_suppressions as _parse

__all__ = ["is_suppressed", "parse_suppressions"]


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    return _parse(lines, tool="reprolint")
