"""``python -m reprolint`` entry point."""

import sys

from reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
