#!/usr/bin/env python
"""Compare a fresh benchmark run against the committed baseline.

``make bench`` freezes the perf trajectory into ``BENCH_runner.json``;
this tool answers "did we slow down?"::

    PYTHONPATH=src python tools/bench_compare.py            # run fresh, compare
    PYTHONPATH=src python tools/bench_compare.py --scale 0.5
    python tools/bench_compare.py --fresh other.json        # compare two files

For every subsystem in the baseline it compares ``sessions_per_s`` for
the cache-cold phase (simulation throughput) and the cache-warm phase
(cache-read throughput).  A phase that lost more than ``--threshold``
(default 25%) of its baseline rate is a regression; the exit status is 1
when any phase regressed, so the target is scriptable.

The baseline carries absolute rates from whatever machine ran ``make
bench`` last, so cross-machine comparisons are *informational*: CI runs
this step with ``continue-on-error`` and the numbers are a tripwire for
order-of-magnitude cliffs, not a gate on noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

DEFAULT_BASELINE = "BENCH_runner.json"
DEFAULT_THRESHOLD = 0.25
PHASES = ("cache_cold", "cache_warm")


@dataclass(frozen=True)
class PhaseComparison:
    """One (subsystem, phase) pair's baseline-vs-fresh verdict."""

    subsystem: str
    phase: str
    baseline_rate: Optional[float]
    fresh_rate: Optional[float]
    status: str   # "ok" | "regression" | "improved" | "missing"

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline_rate or self.fresh_rate is None:
            return None
        return self.fresh_rate / self.baseline_rate


def _rate(payload: Dict[str, Any], subsystem: str,
          phase: str) -> Optional[float]:
    entry = payload.get("subsystems", {}).get(subsystem, {})
    value = entry.get(phase, {}).get("sessions_per_s")
    return float(value) if value is not None else None


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            threshold: float = DEFAULT_THRESHOLD
            ) -> List[PhaseComparison]:
    """Every baseline (subsystem, phase) judged against ``fresh``.

    A subsystem the fresh run never measured is reported as ``missing``
    (it counts as a regression: silently dropping a workload from the
    matrix must not read as "no slowdown").  Subsystems only present in
    the fresh run are ignored — they have no trajectory to regress.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    rows: List[PhaseComparison] = []
    for subsystem in sorted(baseline.get("subsystems", {})):
        for phase in PHASES:
            base = _rate(baseline, subsystem, phase)
            new = _rate(fresh, subsystem, phase)
            if base is None:
                continue   # baseline never measured this phase
            if new is None:
                status = "missing"
            elif new < base * (1.0 - threshold):
                status = "regression"
            elif new > base * (1.0 + threshold):
                status = "improved"
            else:
                status = "ok"
            rows.append(PhaseComparison(subsystem, phase, base, new,
                                        status))
    return rows


def regressions(rows: Sequence[PhaseComparison]
                ) -> List[PhaseComparison]:
    return [r for r in rows if r.status in ("regression", "missing")]


def render(rows: Sequence[PhaseComparison], threshold: float) -> str:
    lines = [f"bench-compare (threshold: -{threshold * 100:.0f}%)"]
    for row in rows:
        fresh = ("missing" if row.fresh_rate is None
                 else f"{row.fresh_rate:>10.3f}")
        ratio = ("" if row.ratio is None
                 else f"  ({row.ratio:.0%} of base)")
        lines.append(
            f"  {row.subsystem:16s} {row.phase:10s} "
            f"base {row.baseline_rate:>10.3f}/s  fresh {fresh}/s"
            f"{ratio}  [{row.status}]")
    bad = regressions(rows)
    lines.append(f"{len(bad)} regression(s) across {len(rows)} "
                 f"measurement(s)")
    return "\n".join(lines)


def _load(path: Path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Diff a fresh benchmark run against the committed "
                    "BENCH_runner.json trajectory baseline.")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON (default: %(default)s)")
    parser.add_argument("--fresh", default=None, metavar="FILE",
                        help="pre-recorded fresh results; when omitted "
                             "the benchmark matrix runs in-process "
                             "(needs repro on PYTHONPATH)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="regression fraction (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="seed-count scale for the in-process run "
                             "(default: 1.0)")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"bench_compare: no baseline at {baseline_path}; "
              f"run 'make bench' first", file=sys.stderr)
        return 2
    baseline = _load(baseline_path)

    if args.fresh is not None:
        fresh = _load(Path(args.fresh))
    else:
        from repro.bench import run_bench
        fresh = run_bench(scale=args.scale)

    rows = compare(baseline, fresh, threshold=args.threshold)
    print(render(rows, args.threshold))
    return 1 if regressions(rows) else 0


if __name__ == "__main__":
    sys.exit(main())
