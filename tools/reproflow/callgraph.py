"""Pass 3a: the project-wide call graph with per-function effect summaries.

Built once per analysis run on top of the pass-1 :class:`ProjectIndex`
(the trees are parsed exactly once and shared by passes 1–3).  Every
function and method in every module becomes a :class:`FunctionNode`
carrying:

* **call edges** — resolved the same way pass 2 resolves schemas:
  same-module definitions first, then the unique project-wide definition
  of that name; two *different* definitions make the name ambiguous and
  the edge is dropped rather than guessed.  ``self.m(...)`` prefers the
  enclosing class's own method.
* **local effect sites** — the determinism-relevant things the function
  does *directly*: writing module/global state, reading the wall clock,
  drawing from an unrouted RNG, iterating an unordered collection, and
  (for the stream taint) whether it *returns* a ``RandomRouter`` stream.

Clock reads on lines carrying ``# reprolint: disable=DET002`` are
*sanctioned telemetry* (the repo-wide convention for wall-time that never
feeds back into simulated behaviour) and are excluded from the effect
summary — a task is not impure for reporting how long it took.

Task roots — the ``"module:function"`` entry points handed to
``repro.runner.map_task`` / ``map_configs`` / ``RunSpec.build`` — are
collected here too, resolving string constants through module-level
assignments (``OFFICE_TASK = "repro...:office_run_metrics"``).

For pass 4 every module additionally gets a synthetic ``<module>`` node
whose "body" is the module scope minus any ``if __name__ == "__main__"``
guard — exactly the code a spawned worker replays when it imports the
module.  Its effect summary is what IMP401 checks; its call edges make
import-time work transitive (``CONST = helper()`` at module scope
carries ``helper``'s effects).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reproflow.index import ProjectIndex

#: effect kinds recorded on a node (and propagated by pass 3b)
GLOBAL_WRITE = "global-write"
CLOCK_READ = "clock-read"
UNROUTED_RNG = "unrouted-rng"
UNORDERED_ITER = "unordered-iter"

_CLOCK_FUNCTIONS = frozenset({
    "time", "time_ns", "sleep", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "add", "update", "setdefault",
    "pop", "popleft", "remove", "discard", "clear", "insert",
})
#: calls a task entry point is submitted through
TASK_SUBMIT_NAMES = frozenset({"map_task", "map_configs"})
#: RNG constructors that are deterministic when given an explicit seed —
#: building one *with arguments* is routing, not an unrouted draw (the
#: RandomRouter itself derives streams via seeded default_rng)
_SEEDED_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "SeedSequence", "Generator", "PCG64", "Philox",
    "SFC64", "MT19937", "RandomState", "Random",
})

_DET002_SANCTION = re.compile(r"#\s*reprolint:\s*disable=[^#]*\bDET002\b")


@dataclass
class EffectSite:
    """One concrete occurrence of an effect inside a function body."""

    kind: str
    lineno: int
    col: int
    detail: str
    #: the module-level name (or other stable token) the effect touches,
    #: when one exists — pass 4 propagates some kinds per-symbol so one
    #: task root can report every distinct offender, not just the first
    symbol: Optional[str] = None


@dataclass
class CallSite:
    """One call edge candidate (already resolved to a node id)."""

    callee: str          # FunctionNode id
    lineno: int
    col: int


@dataclass
class FunctionNode:
    """One function or method in the project."""

    id: str              # "<path>::<qualname>"
    name: str
    qualname: str
    path: str
    lineno: int
    enclosing_class: Optional[str] = None
    effects: List[EffectSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: the function's return value is (or contains) a RandomRouter stream
    returns_stream: bool = False
    #: the function returns a bare set/frozenset
    returns_set: bool = False
    #: the definition itself (shared with the parsed tree, not a copy)
    func_ast: Optional[ast.AST] = field(default=None, repr=False)


@dataclass
class TaskRoot:
    """One runner-submission call site naming a task entry point."""

    path: str
    lineno: int
    col: int
    entry: str                   # "module:function" as written
    node_id: Optional[str]       # resolved FunctionNode, if the module
                                 # is part of the analyzed tree
    submit_name: str             # map_task / map_configs / RunSpec.build


class CallGraph:
    """Every function in the project plus resolved call edges."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.nodes: Dict[str, FunctionNode] = {}
        self.task_roots: List[TaskRoot] = []
        #: unqualified name -> node ids (module-level functions)
        self._functions_by_name: Dict[str, List[str]] = {}
        #: method name -> node ids
        self._methods_by_name: Dict[str, List[str]] = {}
        #: per-module: name -> node id for module-level functions
        self._module_functions: Dict[str, Dict[str, str]] = {}
        #: per-module: (class, method) -> node id
        self._class_methods: Dict[Tuple[str, str, str], str] = {}
        #: dotted module name -> path  ("repro.sim.random" -> "src/...")
        self._module_paths: Dict[str, str] = {}
        #: per-module: locally aliased import names (resolution poison)
        self._aliased: Dict[str, Set[str]] = {}
        #: per-module: module-level string constants (task indirection)
        self._str_constants: Dict[str, Dict[str, str]] = {}
        #: path -> synthetic ``<module>`` node id (import-time execution)
        self.module_nodes: Dict[str, str] = {}
        #: per-module: names assigned at module scope (pass 4 reads this)
        self._module_assigned: Dict[str, Set[str]] = {}

    # -- queries -------------------------------------------------------

    def node(self, node_id: str) -> Optional[FunctionNode]:
        return self.nodes.get(node_id)

    def resolve_entry(self, entry: str) -> Optional[str]:
        """Resolve a ``"module:function"`` task entry to a node id."""
        module, sep, func = entry.partition(":")
        if not sep:
            return None
        path = self._module_paths.get(module)
        if path is None:
            # files analyzed by absolute path keep their full dotted
            # prefix; a unique suffix match is still unambiguous
            suffix = "." + module
            candidates = [p for m, p in self._module_paths.items()
                          if m.endswith(suffix)]
            if len(candidates) != 1:
                return None
            path = candidates[0]
        return self._module_functions.get(path, {}).get(func)

    def callees(self, node_id: str) -> List[CallSite]:
        node = self.nodes.get(node_id)
        return list(node.calls) if node is not None else []


def dotted_module_name(path: str) -> str:
    """``src/repro/sim/random.py`` -> ``repro.sim.random``.

    Leading ``src/`` / ``tools/`` roots are stripped (both are import
    roots in this repo); other prefixes are kept verbatim so fixture
    paths like ``pkg/module.py`` resolve as ``pkg.module``.
    """
    posix = path.replace("\\", "/")
    for root in ("src/", "tools/"):
        marker = f"/{root}"
        if posix.startswith(root):
            posix = posix[len(root):]
            break
        if marker in posix:
            posix = posix.split(marker, 1)[1]
            break
    if posix.endswith(".py"):
        posix = posix[:-3]
    if posix.endswith("/__init__"):
        posix = posix[: -len("/__init__")]
    return posix.replace("/", ".")


def build_callgraph(trees: Dict[str, ast.Module],
                    sources: Dict[str, str],
                    index: ProjectIndex) -> CallGraph:
    """Build nodes, effects, and resolved edges for every module."""
    graph = CallGraph(index)
    for path in sorted(trees):
        _collect_module(graph, path, trees[path], sources.get(path, ""))
    for path in sorted(trees):
        _resolve_module_calls(graph, path, trees[path])
        _collect_task_roots(graph, path, trees[path])
    _propagate_returns_stream(graph)
    return graph


# ---------------------------------------------------------------- pass A:
# nodes, local effects, name tables

def _collect_module(graph: CallGraph, path: str, tree: ast.Module,
                    source: str) -> None:
    graph._module_paths.setdefault(dotted_module_name(path), path)
    graph._module_functions.setdefault(path, {})
    aliased: Set[str] = set()
    module_names: Set[str] = set()
    str_constants: Dict[str, str] = {}
    sanctioned = _sanctioned_clock_lines(source)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.asname and alias.asname != alias.name:
                    aliased.add(alias.asname)
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                module_names.add(target.id)
                value = getattr(stmt, "value", None)
                if isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    str_constants[target.id] = value.value
    graph._aliased[path] = aliased
    graph._str_constants[path] = str_constants
    graph._module_assigned[path] = module_names

    imports = _ImportInfo(tree)

    def visit(body: Sequence[ast.stmt], prefix: str,
              enclosing_class: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                node_id = f"{path}::{qualname}"
                fn = FunctionNode(
                    id=node_id, name=stmt.name, qualname=qualname,
                    path=path, lineno=stmt.lineno,
                    enclosing_class=enclosing_class, func_ast=stmt)
                _collect_effects(fn, stmt, module_names, imports,
                                 sanctioned)
                graph.nodes[node_id] = fn
                if enclosing_class is None and prefix == "":
                    graph._module_functions[path][stmt.name] = node_id
                    graph._functions_by_name.setdefault(
                        stmt.name, []).append(node_id)
                if enclosing_class is not None:
                    graph._class_methods[
                        (path, enclosing_class, stmt.name)] = node_id
                    graph._methods_by_name.setdefault(
                        stmt.name, []).append(node_id)
                visit(stmt.body, f"{qualname}.", None)
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, f"{prefix}{stmt.name}.", stmt.name)
            else:
                # control flow at module/class level may nest defs
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        visit([child], prefix, enclosing_class)

    visit(tree.body, "", None)

    # the synthetic <module> node: what importing this module *executes*
    # (a __main__ guard never runs on a worker import, and def/class
    # statements only *bind* — their bodies are the functions' own
    # scope, already covered by their own nodes)
    import_body = [stmt for stmt in tree.body
                   if not _is_main_guard(stmt)
                   and not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
    module_ast = ast.Module(body=import_body, type_ignores=[])
    module_node = FunctionNode(
        id=f"{path}::<module>", name="<module>", qualname="<module>",
        path=path, lineno=1, func_ast=module_ast)
    _collect_effects(module_node, module_ast, module_names, imports,
                     sanctioned)
    graph.nodes[module_node.id] = module_node
    graph.module_nodes[path] = module_node.id


def _is_main_guard(stmt: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` (either comparison order)."""
    if not isinstance(stmt, ast.If) \
            or not isinstance(stmt.test, ast.Compare):
        return False
    test = stmt.test
    if len(test.ops) != 1 or not isinstance(test.ops[0], ast.Eq):
        return False
    sides = [test.left] + list(test.comparators)
    names = {n.id for n in sides if isinstance(n, ast.Name)}
    consts = {c.value for c in sides if isinstance(c, ast.Constant)}
    return "__name__" in names and "__main__" in consts


def _sanctioned_clock_lines(source: str) -> Set[int]:
    lines: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _DET002_SANCTION.search(line):
            lines.add(lineno)
    return lines


class _ImportInfo:
    """Names the module binds to clock/RNG providers (reprolint's model,
    condensed)."""

    def __init__(self, tree: ast.Module):
        self.time_mods: Set[str] = set()
        self.datetime_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.random_mods: Set[str] = set()
        self.numpy_mods: Set[str] = set()
        self.numpy_random_mods: Set[str] = set()
        self.bare_rng: Set[str] = set()
        self.bare_clock: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_mods.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mods.add(bound)
                    elif alias.name == "random":
                        self.random_mods.add(bound)
                    elif alias.name == "numpy.random" and alias.asname:
                        self.numpy_random_mods.add(alias.asname)
                    elif alias.name == "numpy" \
                            or alias.name.startswith("numpy."):
                        self.numpy_mods.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if module == "numpy" and alias.name == "random":
                        self.numpy_random_mods.add(bound)
                    elif module in ("numpy.random", "random"):
                        self.bare_rng.add(bound)
                    elif module == "datetime" \
                            and alias.name == "datetime":
                        self.datetime_classes.add(bound)
                    elif module == "time" \
                            and alias.name in _CLOCK_FUNCTIONS:
                        self.bare_clock.add(bound)
                    elif module == "os" and alias.name == "urandom":
                        self.bare_clock.add(bound)


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _own_body(func: ast.AST):
    """Walk a function's own statements, not nested function/class
    scopes (those are their own nodes)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _collect_effects(fn: FunctionNode, func: ast.AST,
                     module_names: Set[str], imports: _ImportInfo,
                     sanctioned: Set[int]) -> None:
    global_names: Set[str] = set()
    for node in _own_body(func):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            fn.effects.append(EffectSite(
                GLOBAL_WRITE, node.lineno, node.col_offset,
                f"writes enclosing-scope state via 'nonlocal "
                f"{', '.join(node.names)}'"))

    for node in _own_body(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name) \
                        and base.id in global_names:
                    fn.effects.append(EffectSite(
                        GLOBAL_WRITE, node.lineno, node.col_offset,
                        f"assigns module global '{base.id}'",
                        symbol=base.id))
                elif isinstance(target, (ast.Attribute, ast.Subscript)) \
                        and isinstance(base, ast.Name) \
                        and base.id in module_names \
                        and base.id not in _local_bindings(func):
                    fn.effects.append(EffectSite(
                        GLOBAL_WRITE, node.lineno, node.col_offset,
                        f"mutates module-level object '{base.id}'",
                        symbol=base.id))
        elif isinstance(node, ast.Call):
            _call_effects(fn, node, module_names, imports, sanctioned,
                          _local_bindings(func))

    fn.returns_set = _returns_matching(func, _is_set_expr)


def _local_bindings(func: ast.AST) -> Set[str]:
    """Parameter and locally assigned names (shadow module globals)."""
    cached = getattr(func, "_reproflow_locals", None)
    if cached is not None:
        return cached
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in _own_body(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) \
                            and isinstance(leaf.ctx, ast.Store):
                        names.add(leaf.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
    func._reproflow_locals = names   # type: ignore[attr-defined]
    return names


def _call_effects(fn: FunctionNode, call: ast.Call,
                  module_names: Set[str], imports: _ImportInfo,
                  sanctioned: Set[int], local_names: Set[str]) -> None:
    name = _dotted(call.func)
    if not name:
        return
    head, _, rest = name.partition(".")
    # clock reads (sanctioned telemetry lines excluded)
    is_clock = (
        (head in imports.time_mods and rest in _CLOCK_FUNCTIONS)
        or (head in imports.datetime_mods and rest.startswith("datetime.")
            and rest.split(".")[1] in _DATETIME_FACTORIES)
        or (head in imports.datetime_classes
            and rest in _DATETIME_FACTORIES)
        or ("." not in name and name in imports.bare_clock))
    if is_clock:
        if call.lineno not in sanctioned:
            fn.effects.append(EffectSite(
                CLOCK_READ, call.lineno, call.col_offset,
                f"reads the wall clock via '{name}()'"))
        return
    # unrouted RNG — but constructing a generator from an explicit seed
    # (default_rng(seq), SeedSequence(entropy=...)) is deterministic
    # routing, not a draw
    tail = name.rsplit(".", 1)[-1]
    if tail in _SEEDED_RNG_CONSTRUCTORS and (call.args or call.keywords):
        return
    is_rng = (
        (head in imports.random_mods and rest)
        or (head in imports.numpy_mods and rest.startswith("random."))
        or (head in imports.numpy_random_mods and rest)
        or ("." not in name and name in imports.bare_rng))
    if is_rng:
        fn.effects.append(EffectSite(
            UNROUTED_RNG, call.lineno, call.col_offset,
            f"draws from unrouted RNG '{name}()'"))
        return
    # mutation of module-level containers (CACHE.append, REGISTRY[k]=...)
    if isinstance(call.func, ast.Attribute) \
            and call.func.attr in _MUTATOR_METHODS:
        base = call.func.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in module_names \
                and base.id not in local_names:
            fn.effects.append(EffectSite(
                GLOBAL_WRITE, call.lineno, call.col_offset,
                f"mutates module-level container '{base.id}' via "
                f".{call.func.attr}()", symbol=base.id))


def _is_set_expr(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference")
    return False


def _returns_matching(func: ast.AST, predicate) -> bool:
    for node in _own_body(func):
        if isinstance(node, ast.Return) and predicate(node.value):
            return True
    return False


# ---------------------------------------------------------------- pass B:
# call edges + task roots

def _resolve_module_calls(graph: CallGraph, path: str,
                          tree: ast.Module) -> None:
    aliased = graph._aliased.get(path, set())

    def resolve(call: ast.Call,
                fn: FunctionNode) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in aliased:
                return None
            local = graph._module_functions.get(path, {}).get(name)
            if local is not None:
                return local
            candidates = graph._functions_by_name.get(name, [])
            if len(candidates) == 1:
                return candidates[0]
            return None   # absent or ambiguous: never guess
        if isinstance(func, ast.Attribute):
            method = func.attr
            # self.m() / cls.m(): the enclosing class's own method wins
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ("self", "cls") \
                    and fn.enclosing_class is not None:
                own = graph._class_methods.get(
                    (path, fn.enclosing_class, method))
                if own is not None:
                    return own
            candidates = graph._methods_by_name.get(method, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None

    for fn in [n for n in graph.nodes.values() if n.path == path]:
        func_ast = fn.func_ast
        if func_ast is None:
            continue
        for node in _own_body(func_ast):
            if isinstance(node, ast.Call):
                callee = resolve(node, fn)
                if callee is not None and callee != fn.id:
                    fn.calls.append(CallSite(
                        callee=callee, lineno=node.lineno,
                        col=node.col_offset))
        # a nested function is wired as a callee of its enclosing
        # function: closures are typically invoked (or registered as
        # callbacks) by the scope that defines them
        for child in ast.iter_child_nodes(func_ast):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_id = f"{path}::{fn.qualname}.{child.name}"
                if nested_id in graph.nodes:
                    fn.calls.append(CallSite(
                        callee=nested_id, lineno=child.lineno,
                        col=child.col_offset))


def _collect_task_roots(graph: CallGraph, path: str,
                        tree: ast.Module) -> None:
    constants = graph._str_constants.get(path, {})
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if tail in TASK_SUBMIT_NAMES:
            entry_expr: Optional[ast.expr] = \
                node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "task":
                    entry_expr = keyword.value
        elif tail == "build" and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "RunSpec":
            entry_expr = node.args[0] if node.args else None
            tail = "RunSpec.build"
        else:
            continue
        entry = None
        if isinstance(entry_expr, ast.Constant) \
                and isinstance(entry_expr.value, str):
            entry = entry_expr.value
        elif isinstance(entry_expr, ast.Name):
            entry = constants.get(entry_expr.id)
        if entry is None or ":" not in entry:
            continue
        graph.task_roots.append(TaskRoot(
            path=path, lineno=node.lineno, col=node.col_offset,
            entry=entry, node_id=graph.resolve_entry(entry),
            submit_name=tail or ""))


# ---------------------------------------------------------------- stream
# return summaries (needed before taint: helpers that hand back streams)

def _propagate_returns_stream(graph: CallGraph) -> None:
    """Fixpoint over 'this function returns a RandomRouter stream'.

    Base case: a return whose value is an ``<expr>.stream(...)`` call
    (the named-stream factory — the one attribute spelled ``stream`` in
    this codebase, same convention GEN105 leans on).  Inductive case: a
    return of a call to a function already known to return a stream —
    this is what carries a stream created in ``sim/random.py`` through a
    helper in another module and into the leak rules.
    """

    def returns_stream_expr(node: Optional[ast.expr], path: str) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "stream":
            return True
        if isinstance(node.func, ast.Name):
            target = graph._module_functions.get(path, {}).get(
                node.func.id)
            if target is None:
                candidates = graph._functions_by_name.get(
                    node.func.id, [])
                if len(candidates) == 1:
                    target = candidates[0]
            if target is not None:
                callee = graph.nodes.get(target)
                return callee is not None and callee.returns_stream
        return False

    changed = True
    while changed:
        changed = False
        for fn in graph.nodes.values():
            if fn.returns_stream or fn.func_ast is None:
                continue
            for node in _own_body(fn.func_ast):
                if isinstance(node, ast.Return) \
                        and returns_stream_expr(node.value, fn.path):
                    fn.returns_stream = True
                    changed = True
                    break
