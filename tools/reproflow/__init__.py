"""reproflow — stage 2 of the static-analysis pipeline.

Where :mod:`reprolint` scans one file at a time for determinism hazards,
reproflow runs a **two-pass, project-wide semantic analysis**:

* pass 1 (:mod:`reproflow.index`) walks every target file and builds a
  :class:`~reproflow.index.ProjectIndex` — dataclass field schemas with
  units inferred from the ``_s``/``_ms``/``_bytes``/``_dbm``/``_mw``/
  ``_hz`` suffix convention, function and method signatures, and the
  packet/delivery-record class roster;
* pass 2 (:mod:`reproflow.rules`) runs semantic rule families over each
  file with the index in hand:

  - **UNT** — unit consistency: mixed-unit arithmetic and comparisons,
    unit-mismatched call arguments and assignments;
  - **LIF** — packet lifecycle: mutation after handoff, hand-rolled
    replicas, delay reads without a ``delivered`` guard;
  - **CFG** — config schemas: keyword arguments and config-dict keys
    validated against dataclass schemas across modules.

Findings are suppressed with ``# reproflow: disable=RULE`` comments and
baselined in ``.reproflow-baseline.json`` (same machinery as reprolint,
shared via :mod:`lintcore`).
"""

from reproflow.engine import analyze_paths, analyze_source
from reproflow.index import ProjectIndex, build_index
from reproflow.rules import ALL_RULES, rule_table

__all__ = [
    "ALL_RULES",
    "ProjectIndex",
    "analyze_paths",
    "analyze_source",
    "build_index",
    "rule_table",
]
