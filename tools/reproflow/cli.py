"""Command-line front end: ``python -m reproflow src/ tools/ tests/``.

Exit status: 0 when no (non-baselined) findings, 1 when violations were
found, 2 on usage errors.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from lintcore import cli as shared
from lintcore.findings import Finding

from reproflow.engine import analyze_paths
from reproflow.rules import ALL_RULES, rule_table

DEFAULT_BASELINE = ".reproflow-baseline.json"


def _analyze(paths: Sequence[str],
             rules: Optional[Sequence[str]]) -> List[Finding]:
    return analyze_paths(paths, rules=rules)


def main(argv: Optional[List[str]] = None,
         out=sys.stdout) -> int:
    return shared.run(
        prog="reproflow",
        description="Project-wide semantic analysis (units, packet "
                    "lifecycle, config schemas) for the DiversiFi "
                    "simulator.",
        all_rules=ALL_RULES,
        rule_table=rule_table,
        lint_paths=_analyze,
        default_baseline=DEFAULT_BASELINE,
        argv=argv,
        out=out)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
