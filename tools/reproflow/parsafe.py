"""Pass 4: concurrency & serialization safety for the parallel runner.

Everything ``repro.runner`` does crosses the ``spawn`` process boundary:
the task entry string is resolved by ``importlib`` inside a fresh
interpreter, the payload comes back through pickle, and the
content-addressed ``RunSpec`` key is the *only* thing deciding whether a
cached result may stand in for a fresh execution.  Python fails late on
all three — an unpicklable payload raises at submit time, an import-time
side effect replays once per worker, and a cache key that misses an
input silently replays stale results.  Pass 4 makes those failures
static, reusing the pass-3 call graph, effect summaries, and the
synthetic ``<module>`` nodes (what a worker import actually executes).

==========  ===============================  ====================================
id          name                             what it flags
==========  ===============================  ====================================
SER301      unpicklable-task-callable        a lambda / nested function / bound
                                             method / function object submitted to
                                             ``map_task``/``map_configs``/
                                             ``RunSpec.build``, or an entry string
                                             naming a dotted (nested/method)
                                             attribute — the worker cannot resolve
                                             or unpickle it under spawn
SER302      stateful-task-default            a runner task parameter default that
                                             constructs a handle/lock/queue/RNG —
                                             evaluated once per worker process and
                                             shared by every run scheduled there
SER303      task-captures-handle             a runner task transitively uses a
                                             module-level open handle / lock —
                                             each spawn worker re-creates its own
                                             copy, so cross-process coordination
                                             through it silently fails
IMP401      import-time-effect               module-scope clock read / unrouted
                                             RNG draw / env mutation in a module
                                             workers import to resolve a task
IMP402      cross-process-global-read        a function reads a module global
                                             that a runner task mutates — the
                                             mutation happens in worker processes
                                             and is never visible to the reader
KEY501      cache-key-escape                 a runner task's behaviour depends on
                                             state outside the RunSpec key: env
                                             vars, call-time file reads, module
                                             globals poked by other modules, or
                                             the ``x = KNOB if x is None else x``
                                             shadow-config fallback
KEY502      dynamic-dispatch-escape          task-reachable code selects a callee
                                             via non-constant ``getattr`` /
                                             ``import_module`` / ``globals()[...]``
                                             — the executed code escapes the
                                             spec's code fingerprint
==========  ===============================  ====================================

The cache-key reasoning behind KEY501 is worth pinning down: a def-time
signature default (``def task(x=KNOB)``) is *sound* — the default is
source text, and the RunSpec key folds in a fingerprint of all source
text.  The unsound variant is the call-time read (``x = KNOB if x is
None else x``): the fingerprint still matches after ``KNOB`` is rebound
at runtime, so two runs with different effective configs share one key.

Env reads named in :data:`SANCTIONED_ENV_VARS` are exempt:
``REPRO_SANITIZE`` gates *assertions and digest checks*, never results
(the bench/obs smoke targets prove serial, parallel and warm-cache runs
byte-identical with it on), so folding it into the key would only
defeat cache sharing between sanitized and unsanitized sessions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reproflow.callgraph import (
    CLOCK_READ,
    GLOBAL_WRITE,
    TASK_SUBMIT_NAMES,
    UNROUTED_RNG,
    CallGraph,
    EffectSite,
    FunctionNode,
    _dotted,
    _local_bindings,
    _own_body,
    dotted_module_name,
)
from reproflow.index import ProjectIndex

RawFinding = Tuple[int, int, str, str]

#: pass-4 effect kinds (collected here, propagated by pass 3b)
ENV_READ = "env-read"
ENV_WRITE = "env-write"
FILE_READ = "file-read"
DYNAMIC_DISPATCH = "dynamic-dispatch"
SHADOW_CONFIG = "shadow-config"
MODULE_STATE_READ = "module-state-read"
HANDLE_USE = "handle-use"

#: kinds propagated per-symbol (``"kind:symbol"`` summary entries) so a
#: task root reports every distinct offender, not just the first
GRANULAR_KINDS = frozenset({
    GLOBAL_WRITE, ENV_READ, FILE_READ, SHADOW_CONFIG,
    MODULE_STATE_READ, HANDLE_USE,
})

#: env vars that gate checking, never results (see module docstring)
SANCTIONED_ENV_VARS = frozenset({"REPRO_SANITIZE"})

#: constructors whose result is per-process state (or plain unpicklable)
_STATEFUL_CONSTRUCTORS = frozenset({
    "open", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Event", "Barrier", "Queue", "LifoQueue",
    "PriorityQueue", "SimpleQueue", "socket", "socketpair",
    "default_rng", "Random", "RandomState", "Generator",
})
_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
})
_ENV_MUTATORS = frozenset({
    "update", "setdefault", "pop", "popitem", "clear", "__setitem__",
})
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "add", "update", "setdefault",
    "pop", "popleft", "remove", "discard", "clear", "insert",
})


@dataclass
class ParsafeInfo:
    """Project-wide facts pass 4 needs beyond the call graph."""

    #: path -> project-internal module paths it imports
    module_imports: Dict[str, Set[str]] = field(default_factory=dict)
    #: modules a worker imports to resolve some task entry (closure)
    worker_modules: Set[str] = field(default_factory=set)
    #: worker module -> the module that imported it (None for entries)
    import_parent: Dict[str, Optional[str]] = field(default_factory=dict)
    #: path -> module-level names bound to handles/locks -> description
    handle_names: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: module-level names assigned *from other modules* (path, name)
    poked: Set[Tuple[str, str]] = field(default_factory=set)
    #: node id -> module-level names the function loads at call time
    module_loads: Dict[str, Set[str]] = field(default_factory=dict)


# ---------------------------------------------------------------- imports
# model: which local names mean os / os.environ / importlib, and which
# project modules an import statement pulls in

class _OsImports:
    def __init__(self, tree: ast.Module):
        self.os_mods: Set[str] = set()
        self.environ_names: Set[str] = set()
        self.bare_getenv: Set[str] = set()
        self.bare_putenv: Set[str] = set()
        self.importlib_mods: Set[str] = set()
        self.bare_import_module: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "os":
                        self.os_mods.add(bound)
                    elif alias.name == "importlib":
                        self.importlib_mods.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if module == "os" and alias.name == "environ":
                        self.environ_names.add(bound)
                    elif module == "os" and alias.name == "getenv":
                        self.bare_getenv.add(bound)
                    elif module == "os" and alias.name == "putenv":
                        self.bare_putenv.add(bound)
                    elif module == "importlib" \
                            and alias.name == "import_module":
                        self.bare_import_module.add(bound)

    def is_environ(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.environ_names
        return (isinstance(node, ast.Attribute)
                and node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.os_mods)


def _import_targets(tree: ast.Module, path: str,
                    graph: CallGraph) -> Set[str]:
    """Project-module paths this module's imports execute.

    Importing ``a.b.c`` also executes the ``a`` and ``a.b`` package
    ``__init__`` modules, so ancestors are included.  Relative imports
    are resolved against this module's own dotted name.
    """
    own = dotted_module_name(path)
    own_pkg = own if path.replace("\\", "/").endswith("/__init__.py") \
        else own.rsplit(".", 1)[0] if "." in own else ""

    def add_with_ancestors(dotted: str, out: Set[str]) -> None:
        parts = dotted.split(".")
        for i in range(1, len(parts) + 1):
            target = graph._module_paths.get(".".join(parts[:i]))
            if target is not None:
                out.add(target)

    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add_with_ancestors(alias.name, out)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = own_pkg
                for _ in range(node.level - 1):
                    anchor = anchor.rsplit(".", 1)[0] \
                        if "." in anchor else ""
                base = f"{anchor}.{base}" if base else anchor
            if base:
                add_with_ancestors(base, out)
                for alias in node.names:
                    add_with_ancestors(f"{base}.{alias.name}", out)
    out.discard(path)
    return out


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted module it denotes (for cross-module pokes)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                continue   # relative: handled conservatively (skipped)
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{module}.{alias.name}" if module else alias.name
    return aliases


# ---------------------------------------------------------------- collect

def collect_parsafe(graph: CallGraph,
                    trees: Dict[str, ast.Module]) -> ParsafeInfo:
    """Add pass-4 effect sites to the graph and gather project facts.

    Must run after :func:`build_callgraph` (it needs the nodes and task
    roots) and *before* :func:`propagate_effects` (the new sites ride
    the same fixpoint).
    """
    info = ParsafeInfo()
    os_imports: Dict[str, _OsImports] = {}

    for path in sorted(trees):
        tree = trees[path]
        os_imports[path] = _OsImports(tree)
        info.module_imports[path] = _import_targets(tree, path, graph)
        info.handle_names[path] = _module_handles(tree)
        _collect_pokes(graph, path, tree, info)

    for node in graph.nodes.values():
        if node.func_ast is None:
            continue
        _collect_node_effects(graph, node, os_imports[node.path], info)

    _close_worker_modules(graph, info)
    return info


def _module_handles(tree: ast.Module) -> Dict[str, str]:
    handles: Dict[str, str] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not isinstance(value, ast.Call):
            continue
        tail = _dotted(value.func).rsplit(".", 1)[-1]
        if tail == "open":
            kind = "open file handle"
        elif tail in _LOCK_CONSTRUCTORS:
            kind = f"synchronization primitive ({tail})"
        elif tail in ("socket", "socketpair"):
            kind = "socket"
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                handles[target.id] = kind
    return handles


def _collect_pokes(graph: CallGraph, path: str, tree: ast.Module,
                   info: ParsafeInfo) -> None:
    """Record module-level names this module rebinds *in other modules*
    (``othermod.KNOB = x`` / ``othermod.REGISTRY.update(...)``)."""
    aliases = _module_aliases(tree)

    def resolve_attr(node: ast.expr) -> Optional[Tuple[str, str]]:
        dotted = _dotted(node)
        if not dotted or "." not in dotted:
            return None
        parts = dotted.split(".")
        head = aliases.get(parts[0])
        if head is None:
            return None
        module = ".".join([head] + parts[1:-1])
        target = graph._module_paths.get(module)
        if target is None or target == path:
            return None
        return target, parts[-1]

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    poke = resolve_attr(target)
                    if poke is not None:
                        info.poked.add(poke)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS:
            poke = resolve_attr(node.func.value)
            if poke is not None:
                info.poked.add(poke)


def _collect_node_effects(graph: CallGraph, fn: FunctionNode,
                          os_info: _OsImports, info: ParsafeInfo) -> None:
    func = fn.func_ast
    assert func is not None
    locals_here = _local_bindings(func)
    module_assigned = graph._module_assigned.get(fn.path, set())
    handles = info.handle_names.get(fn.path, {})
    poked_here = {name for (p, name) in info.poked if p == fn.path}
    params = _param_names(func)
    loads: Set[str] = set()

    for node in _own_body(func):
        if isinstance(node, ast.Call):
            _env_call_effects(fn, node, os_info)
            _file_read_effects(fn, node)
            _dispatch_effects(fn, node, os_info)
        elif isinstance(node, ast.Subscript):
            if os_info.is_environ(node.value):
                key = node.slice
                if isinstance(node.ctx, ast.Load):
                    _env_read(fn, node, key)
                elif isinstance(node.ctx, (ast.Store, ast.Del)):
                    fn.effects.append(EffectSite(
                        ENV_WRITE, node.lineno, node.col_offset,
                        "mutates os.environ",
                        symbol=_const_str(key) or "<dynamic>"))
            elif isinstance(node.value, ast.Call) \
                    and _dotted(node.value.func) == "globals":
                fn.effects.append(EffectSite(
                    DYNAMIC_DISPATCH, node.lineno, node.col_offset,
                    "looks up a name via globals()[...]",
                    symbol="globals"))
        elif isinstance(node, ast.Name) \
                and isinstance(node.ctx, ast.Load) \
                and node.id not in locals_here:
            if node.id in handles:
                fn.effects.append(EffectSite(
                    HANDLE_USE, node.lineno, node.col_offset,
                    f"uses module-level {handles[node.id]} "
                    f"'{node.id}'", symbol=node.id))
            if node.id in poked_here:
                fn.effects.append(EffectSite(
                    MODULE_STATE_READ, node.lineno, node.col_offset,
                    f"reads module-level '{node.id}', which another "
                    "module rebinds at runtime", symbol=node.id))
            if node.id in module_assigned:
                loads.add(node.id)

    if params:
        _shadow_config_effects(fn, func, params, module_assigned)
    if loads:
        info.module_loads[fn.id] = loads


def _param_names(func: ast.AST) -> Set[str]:
    args = getattr(func, "args", None)
    if args is None:
        return set()
    return {a.arg for a in (list(args.posonlyargs) + list(args.args)
                            + list(args.kwonlyargs))}


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _env_read(fn: FunctionNode, node: ast.AST,
              key: Optional[ast.expr]) -> None:
    name = _const_str(key)
    if name in SANCTIONED_ENV_VARS:
        return
    shown = f"'{name}'" if name else "a dynamic name"
    fn.effects.append(EffectSite(
        ENV_READ, node.lineno, node.col_offset,
        f"reads environment variable {shown}",
        symbol=name or "<dynamic>"))


def _env_call_effects(fn: FunctionNode, call: ast.Call,
                      os_info: _OsImports) -> None:
    func = call.func
    dotted = _dotted(func)
    head, _, rest = dotted.partition(".")
    key = call.args[0] if call.args else None
    if (head in os_info.os_mods and rest == "getenv") \
            or dotted in os_info.bare_getenv:
        _env_read(fn, call, key)
    elif isinstance(func, ast.Attribute) and func.attr == "get" \
            and os_info.is_environ(func.value):
        _env_read(fn, call, key)
    elif (head in os_info.os_mods and rest in ("putenv", "unsetenv")) \
            or dotted in os_info.bare_putenv:
        fn.effects.append(EffectSite(
            ENV_WRITE, call.lineno, call.col_offset,
            f"mutates the environment via '{dotted}()'",
            symbol=_const_str(key) or "<dynamic>"))
    elif isinstance(func, ast.Attribute) \
            and func.attr in _ENV_MUTATORS \
            and os_info.is_environ(func.value):
        fn.effects.append(EffectSite(
            ENV_WRITE, call.lineno, call.col_offset,
            f"mutates os.environ via .{func.attr}()",
            symbol=_const_str(key) or "<dynamic>"))


_PURE_WRITE_MODES = ("w", "a", "x")


def _file_read_effects(fn: FunctionNode, call: ast.Call) -> None:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = None
        if len(call.args) >= 2:
            mode = _const_str(call.args[1])
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = _const_str(keyword.value)
        if mode is not None and "+" not in mode \
                and any(m in mode for m in _PURE_WRITE_MODES):
            return   # write-only: produces output, reads no input
        target = _const_str(call.args[0]) if call.args else None
        fn.effects.append(EffectSite(
            FILE_READ, call.lineno, call.col_offset,
            f"reads file "
            f"{'%r' % target if target else 'at a runtime path'} "
            "via open()", symbol=target or "<dynamic>"))
    elif isinstance(func, ast.Attribute) \
            and func.attr in ("read_text", "read_bytes"):
        fn.effects.append(EffectSite(
            FILE_READ, call.lineno, call.col_offset,
            f"reads a file via .{func.attr}()", symbol="<path>"))


def _dispatch_effects(fn: FunctionNode, call: ast.Call,
                      os_info: _OsImports) -> None:
    func = call.func
    dotted = _dotted(func)
    head, _, rest = dotted.partition(".")
    if (head in os_info.importlib_mods and rest == "import_module") \
            or dotted in os_info.bare_import_module \
            or dotted == "__import__":
        if not call.args or _const_str(call.args[0]) is None:
            fn.effects.append(EffectSite(
                DYNAMIC_DISPATCH, call.lineno, call.col_offset,
                "imports a module named by a runtime value",
                symbol="import_module"))
    elif isinstance(func, ast.Name) and func.id == "getattr":
        if len(call.args) >= 2 and _const_str(call.args[1]) is None:
            fn.effects.append(EffectSite(
                DYNAMIC_DISPATCH, call.lineno, call.col_offset,
                "selects an attribute via getattr() with a "
                "non-constant name", symbol="getattr"))


_SHADOW_HINT = ("falls back to module-level '%s' at call time; the "
                "RunSpec key fingerprints source text, not runtime "
                "values, so rebinding the global changes results "
                "without changing the key")


def _shadow_config_effects(fn: FunctionNode, func: ast.AST,
                           params: Set[str],
                           module_assigned: Set[str]) -> None:
    """``x = KNOB if x is None else x`` / ``if x is None: x = KNOB`` /
    ``x = x or KNOB`` where ``x`` is a parameter and ``KNOB`` a
    module-level name."""

    def is_none_test(test: ast.expr, param: str) -> Optional[bool]:
        # True -> "is None", False -> "is not None", None -> no match
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        left, comp = test.left, test.comparators[0]
        if not (isinstance(left, ast.Name) and left.id == param
                and isinstance(comp, ast.Constant)
                and comp.value is None):
            return None
        if isinstance(test.ops[0], ast.Is):
            return True
        if isinstance(test.ops[0], ast.IsNot):
            return False
        return None

    def fallback_name(value: ast.expr, param: str) -> Optional[str]:
        if isinstance(value, ast.IfExp):
            none_first = is_none_test(value.test, param)
            if none_first is None:
                return None
            branch = value.body if none_first else value.orelse
            if isinstance(branch, ast.Name) \
                    and branch.id in module_assigned:
                return branch.id
        elif isinstance(value, ast.BoolOp) \
                and isinstance(value.op, ast.Or) \
                and len(value.values) == 2 \
                and isinstance(value.values[0], ast.Name) \
                and value.values[0].id == param \
                and isinstance(value.values[1], ast.Name) \
                and value.values[1].id in module_assigned:
            return value.values[1].id
        return None

    def emit(node: ast.AST, param: str, knob: str) -> None:
        fn.effects.append(EffectSite(
            SHADOW_CONFIG, node.lineno, node.col_offset,
            f"parameter '{param}' " + _SHADOW_HINT % knob,
            symbol=f"{param}<-{knob}"))

    for node in _own_body(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id in params:
            param = node.targets[0].id
            knob = fallback_name(node.value, param)
            if knob is not None:
                emit(node, param, knob)
        elif isinstance(node, ast.If):
            for param in sorted(params):
                if is_none_test(node.test, param) is not True:
                    continue
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) \
                            and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Name) \
                            and stmt.targets[0].id == param \
                            and isinstance(stmt.value, ast.Name) \
                            and stmt.value.id in module_assigned:
                        emit(stmt, param, stmt.value.id)


def _close_worker_modules(graph: CallGraph, info: ParsafeInfo) -> None:
    """BFS over project imports from every task-entry module: the set a
    spawned worker executes at import time to resolve some task."""
    queue: List[str] = []
    for root in graph.task_roots:
        module = root.entry.partition(":")[0]
        path = graph._module_paths.get(module)
        if path is None:
            suffix = "." + module
            candidates = [p for m, p in graph._module_paths.items()
                          if m.endswith(suffix)]
            path = candidates[0] if len(candidates) == 1 else None
        if path is None or path in info.worker_modules:
            continue
        info.worker_modules.add(path)
        info.import_parent[path] = None
        queue.append(path)
    while queue:
        current = queue.pop(0)
        for target in sorted(info.module_imports.get(current, ())):
            if target in info.worker_modules:
                continue
            info.worker_modules.add(target)
            info.import_parent[target] = current
            queue.append(target)


# ---------------------------------------------------------------- analyzer

class Pass4Analyzer:
    """Runs the SER / IMP / KEY families over one file."""

    def __init__(self, path: str, index: ProjectIndex, graph: CallGraph,
                 summaries: Dict[str, Dict[str, object]],
                 info: ParsafeInfo):
        self.path = path
        self.index = index
        self.graph = graph
        self.summaries = summaries
        self.info = info
        self.findings: List[RawFinding] = []
        self._reachable_cache: Dict[str, Set[str]] = {}

    def analyze(self, tree: ast.Module) -> List[RawFinding]:
        self._check_ser301(tree)
        self._check_ser302()
        self._check_root_summaries()
        self._check_imp401()
        self._check_imp402()
        seen: Set[RawFinding] = set()
        unique = [f for f in self.findings
                  if not (f in seen or seen.add(f))]
        unique.sort()
        return unique

    # -- shared helpers ------------------------------------------------

    def _local_roots(self):
        for root in self.graph.task_roots:
            if root.path == self.path:
                yield root

    def _reachable(self, node_id: str) -> Set[str]:
        cached = self._reachable_cache.get(node_id)
        if cached is not None:
            return cached
        seen = {node_id}
        stack = [node_id]
        while stack:
            node = self.graph.nodes.get(stack.pop())
            if node is None:
                continue
            for call in node.calls:
                if call.callee not in seen:
                    seen.add(call.callee)
                    stack.append(call.callee)
        self._reachable_cache[node_id] = seen
        return seen

    def _describe(self, effect) -> str:
        return effect.describe(self.graph)

    def _import_chain(self, path: str) -> str:
        hops = [dotted_module_name(path)]
        parent = self.info.import_parent.get(path)
        while parent is not None:
            hops.append(dotted_module_name(parent))
            parent = self.info.import_parent.get(parent)
        if len(hops) == 1:
            return f"task module {hops[0]}"
        return " <- ".join(hops)

    # -- SER301: unpicklable payloads at submit sites ------------------

    def _check_ser301(self, tree: ast.Module) -> None:
        for call, submit_name, task_expr in _submit_sites(tree):
            if task_expr is None:
                continue
            reason = self._unpicklable_reason(task_expr)
            if reason is not None:
                self.findings.append((
                    call.lineno, call.col_offset, "SER301",
                    f"{reason} submitted to {submit_name}(); the spawn "
                    "start method cannot pickle it into a worker — "
                    "define a module-level function and pass its "
                    "'module:function' entry string"))
        for root in self._local_roots():
            _, _, func_part = root.entry.partition(":")
            if "." in func_part:
                self.findings.append((
                    root.lineno, root.col, "SER301",
                    f"entry '{root.entry}' names a dotted attribute; "
                    "the worker resolves entries with a single "
                    "getattr on the module, so nested functions and "
                    "methods cannot be reached — promote the task to a "
                    "module-level function"))

    def _unpicklable_reason(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.Name):
            if expr.id in self.graph._str_constants.get(self.path, {}):
                return None   # entry-string indirection, handled as root
            target = self.graph._module_functions.get(
                self.path, {}).get(expr.id)
            if target is not None:
                return f"function object '{expr.id}'"
            # a nested function defined in any enclosing scope here
            for node_id, node in self.graph.nodes.items():
                if node.path == self.path and node.name == expr.id \
                        and "." in node.qualname \
                        and node.enclosing_class is None:
                    return f"locally-defined function '{expr.id}'"
            return None
        if isinstance(expr, ast.Attribute):
            if self.graph._methods_by_name.get(expr.attr):
                return f"bound method '{_dotted(expr)}'"
            return None
        return None

    # -- SER302: stateful defaults on task functions -------------------

    def _check_ser302(self) -> None:
        seen: Set[str] = set()
        for root in self.graph.task_roots:
            if root.node_id is None or root.node_id in seen:
                continue
            seen.add(root.node_id)
            node = self.graph.nodes.get(root.node_id)
            if node is None or node.path != self.path \
                    or node.func_ast is None:
                continue
            for param, default in _defaults_of(node.func_ast):
                reason = self._stateful_default(default)
                if reason is None:
                    continue
                self.findings.append((
                    default.lineno, default.col_offset, "SER302",
                    f"task '{root.entry}' default for parameter "
                    f"'{param}' {reason}; defaults are evaluated once "
                    "per worker process and shared by every run "
                    "scheduled there, so results depend on scheduling "
                    "— take the value through the config dict instead"))

    def _stateful_default(self, default: ast.expr) -> Optional[str]:
        if isinstance(default, ast.Lambda):
            return "is a lambda (unpicklable under spawn)"
        if isinstance(default, ast.Call):
            tail = _dotted(default.func).rsplit(".", 1)[-1]
            if tail in _STATEFUL_CONSTRUCTORS:
                return f"constructs per-process state via '{tail}()'"
        if isinstance(default, ast.Name):
            kind = self.info.handle_names.get(
                self.path, {}).get(default.id)
            if kind is not None:
                return f"is the module-level {kind} '{default.id}'"
        return None

    # -- SER303 / KEY501 / KEY502: propagated task-root summaries ------

    def _check_root_summaries(self) -> None:
        for root in self._local_roots():
            if root.node_id is None:
                continue
            summary = self.summaries.get(root.node_id, {})
            for key in sorted(summary):
                kind, _, symbol = key.partition(":")
                if not symbol:
                    continue
                effect = summary[key]
                if kind == HANDLE_USE:
                    self.findings.append((
                        root.lineno, root.col, "SER303",
                        f"task '{root.entry}' submitted to "
                        f"{root.submit_name}() captures per-process "
                        f"state: {self._describe(effect)}; every spawn "
                        "worker re-creates its own copy, so "
                        "coordination through it silently fails"))
                elif kind in (ENV_READ, FILE_READ, SHADOW_CONFIG,
                              MODULE_STATE_READ):
                    self.findings.append((
                        root.lineno, root.col, "KEY501",
                        f"task '{root.entry}' submitted to "
                        f"{root.submit_name}() depends on state "
                        f"outside its RunSpec key: "
                        f"{self._describe(effect)} — fold the value "
                        "into the task's config so cache hits cannot "
                        "replay stale results"))
            effect = summary.get(DYNAMIC_DISPATCH)
            if effect is not None:
                self.findings.append((
                    root.lineno, root.col, "KEY502",
                    f"task '{root.entry}' submitted to "
                    f"{root.submit_name}() selects code dynamically: "
                    f"{self._describe(effect)}; the executed callee "
                    "escapes the RunSpec code fingerprint — dispatch "
                    "through a static mapping keyed by a config value "
                    "instead"))

    # -- IMP401: import-time effects in worker-imported modules --------

    def _check_imp401(self) -> None:
        if self.path not in self.info.worker_modules:
            return
        module_id = self.graph.module_nodes.get(self.path)
        if module_id is None:
            return
        summary = self.summaries.get(module_id, {})
        labels = {
            CLOCK_READ: "reads the wall clock",
            UNROUTED_RNG: "draws from an unrouted RNG",
            ENV_WRITE: "mutates the process environment",
        }
        for kind, label in labels.items():
            effect = summary.get(kind)
            if effect is None:
                continue
            lineno, col = self._module_site(module_id, effect)
            self.findings.append((
                lineno, col, "IMP401",
                f"module scope {label} at import time "
                f"({self._describe(effect)}); every spawned worker "
                f"replays this when resolving tasks "
                f"(worker-imported via {self._import_chain(self.path)})"
                " — move it inside a function or a __main__ guard"))

    def _module_site(self, module_id: str, effect) -> Tuple[int, int]:
        """The line *in this file* responsible for a module-scope
        effect: the site itself, or the module-scope call that starts
        the chain reaching it."""
        if effect.origin == module_id:
            return effect.site.lineno, effect.site.col
        node = self.graph.nodes[module_id]
        first_callee = effect.chain[1] if len(effect.chain) > 1 else None
        for call in node.calls:
            if call.callee == first_callee:
                return call.lineno, call.col
        return 1, 0

    # -- IMP402: readers of globals that tasks mutate ------------------

    def _check_imp402(self) -> None:
        flagged: Set[Tuple[int, str]] = set()
        for root in self.graph.task_roots:
            if root.node_id is None:
                continue
            summary = self.summaries.get(root.node_id, {})
            closure = None
            for key in sorted(summary):
                kind, _, symbol = key.partition(":")
                if kind != GLOBAL_WRITE or not symbol:
                    continue
                effect = summary[key]
                origin = self.graph.nodes.get(effect.origin)
                if origin is None or origin.path != self.path:
                    continue
                if closure is None:
                    closure = self._reachable(root.node_id)
                for node in self.graph.nodes.values():
                    if node.path != self.path \
                            or node.qualname == "<module>" \
                            or node.id in closure:
                        continue
                    if symbol not in self.info.module_loads.get(
                            node.id, ()):
                        continue
                    mark = (node.lineno, symbol)
                    if mark in flagged:
                        continue
                    flagged.add(mark)
                    self.findings.append((
                        node.lineno, 0, "IMP402",
                        f"'{node.qualname}' reads module global "
                        f"'{symbol}', which runner task "
                        f"'{root.entry}' mutates "
                        f"({self._describe(effect)}); the mutation "
                        "happens inside spawned worker processes and "
                        "is never visible here — return the value "
                        "through the task payload instead"))


def _submit_sites(tree: ast.Module):
    """Yield ``(call, submit_name, task_expr)`` for every runner
    submission in the file (mirrors the task-root collection)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if tail in TASK_SUBMIT_NAMES:
            submit_name = tail or ""
        elif tail == "build" and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "RunSpec":
            submit_name = "RunSpec.build"
        else:
            continue
        task_expr: Optional[ast.expr] = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "task":
                task_expr = keyword.value
        yield node, submit_name, task_expr


def _defaults_of(func: ast.AST):
    """Yield ``(param_name, default_expr)`` pairs, positionals aligned
    from the tail, then keyword-only."""
    args = getattr(func, "args", None)
    if args is None:
        return
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(positional[len(positional)
                                       - len(args.defaults):],
                            args.defaults):
        yield arg.arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield arg.arg, default
