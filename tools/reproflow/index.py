"""Pass 1: the project-wide symbol index.

Walks every target module once and records what pass 2's semantic rules
need to reason *across* files:

* :class:`ClassSchema` — for each class, its constructor surface: dataclass
  fields (with units inferred from name suffixes) or ``__init__``
  parameters, base classes (merged on demand), and whether ``**kwargs``
  makes the surface open;
* :class:`FuncSchema` — module-level functions and methods, with per-
  parameter units;
* the packet/delivery-record roster — classes that define
  ``copy_for_link`` (packets) or a ``delivered``/``arrival_time`` pair
  (delivery records), which the LIF family keys on.

Names are indexed *unqualified* (call sites rarely carry module paths);
when two definitions of the same name disagree, the entry is marked
ambiguous and pass 2 skips it rather than guess — a project-wide analysis
must never cry wolf on a name it cannot resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from reproflow.units import unit_of_identifier


@dataclass
class ParamInfo:
    """One formal parameter (or dataclass field used positionally)."""

    name: str
    unit: Optional[str] = None


@dataclass
class FuncSchema:
    """Signature of one function or method."""

    name: str
    module: str
    #: positional-capable parameters in order (``self`` already dropped)
    positional: List[ParamInfo] = field(default_factory=list)
    #: every keyword-addressable parameter name -> unit
    param_units: Dict[str, Optional[str]] = field(default_factory=dict)
    has_var_positional: bool = False
    has_var_keyword: bool = False
    is_method: bool = False
    ambiguous: bool = False

    def signature_key(self) -> tuple:
        return (tuple(p.name for p in self.positional),
                tuple(sorted(self.param_units)),
                self.has_var_positional, self.has_var_keyword)


@dataclass
class ClassSchema:
    """Constructor surface of one class."""

    name: str
    module: str
    is_dataclass: bool = False
    #: keyword-addressable constructor names -> unit (dataclass fields,
    #: or ``__init__`` parameters for plain classes)
    fields: Dict[str, Optional[str]] = field(default_factory=dict)
    #: positional order of the above (dataclass field order / param order)
    order: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    has_var_keyword: bool = False
    #: plain class without a visible ``__init__`` — constructor surface
    #: unknown, skip CFG checks
    opaque: bool = False
    ambiguous: bool = False

    def schema_key(self) -> tuple:
        return (tuple(self.order), tuple(sorted(self.fields)),
                self.is_dataclass, self.has_var_keyword, self.opaque)


@dataclass
class ProjectIndex:
    """Everything pass 2 needs for cross-module resolution."""

    classes: Dict[str, ClassSchema] = field(default_factory=dict)
    functions: Dict[str, FuncSchema] = field(default_factory=dict)
    methods: Dict[str, FuncSchema] = field(default_factory=dict)
    #: classes whose instances are stream packets (define copy_for_link)
    packet_classes: Set[str] = field(default_factory=set)
    #: classes that look like per-copy delivery records
    record_classes: Set[str] = field(default_factory=set)
    #: instance-attribute names that hold a ``set``/``frozenset`` anywhere
    #: in the project (``self.x = set()`` or a ``Set[...]`` annotation) —
    #: pass 3's ORD family treats loads of these as unordered
    set_attributes: Set[str] = field(default_factory=set)

    # -- resolution helpers -------------------------------------------

    def resolve_class(self, name: str) -> Optional[ClassSchema]:
        schema = self.classes.get(name)
        if schema is None or schema.ambiguous or schema.opaque:
            return None
        return schema

    def resolve_function(self, name: str) -> Optional[FuncSchema]:
        schema = self.functions.get(name)
        if schema is None or schema.ambiguous:
            return None
        return schema

    def resolve_method(self, name: str) -> Optional[FuncSchema]:
        schema = self.methods.get(name)
        if schema is None or schema.ambiguous:
            return None
        return schema

    def constructor_fields(self, schema: ClassSchema,
                           _seen: Optional[Set[str]] = None
                           ) -> Dict[str, Optional[str]]:
        """Constructor surface including inherited dataclass fields."""
        seen = _seen if _seen is not None else set()
        seen.add(schema.name)
        merged: Dict[str, Optional[str]] = {}
        for base_name in schema.bases:
            if base_name in seen:
                continue
            base = self.classes.get(base_name)
            if base is not None and not base.ambiguous and not base.opaque:
                merged.update(self.constructor_fields(base, seen))
        merged.update(schema.fields)
        return merged

    def constructor_is_open(self, schema: ClassSchema) -> bool:
        """True when unknown keywords may be legal (``**kwargs`` or an
        unresolvable base class)."""
        if schema.has_var_keyword:
            return True
        for base_name in schema.bases:
            base = self.classes.get(base_name)
            if base is None or base.ambiguous or base.opaque:
                # Inheriting from something we can't see (object and
                # friends excluded below) may add an __init__.
                if base_name not in ("object", "Exception", "RuntimeError",
                                     "ValueError", "NamedTuple", "Enum",
                                     "Protocol", "Generic", "ABC"):
                    return True
            elif self.constructor_is_open(base):
                return True
        return False


def _decorator_name(node: ast.AST) -> str:
    target = node.func if isinstance(node, ast.Call) else node
    parts: List[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return parts[0] if parts else ""


def _is_classvar(annotation: ast.AST) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return isinstance(node, ast.Name) and node.id == "ClassVar"


def _func_schema(func: ast.FunctionDef, module: str,
                 is_method: bool) -> FuncSchema:
    args = func.args
    schema = FuncSchema(name=func.name, module=module, is_method=is_method)
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional:
        positional = positional[1:]           # drop self/cls
    for arg in positional:
        info = ParamInfo(arg.arg, unit_of_identifier(arg.arg))
        schema.positional.append(info)
        schema.param_units[arg.arg] = info.unit
    for arg in args.kwonlyargs:
        schema.param_units[arg.arg] = unit_of_identifier(arg.arg)
    schema.has_var_positional = args.vararg is not None
    schema.has_var_keyword = args.kwarg is not None
    return schema


def _class_schema(cls: ast.ClassDef, module: str) -> ClassSchema:
    schema = ClassSchema(name=cls.name, module=module)
    schema.is_dataclass = any(
        _decorator_name(d) == "dataclass" for d in cls.decorator_list)
    schema.bases = [base_name for base in cls.bases
                    if (base_name := _base_name(base))]
    init: Optional[ast.FunctionDef] = None
    for stmt in cls.body:
        if schema.is_dataclass and isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and not _is_classvar(stmt.annotation):
            name = stmt.target.id
            schema.fields[name] = unit_of_identifier(name)
            schema.order.append(name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == "__init__":
            init = stmt if isinstance(stmt, ast.FunctionDef) else None
    if not schema.is_dataclass:
        if init is not None:
            init_schema = _func_schema(init, module, is_method=True)
            schema.fields = dict(init_schema.param_units)
            schema.order = [p.name for p in init_schema.positional]
            schema.has_var_keyword = init_schema.has_var_keyword
        else:
            schema.opaque = True
    return schema


def _base_name(base: ast.AST) -> Optional[str]:
    node = base
    while isinstance(node, ast.Subscript):   # Generic[T] and friends
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _looks_like_record(cls: ast.ClassDef) -> bool:
    names: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return "delivered" in names and "arrival_time" in names


def build_index(trees: Dict[str, ast.Module]) -> ProjectIndex:
    """Pass 1: index every module in ``trees`` (path -> parsed AST)."""
    index = ProjectIndex()
    for path in sorted(trees):
        tree = trees[path]
        _index_module(index, path, tree)
    return index


def _index_module(index: ProjectIndex, path: str, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            schema = _class_schema(node, path)
            _insert_class(index, schema)
            method_names: Set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) \
                        and not stmt.name.startswith("__"):
                    method_names.add(stmt.name)
                    _insert_method(index,
                                   _func_schema(stmt, path, is_method=True))
            if "copy_for_link" in method_names or node.name == "Packet":
                index.packet_classes.add(node.name)
            if _looks_like_record(node):
                index.record_classes.add(node.name)
            _collect_set_attributes(index, node)

    # Module-level functions only (methods were handled above).
    class_members = {id(stmt)
                     for node in ast.walk(tree)
                     if isinstance(node, ast.ClassDef)
                     for stmt in node.body}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and id(node) not in class_members:
            _insert_function(index, _func_schema(node, path, is_method=False))


_SET_ANNOTATION_NAMES = {"Set", "FrozenSet", "MutableSet", "set",
                         "frozenset", "AbstractSet"}


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATION_NAMES


def _is_set_valued(value: Optional[ast.AST]) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("set", "frozenset")
    return False


def _collect_set_attributes(index: ProjectIndex, cls: ast.ClassDef) -> None:
    """Record attribute names bound to sets (annotation or assignment)."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and _is_set_annotation(stmt.annotation):
            index.set_attributes.add(stmt.target.id)
    for node in ast.walk(cls):
        target: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if _is_set_valued(node.value) and isinstance(target,
                                                         ast.Attribute):
                index.set_attributes.add(target.attr)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Attribute) \
                and _is_set_annotation(node.annotation):
            index.set_attributes.add(node.target.attr)


def _insert_class(index: ProjectIndex, schema: ClassSchema) -> None:
    existing = index.classes.get(schema.name)
    if existing is None:
        index.classes[schema.name] = schema
    elif existing.module != schema.module \
            and existing.schema_key() != schema.schema_key():
        existing.ambiguous = True


def _insert_function(index: ProjectIndex, schema: FuncSchema) -> None:
    existing = index.functions.get(schema.name)
    if existing is None:
        index.functions[schema.name] = schema
    elif existing.module != schema.module \
            and existing.signature_key() != schema.signature_key():
        existing.ambiguous = True


def _insert_method(index: ProjectIndex, schema: FuncSchema) -> None:
    existing = index.methods.get(schema.name)
    if existing is None:
        index.methods[schema.name] = schema
    elif existing.signature_key() != schema.signature_key():
        existing.ambiguous = True
