"""``python -m reproflow`` entry point."""

import sys

from reproflow.cli import main

if __name__ == "__main__":
    sys.exit(main())
