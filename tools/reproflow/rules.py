"""Pass 2: the semantic rule families.

Every rule runs per-file but reasons with the whole-project
:class:`~reproflow.index.ProjectIndex` in hand, so a ``_ms`` expression
flowing into a ``_s`` dataclass field *defined three modules away* is
still caught.

==========  ============================  ========================================
id          name                          what it flags
==========  ============================  ========================================
UNT001      mixed-unit-expression         arithmetic/comparison between two
                                          different unit-suffixed quantities
                                          (``x_ms + y_s``, ``a_dbm < b_mw``)
UNT002      unit-mismatched-argument      a unit-suffixed expression passed to a
                                          parameter or dataclass field whose
                                          suffix names a different unit, at any
                                          call site project-wide
UNT003      unit-mismatched-assignment    assigning a known ``_ms`` quantity to a
                                          ``_s``-suffixed name (or any other
                                          cross-unit binding)
LIF001      packet-mutated-after-handoff  a ``Packet`` attribute written after
                                          the object was handed to a queue, link
                                          or scheduler — the receiver sees the
                                          mutation
LIF002      hand-rolled-replica           ``Packet(seq=p.seq, send_time=
                                          p.send_time, ...)`` instead of
                                          ``p.copy_for_link(...)`` — silently
                                          drops fields added later
LIF003      unguarded-delay-read          ``record.delay`` / ``.arrival_time``
                                          read without a ``delivered`` guard or
                                          NaN check — NaN propagates into
                                          quality scores
CFG001      unknown-keyword               keyword argument that matches no field
                                          of the resolved dataclass / parameter
                                          of the resolved function
CFG002      config-dict-key-mismatch      dict literal spread (``**cfg``) into a
                                          known constructor with keys outside
                                          the schema
==========  ============================  ========================================
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reproflow.index import ClassSchema, FuncSchema, ProjectIndex
from reproflow.units import UnitInferrer, unit_of_identifier

RawFinding = Tuple[int, int, str, str]   # (lineno, col, rule, message)

#: callee names that transfer ownership of a packet to another component
_HANDOFF_NAMES = frozenset({
    "send", "enqueue", "push", "put", "append", "appendleft", "transmit",
    "ingress", "forward", "deliver", "attach", "call_at", "call_in",
    "schedule", "sink", "emit", "dispatch", "on_receive", "wired_arrival",
    "replica_arrival", "record_arrival", "handoff", "submit", "receive",
})

#: calls that acknowledge NaN explicitly (count as a delay guard)
_NAN_GUARDS = frozenset({
    "isnan", "isfinite", "nan_to_num", "nanmean", "nanmedian", "nanmax",
    "nanmin", "notna", "isfinite_mask",
})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _last_segment(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _walk_pruned(node: ast.AST):
    """Yield ``node`` and descendants, not descending into nested scopes."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _iter_scope_statements(body: Sequence[ast.stmt]):
    """Statements of one scope in source order, entering control flow but
    not nested function/class scopes."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, _SCOPE_NODES):
            continue
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                yield from _iter_scope_statements(inner)
        for handler in getattr(stmt, "handlers", ()):
            yield from _iter_scope_statements(handler.body)


@dataclass
class _Scope:
    """One analysis scope: the module body or one function body."""

    body: Sequence[ast.stmt]
    name: str = "<module>"
    enclosing_class: Optional[str] = None
    is_nested: bool = False
    node: Optional[ast.AST] = None


def _collect_scopes(tree: ast.Module) -> List[_Scope]:
    scopes = [_Scope(body=tree.body)]

    def visit(node: ast.AST, enclosing_class: Optional[str],
              nested: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(_Scope(body=child.body, name=child.name,
                                     enclosing_class=enclosing_class,
                                     is_nested=nested, node=child))
                visit(child, enclosing_class, True)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name, nested)
            else:
                visit(child, enclosing_class, nested)

    visit(tree, None, False)
    return scopes


class ScopeAnalyzer:
    """Runs every rule family over one file against the project index."""

    def __init__(self, path: str, index: ProjectIndex):
        self.path = path
        self.index = index
        self.findings: List[RawFinding] = []
        #: names this module binds to *something else* — ``import x as y``
        #: / ``from m import f as g`` aliases make the local name mean a
        #: different symbol than the project-wide index entry of the same
        #: name, so resolution must not trust them
        self._aliased: Set[str] = set()

    # -- public entry --------------------------------------------------

    def analyze(self, tree: ast.Module) -> List[RawFinding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.asname and alias.asname != alias.name:
                        self._aliased.add(alias.asname)
        for scope in _collect_scopes(tree):
            self._analyze_scope(scope)
            if scope.node is not None and not scope.is_nested:
                self._check_lif003(scope)
        seen: Set[RawFinding] = set()
        unique = [f for f in self.findings
                  if not (f in seen or seen.add(f))]
        unique.sort()
        return unique

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            (node.lineno, node.col_offset, rule, message))

    # -- per-scope statement walk --------------------------------------

    def _analyze_scope(self, scope: _Scope) -> None:
        inferrer = UnitInferrer(
            report=lambda node, msg: self._emit(node, "UNT001", msg))
        muted = UnitInferrer(env=inferrer.env)
        #: packet-tracking state (LIF001)
        packet_vars: Dict[str, Tuple[int, int]] = {}
        handed_off: Dict[str, Tuple[int, int]] = {}
        #: local name -> constructed class (CFG via dataclasses.replace)
        var_class: Dict[str, str] = {}
        #: local name -> keys of the dict literal it was bound to
        var_dict_keys: Dict[str, List[str]] = {}

        for stmt in _iter_scope_statements(scope.body):
            pos = (stmt.lineno, stmt.col_offset)
            if isinstance(stmt, ast.Assign):
                value_unit = inferrer.infer(stmt.value)
                for target in stmt.targets:
                    self._handle_assign_target(
                        target, stmt.value, value_unit, inferrer,
                        packet_vars, handed_off, var_class, var_dict_keys)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value_unit = inferrer.infer(stmt.value)
                self._handle_assign_target(
                    stmt.target, stmt.value, value_unit, inferrer,
                    packet_vars, handed_off, var_class, var_dict_keys)
            elif isinstance(stmt, ast.AugAssign):
                target_unit = muted.infer(stmt.target)
                value_unit = inferrer.infer(stmt.value)
                if isinstance(stmt.op, (ast.Add, ast.Sub)) \
                        and target_unit and value_unit \
                        and target_unit != value_unit \
                        and {target_unit, value_unit} != {"dbm", "db"}:
                    self._emit(stmt, "UNT001",
                               f"mixed-unit in-place arithmetic: "
                               f"'{target_unit}' op '{value_unit}'")
                self._check_mutation(stmt.target, packet_vars, handed_off,
                                     pos)
            else:
                for expr in self._expression_roots(stmt):
                    inferrer.infer(expr)
            # Call-site families run over every call in the statement.
            for node in _walk_pruned(stmt):
                if isinstance(node, ast.Call):
                    self._check_call(node, muted, scope, var_class,
                                     var_dict_keys)
                    self._note_handoff(node, packet_vars, handed_off)

    def _expression_roots(self, stmt: ast.stmt) -> List[ast.expr]:
        roots: List[ast.expr] = []
        for attr in ("value", "test", "iter", "exc", "msg"):
            node = getattr(stmt, attr, None)
            if isinstance(node, ast.expr):
                roots.append(node)
        for item in getattr(stmt, "items", ()) or ():
            roots.append(item.context_expr)
        return roots

    # -- assignments (UNT003 + bookkeeping) ----------------------------

    def _handle_assign_target(self, target: ast.AST, value: ast.expr,
                              value_unit: Optional[str],
                              inferrer: UnitInferrer,
                              packet_vars: Dict[str, Tuple[int, int]],
                              handed_off: Dict[str, Tuple[int, int]],
                              var_class: Dict[str, str],
                              var_dict_keys: Dict[str, List[str]]) -> None:
        pos = (target.lineno, target.col_offset)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_assign_target(
                    element, value, None, inferrer, packet_vars,
                    handed_off, var_class, var_dict_keys)
            return
        if isinstance(target, ast.Attribute):
            self._check_target_unit(target, target.attr, value_unit)
            self._check_mutation(target, packet_vars, handed_off, pos)
            return
        if isinstance(target, ast.Subscript):
            # d["key"] = v extends a tracked dict literal's key set
            if isinstance(target.value, ast.Name) \
                    and target.value.id in var_dict_keys \
                    and isinstance(target.slice, ast.Constant) \
                    and isinstance(target.slice.value, str):
                var_dict_keys[target.value.id].append(target.slice.value)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        self._check_target_unit(target, name, value_unit)
        inferrer.learn(target, value_unit)
        # rebinding invalidates any prior tracking
        packet_vars.pop(name, None)
        handed_off.pop(name, None)
        var_class.pop(name, None)
        var_dict_keys.pop(name, None)
        if isinstance(value, ast.Call):
            callee = _last_segment(value.func)
            if callee in self.index.packet_classes \
                    or callee == "copy_for_link":
                packet_vars[name] = pos
            if callee is not None and callee in self.index.classes:
                var_class[name] = callee
        elif isinstance(value, ast.Dict):
            keys = [k.value for k in value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)]
            if len(keys) == len(value.keys):
                var_dict_keys[name] = keys

    def _check_target_unit(self, node: ast.AST, name: str,
                           value_unit: Optional[str]) -> None:
        target_unit = unit_of_identifier(name)
        if target_unit and value_unit and target_unit != value_unit \
                and {target_unit, value_unit} != {"dbm", "db"}:
            self._emit(node, "UNT003",
                       f"assigning a '{value_unit}' quantity to "
                       f"'{name}' (declared '{target_unit}'); convert "
                       "explicitly")

    # -- packet lifecycle (LIF001/LIF002) ------------------------------

    def _check_mutation(self, target: ast.AST,
                        packet_vars: Dict[str, Tuple[int, int]],
                        handed_off: Dict[str, Tuple[int, int]],
                        pos: Tuple[int, int]) -> None:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)):
            return
        name = target.value.id
        off_at = handed_off.get(name)
        if name in packet_vars and off_at is not None and off_at < pos:
            self._emit(target, "LIF001",
                       f"packet '{name}' mutated after handoff at line "
                       f"{off_at[0]}; the receiver observes this write — "
                       "copy before mutating")

    def _note_handoff(self, call: ast.Call,
                      packet_vars: Dict[str, Tuple[int, int]],
                      handed_off: Dict[str, Tuple[int, int]]) -> None:
        callee = _last_segment(call.func)
        if callee not in _HANDOFF_NAMES:
            return
        for arg in list(call.args) + [k.value for k in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in packet_vars:
                handed_off.setdefault(
                    arg.id, (call.lineno, call.col_offset))

    def _check_replica(self, call: ast.Call, scope: _Scope) -> None:
        callee = _last_segment(call.func)
        if callee not in self.index.packet_classes:
            return
        if scope.name == "copy_for_link" \
                or scope.enclosing_class in self.index.packet_classes:
            return   # the blessed implementation itself
        copied_from: Dict[str, int] = {}
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            value = keyword.value
            if isinstance(value, ast.Attribute) \
                    and value.attr == keyword.arg:
                base = _dotted(value.value)
                if base:
                    copied_from[base] = copied_from.get(base, 0) + 1
        for base, count in copied_from.items():
            if count >= 2:
                self._emit(call, "LIF002",
                           f"hand-rolled replica copying {count} fields "
                           f"from '{base}'; use "
                           f"'{base}.copy_for_link(...)' so new fields "
                           "are never silently dropped")

    # -- call sites (UNT002 / CFG001 / CFG002 / LIF002) ----------------

    def _check_call(self, call: ast.Call, muted: UnitInferrer,
                    scope: _Scope, var_class: Dict[str, str],
                    var_dict_keys: Dict[str, List[str]]) -> None:
        self._check_replica(call, scope)
        callee = _last_segment(call.func)
        if callee is None:
            return
        if isinstance(call.func, ast.Name) \
                and (callee in self._aliased
                     or callee in _scope_params(scope)):
            return   # locally rebound name: the index entry is a stranger
        if callee == "replace":
            self._check_replace(call, var_class)
        cls = self.index.resolve_class(callee)
        if cls is not None:
            self._check_constructor(call, cls, muted, var_dict_keys)
            return
        if callee in self.index.classes:
            return   # ambiguous class: never guess
        func = None
        if isinstance(call.func, ast.Name):
            func = self.index.resolve_function(callee)
        elif isinstance(call.func, ast.Attribute):
            # Attribute calls resolve through the method table only:
            # `np.mean(...)` must not hit a project function named
            # `mean` just because the last segment matches.
            func = self.index.resolve_method(callee)
        if func is not None:
            self._check_function_call(call, func, muted)

    def _check_constructor(self, call: ast.Call, cls: ClassSchema,
                           muted: UnitInferrer,
                           var_dict_keys: Dict[str, List[str]]) -> None:
        fields = self.index.constructor_fields(cls)
        is_open = self.index.constructor_is_open(cls)
        order = cls.order
        self._check_positional_units(call, [(name, fields.get(name))
                                            for name in order], muted,
                                     f"field of {cls.name}")
        for keyword in call.keywords:
            if keyword.arg is None:
                self._check_dict_spread(call, keyword.value, cls, fields,
                                        is_open, var_dict_keys)
                continue
            if keyword.arg not in fields:
                if not is_open:
                    hint = _closest(keyword.arg, fields)
                    self._emit(keyword.value, "CFG001",
                               f"unknown keyword '{keyword.arg}' for "
                               f"{cls.name}{hint}")
                continue
            self._check_kwarg_unit(keyword, fields[keyword.arg],
                                   f"field '{keyword.arg}' of {cls.name}",
                                   muted)

    def _check_function_call(self, call: ast.Call, func: FuncSchema,
                             muted: UnitInferrer) -> None:
        self._check_positional_units(
            call, [(p.name, p.unit) for p in func.positional], muted,
            f"parameter of {func.name}()")
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            if keyword.arg not in func.param_units:
                if not func.has_var_keyword and not func.is_method:
                    hint = _closest(keyword.arg, func.param_units)
                    self._emit(keyword.value, "CFG001",
                               f"unknown keyword '{keyword.arg}' for "
                               f"{func.name}(){hint}")
                continue
            self._check_kwarg_unit(
                keyword, func.param_units[keyword.arg],
                f"parameter '{keyword.arg}' of {func.name}()", muted)

    def _check_positional_units(self, call: ast.Call,
                                params: List[Tuple[str, Optional[str]]],
                                muted: UnitInferrer, where: str) -> None:
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return
        for arg, (param_name, param_unit) in zip(call.args, params):
            if param_unit is None:
                continue
            arg_unit = muted.infer(arg)
            if arg_unit is not None and arg_unit != param_unit:
                self._emit(arg, "UNT002",
                           f"'{arg_unit}' expression passed to "
                           f"'{param_name}' ({where}) which expects "
                           f"'{param_unit}'")

    def _check_kwarg_unit(self, keyword: ast.keyword,
                          param_unit: Optional[str], where: str,
                          muted: UnitInferrer) -> None:
        if param_unit is None:
            return
        arg_unit = muted.infer(keyword.value)
        if arg_unit is not None and arg_unit != param_unit:
            self._emit(keyword.value, "UNT002",
                       f"'{arg_unit}' expression passed to {where} "
                       f"which expects '{param_unit}'")

    def _check_replace(self, call: ast.Call,
                       var_class: Dict[str, str]) -> None:
        if not call.args or not isinstance(call.args[0], ast.Name):
            return
        class_name = var_class.get(call.args[0].id)
        cls = self.index.resolve_class(class_name) if class_name else None
        if cls is None:
            return
        fields = self.index.constructor_fields(cls)
        if self.index.constructor_is_open(cls):
            return
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg not in fields:
                hint = _closest(keyword.arg, fields)
                self._emit(keyword.value, "CFG001",
                           f"unknown keyword '{keyword.arg}' in "
                           f"replace() of {cls.name}{hint}")

    def _check_dict_spread(self, call: ast.Call, value: ast.expr,
                           cls: ClassSchema,
                           fields: Dict[str, Optional[str]],
                           is_open: bool,
                           var_dict_keys: Dict[str, List[str]]) -> None:
        if is_open:
            return
        keys: Optional[List[str]] = None
        if isinstance(value, ast.Dict):
            literal = [k.value for k in value.keys
                       if isinstance(k, ast.Constant)
                       and isinstance(k.value, str)]
            if len(literal) == len(value.keys):
                keys = literal
        elif isinstance(value, ast.Name):
            keys = var_dict_keys.get(value.id)
        if keys is None:
            return
        for key in keys:
            if key not in fields:
                hint = _closest(key, fields)
                self._emit(value, "CFG002",
                           f"config dict key '{key}' matches no field of "
                           f"{cls.name}{hint}")

    # -- LIF003: unguarded delay reads ---------------------------------

    def _check_lif003(self, scope: _Scope) -> None:
        func = scope.node
        assert func is not None
        record_vars: Set[str] = set()
        guarded: Set[str] = set()
        reads: List[Tuple[str, ast.Attribute]] = []
        #: local name -> record var it was derived from (``d = r.delay``)
        derived: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                callee = _last_segment(node.value.func)
                if callee == "transmit" \
                        or callee in self.index.record_classes:
                    record_vars.add(node.targets[0].id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.target, ast.Name) \
                    and isinstance(node.iter, ast.Call) \
                    and _last_segment(node.iter.func) == "records":
                record_vars.add(node.target.id)
        if not record_vars:
            return
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Attribute) \
                    and isinstance(node.value.value, ast.Name) \
                    and node.value.value.id in record_vars \
                    and node.value.attr in ("delay", "arrival_time"):
                derived[node.targets[0].id] = node.value.value.id
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in record_vars:
                if node.attr == "delivered":
                    guarded.add(node.value.id)
                elif node.attr in ("delay", "arrival_time") \
                        and isinstance(node.ctx, ast.Load):
                    reads.append((node.value.id, node))
            elif isinstance(node, ast.Call) \
                    and _last_segment(node.func) in _NAN_GUARDS:
                # A NaN check on the record itself, or on a local the
                # read was stored into, both acknowledge the loss case.
                for arg in ast.walk(node):
                    if isinstance(arg, ast.Name):
                        if arg.id in record_vars:
                            guarded.add(arg.id)
                        elif arg.id in derived:
                            guarded.add(derived[arg.id])
        for name, node in reads:
            if name not in guarded:
                self._emit(node, "LIF003",
                           f"'{name}.{node.attr}' read without a "
                           f"'{name}.delivered' guard or NaN check; a "
                           "lost packet makes this NaN and it propagates "
                           "into downstream aggregates")


def _scope_params(scope: _Scope) -> Set[str]:
    node = scope.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    args = node.args
    names = {a.arg for a in list(args.posonlyargs) + list(args.args)
             + list(args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _closest(name: str, candidates: Dict[str, object]) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=1)
    return f"; did you mean '{matches[0]}'?" if matches else ""


#: rule id -> (short name, one-line description)
ALL_RULES: Dict[str, Tuple[str, str]] = {
    "UNT001": ("mixed-unit-expression",
               "Arithmetic or comparison between different units."),
    "UNT002": ("unit-mismatched-argument",
               "Unit-suffixed expression passed to a parameter or "
               "dataclass field of a different unit."),
    "UNT003": ("unit-mismatched-assignment",
               "Known-unit value bound to a name suffixed with a "
               "different unit."),
    "LIF001": ("packet-mutated-after-handoff",
               "Packet attribute written after the packet was handed to "
               "a queue, link or scheduler."),
    "LIF002": ("hand-rolled-replica",
               "Packet replica built field-by-field instead of "
               "copy_for_link()."),
    "LIF003": ("unguarded-delay-read",
               "DeliveryRecord delay/arrival_time read without a "
               "delivered guard or NaN check."),
    "CFG001": ("unknown-keyword",
               "Keyword argument matching no field/parameter of the "
               "resolved schema."),
    "CFG002": ("config-dict-key-mismatch",
               "Config dict spread into a constructor with keys outside "
               "the schema."),
    # pass 3 (interprocedural dataflow — reproflow.dataflow)
    "FLO001": ("stream-aliased",
               "One RandomRouter stream handed to two components (or "
               "handed out inside a loop over links/sessions)."),
    "FLO002": ("stream-escapes-module-state",
               "A stream stored into module-level, global, or "
               "class-attribute state."),
    "FLO003": ("seed-reuse-across-runs",
               "RandomRouter/fork constructed in a realization loop "
               "with a loop-invariant seed."),
    "PUR101": ("impure-task-state",
               "A runner task transitively mutates module/global or "
               "closure state (stale ResultCache)."),
    "PUR102": ("impure-task-clock",
               "A runner task transitively reads the wall clock "
               "(unsanctioned)."),
    "PUR103": ("impure-task-rng",
               "A runner task transitively draws from an unrouted "
               "RNG."),
    "ORD201": ("unordered-iteration-to-state",
               "set/unordered iteration flowing into ordered state, "
               "schedules, keyed writes, or digests."),
    "ORD202": ("unordered-float-accumulation",
               "Float accumulation (sum/fsum/+=) over an unordered "
               "iterable."),
    # pass 4 (concurrency & serialization safety — reproflow.parsafe)
    "SER301": ("unpicklable-task-callable",
               "Lambda/nested function/bound method (or an entry "
               "string naming one) submitted to the runner — cannot "
               "resolve or pickle under spawn."),
    "SER302": ("stateful-task-default",
               "A runner task parameter default constructing a "
               "handle/lock/queue/RNG — per-worker shared state."),
    "SER303": ("task-captures-handle",
               "A runner task transitively uses a module-level open "
               "handle or lock; each spawn worker gets its own copy."),
    "IMP401": ("import-time-effect",
               "Module-scope clock read/RNG draw/env mutation in a "
               "worker-imported module, replayed per worker import."),
    "IMP402": ("cross-process-global-read",
               "A function reads a module global that a runner task "
               "mutates inside worker processes."),
    "KEY501": ("cache-key-escape",
               "A runner task depends on env vars, call-time file "
               "reads, or module globals outside its RunSpec key."),
    "KEY502": ("dynamic-dispatch-escape",
               "Task-reachable dynamic import/getattr dispatch whose "
               "callee escapes the RunSpec code fingerprint."),
}


def rule_table() -> str:
    """Human-readable rule listing (``--list-rules``)."""
    width = max(len(rule_id) for rule_id in ALL_RULES)
    lines = []
    for rule_id in sorted(ALL_RULES):
        name, summary = ALL_RULES[rule_id]
        lines.append(f"{rule_id.ljust(width)}  {name.ljust(28)} {summary}")
    return "\n".join(lines)
