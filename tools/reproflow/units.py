"""Unit inference from the identifier-suffix convention.

The repo encodes physical units in names: ``duration_s``, ``d_ms``,
``size_bytes``, ``rssi_dbm``, ``power_mw``, ``rate_hz``, ``fade_db``,
``bitrate_bps``.  This module turns that convention into a small unit
algebra:

* the unit of an expression is derived from identifier suffixes and
  propagated through arithmetic;
* multiplying/dividing by the literal conversion factors 1000 / 0.001
  converts between seconds and milliseconds (``x_s * 1000.0`` *is* a
  millisecond quantity, not a unit error);
* adding a dB gain to a dBm level is legal RF math and yields dBm;
* any other arithmetic or comparison between two *different* known units
  is a reportable mismatch.

Unknown units are ``None`` and never participate in mismatches — the
analysis only speaks up when both sides are provably unit-suffixed.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

#: longest suffixes first so ``_dbm`` wins over ``_db``, ``_bps`` over ``_s``
_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_bytes", "bytes"),
    ("_dbm", "dbm"),
    ("_bps", "bps"),
    ("_mw", "mw"),
    ("_ms", "ms"),
    ("_hz", "hz"),
    ("_db", "db"),
    ("_s", "s"),
)

#: (unit, multiplier) -> resulting unit, for the two blessed conversions
_MUL_CONVERSIONS: Dict[Tuple[str, float], str] = {
    ("s", 1000.0): "ms",
    ("ms", 0.001): "s",
}
_DIV_CONVERSIONS: Dict[Tuple[str, float], str] = {
    ("ms", 1000.0): "s",
    ("s", 0.001): "ms",
}

#: single-value wrappers that preserve the unit of their arguments
_PASSTHROUGH_CALLS = {
    "float", "abs", "max", "min", "round", "sum", "int",
    "mean", "median", "nanmean", "nanmedian", "nanmax", "nanmin",
    "amax", "amin", "asarray", "array",
}

ReportFn = Callable[[ast.AST, str], None]


def unit_of_identifier(name: str) -> Optional[str]:
    """Unit encoded in an identifier's suffix, or None."""
    for suffix, unit in _SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


def _identifier_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _constant_value(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _constant_value(node.operand)
        return -inner if inner is not None else None
    return None


def _additive_result(left: Optional[str], right: Optional[str]
                     ) -> Tuple[Optional[str], bool]:
    """(result unit, mismatch?) for ``left + right`` / ``left - right``."""
    if left is None or right is None:
        return (left or right), False
    if left == right:
        return left, False
    # Adding a dB gain/penalty to a dBm level is correct RF arithmetic.
    if {left, right} == {"dbm", "db"}:
        return "dbm", False
    return None, True


class UnitInferrer:
    """Infers expression units inside one scope, reporting mismatches.

    ``env`` carries units learned for suffix-less local names from
    earlier assignments in the same scope (``spacing = profile
    .inter_packet_spacing_s`` makes ``spacing`` a seconds quantity).
    """

    def __init__(self, env: Optional[Dict[str, str]] = None,
                 report: Optional[ReportFn] = None):
        self.env: Dict[str, str] = env if env is not None else {}
        self._report = report

    def report(self, node: ast.AST, message: str) -> None:
        if self._report is not None:
            self._report(node, message)

    # -- the recursive walk -------------------------------------------

    def infer(self, node: ast.AST) -> Optional[str]:
        """Unit of ``node``; reports mismatches found along the way."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            ident = _identifier_of(node)
            unit = unit_of_identifier(ident) if ident else None
            if unit is None and isinstance(node, ast.Name):
                unit = self.env.get(node.id)
            return unit
        if isinstance(node, ast.Subscript):
            # recovery_delays_s[0] is still seconds
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            result, mismatch = _additive_result(left, right)
            if mismatch:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self.report(node,
                            f"mixed-unit arithmetic: '{left}' {op} "
                            f"'{right}' (convert explicitly first)")
            return result
        if isinstance(node.op, ast.Mult):
            return self._infer_mult(node, left, right)
        if isinstance(node.op, ast.Div):
            return self._infer_div(node, left, right)
        if isinstance(node.op, ast.Mod):
            # t % period_s keeps the time unit
            if left is not None and right in (left, None):
                return left
            return None
        return None

    def _infer_mult(self, node: ast.BinOp,
                    left: Optional[str], right: Optional[str]
                    ) -> Optional[str]:
        for unit, other in ((left, node.right), (right, node.left)):
            if unit is None:
                continue
            factor = _constant_value(other)
            if factor is not None:
                converted = _MUL_CONVERSIONS.get((unit, factor))
                if converted is not None:
                    return converted
        if left is not None and right is None:
            return left      # scaling by a dimensionless factor
        if right is not None and left is None:
            return right
        return None          # unit * unit changes dimension; don't guess

    def _infer_div(self, node: ast.BinOp,
                   left: Optional[str], right: Optional[str]
                   ) -> Optional[str]:
        if left is not None and right is None:
            factor = _constant_value(node.right)
            if factor is not None:
                converted = _DIV_CONVERSIONS.get((left, factor))
                if converted is not None:
                    return converted
                return left   # dividing by a literal count keeps the unit
        # Dividing by a non-literal (a rate, a size, ...) changes the
        # dimension — bytes / rate_bps is a duration, not bytes.
        return None

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self.infer(operand) for operand in operands]
        for left, right in zip(units, units[1:]):
            if left is not None and right is not None and left != right \
                    and {left, right} != {"dbm", "db"}:
                self.report(node,
                            f"mixed-unit comparison: '{left}' vs "
                            f"'{right}' (convert explicitly first)")

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        arg_units: List[Optional[str]] = [
            self.infer(arg) for arg in node.args]
        for keyword in node.keywords:
            self.infer(keyword.value)
        if func_name in _PASSTHROUGH_CALLS:
            known = [u for u in arg_units if u is not None]
            if len(set(known)) == 1:
                return known[0]
            if len(set(known)) > 1:
                self.report(node,
                            f"'{func_name}' mixes units "
                            f"{sorted(set(known))}; convert first")
        return None

    # -- assignment bookkeeping ---------------------------------------

    def learn(self, target: ast.AST, unit: Optional[str]) -> None:
        """Teach the env about ``target = <expr of unit>``."""
        if not isinstance(target, ast.Name) or unit is None:
            return
        if unit_of_identifier(target.id) is None:
            self.env[target.id] = unit
