"""Path-scoped rule exemptions for the project-wide stage.

Rationale per entry:

``tests/``
    * LIF002 — tests deliberately build packets field-by-field to pin
      down exact constructor behaviour (including tests *about*
      ``copy_for_link`` itself); demanding ``copy_for_link`` there would
      invert the point of the test.
    * LIF003 — tests assert on ``delay``/``arrival_time`` of packets
      they *know* were delivered (they arranged the loss pattern); a
      ``delivered`` guard would only obscure the assertion.
    * FLO003 — the paired identical-realization methodology *is* seed
      reuse: determinism tests run the same seed twice (often in a
      ``for _ in range(2)`` loop) and assert byte-identical digests.
      Flagging that loop would flag the repo's core test pattern.
      PUR and the other FLO rules still apply in full — a test that
      submits an impure task or leaks a stream into module state is a
      real bug (see the inline PUR102 suppressions in
      ``tests/test_runner.py`` for the sanctioned sleep-task sites).

``tools/``
    is analysis tooling, not simulation code; it has no packets,
    records, or unit-suffixed schemas of its own, so no exemptions are
    needed — the families simply have nothing to bite on.  Kept here as
    an explicit (empty) statement of that decision.

``src/repro/runner/``
    executes simulation tasks but owns no packets and no unit-suffixed
    schemas (its quantities are ``wall_time_s``/``timeout_s``, uniformly
    seconds), so it gets no exemptions either: the UNT/LIF/CFG families
    apply to it in full.  Recorded explicitly because the runner crosses
    process boundaries — exactly where a silently mismatched keyword or
    unit would be hardest to debug.

``src/repro/batch/``
    the vectorized population backend runs *inside* runner workers (its
    block tasks are mapped through ``map_configs`` and cached by
    content address), so it inherits the runner's zero-exemption
    stance: all rule families apply in full, including the pass-4
    SER/IMP/KEY checks on its task entry points.

``src/repro/net/``
    the SDN control plane (topology, link metrics, QoE controller) is
    reached from the cached ``controlplane`` runner task, and every
    controller decision lands in the digested payload, so it inherits
    the same zero-exemption stance: UNT/LIF/CFG and the pass-3/4
    dataflow families apply in full.

``src/repro/studies/``
    the Section 3 studies: the population block tasks (provider pass
    1/2, nettest) are mapped through ``map_configs`` into runner
    workers and cached by content address, and the scalar reference
    paths are the other half of the bit-parity contract, so the
    package inherits the zero-exemption stance in full.

The pass-4 families (SER — payload picklability under spawn, IMP —
import-time hazards in worker-imported modules, KEY — cache-key
soundness) are exempt *nowhere*.  They fire only on code reachable from
a task actually submitted to the runner, so they cannot produce the
tests-have-different-idioms noise the exemptions above exist for; and
the findings they did produce in ``src/`` (the provider study's
call-time knob fallbacks, KEY501) were fixed at the source rather than
carved out here.  Entries may also name a single ``.py`` file (see
:class:`lintcore.policy.PathPolicy`) for one-file exceptions; this
policy currently needs none.
"""

from __future__ import annotations

from lintcore.policy import PathPolicy

DEFAULT_POLICY = PathPolicy((
    ("tests/", ("LIF002", "LIF003", "FLO003")),
    ("src/repro/runner/", ()),
    ("src/repro/batch/", ()),
    ("src/repro/net/", ()),
    ("src/repro/studies/", ()),
))
