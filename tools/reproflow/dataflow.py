"""Pass 3b: interprocedural determinism dataflow.

Two layers on top of the :mod:`reproflow.callgraph`:

* :func:`propagate_effects` — closes each function's local effect sites
  over the call graph to a fixpoint, so a task entry point "has" every
  global write, wall-clock read and unrouted RNG draw of anything it can
  transitively reach.  Each propagated effect remembers the *first* call
  chain that introduced it, so the finding can show the path
  (``task → helper → offender``).

* :class:`Pass3Analyzer` — the per-file rule families, evaluated against
  the whole-project graph.  Like pass 2, every resolution is
  ambiguity-guarded: an entry point that cannot be resolved to exactly
  one function, or a name whose meaning is unclear, is skipped rather
  than guessed at.

==========  ============================  =========================================
id          name                          what it flags
==========  ============================  =========================================
FLO001      stream-aliased                one ``RandomRouter`` stream object handed
                                          to two components (two call sites, or a
                                          call inside a loop over links/sessions)
FLO002      stream-escapes-module-state   a stream (possibly returned through
                                          helpers in other modules) stored into a
                                          module-level name, ``global``, or
                                          class-body attribute
FLO003      seed-reuse-across-runs        ``RandomRouter(seed)`` / ``.fork(salt)``
                                          constructed inside a realization loop
                                          with a loop-invariant seed — every
                                          "independent" realization replays the
                                          same randomness
PUR101      impure-task-state             a function submitted to the runner
                                          transitively mutates module/global (or
                                          closure) state — the content-addressed
                                          cache would return stale results
PUR102      impure-task-clock             a runner task transitively reads the
                                          wall clock (unsanctioned)
PUR103      impure-task-rng               a runner task transitively draws from an
                                          unrouted RNG
ORD201      unordered-iteration-to-state  set/unordered iteration whose values
                                          flow into ordered state, schedules,
                                          dicts, or digests
ORD202      unordered-float-accumulation  ``sum()``/``fsum()`` over an unordered
                                          iterable, or ``+=`` accumulation inside
                                          a loop over one — float addition is not
                                          associative, so the result depends on
                                          hash order
==========  ============================  =========================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from reproflow.callgraph import (
    CLOCK_READ,
    GLOBAL_WRITE,
    UNROUTED_RNG,
    CallGraph,
    EffectSite,
    FunctionNode,
    TaskRoot,
    _own_body,
)
from reproflow.index import ProjectIndex

RawFinding = Tuple[int, int, str, str]   # (lineno, col, rule, message)

#: effect kind -> PUR rule id
_PUR_RULES = {
    GLOBAL_WRITE: "PUR101",
    CLOCK_READ: "PUR102",
    UNROUTED_RNG: "PUR103",
}

#: call targets considered order-insensitive consumers of an iterable
_ORDER_INSENSITIVE = frozenset({
    "set", "frozenset", "sorted", "min", "max", "any", "all", "len",
    "Counter",
})
#: reductions whose float result depends on summation order
_FLOAT_ACCUMULATORS = frozenset({"sum", "fsum", "nansum"})
#: sequence materializers that freeze the (arbitrary) iteration order
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "join"})
#: loop-body calls that hand values onward in order (schedulers, queues)
_ORDER_SINK_CALLS = frozenset({
    "append", "appendleft", "extend", "insert", "push", "put", "enqueue",
    "send", "schedule", "call_at", "call_in", "emit", "update",
    "write", "writerow", "add_row",
})
#: callables a stream may harmlessly be passed to (introspection)
_BENIGN_STREAM_SINKS = frozenset({
    "isinstance", "type", "id", "repr", "str", "len", "print",
    "getattr", "hasattr",
})
#: method names that retain (store) an argument for later use — handing
#: a stream to one of these aliases it just like a constructor does
_RETAIN_METHODS = frozenset({
    "attach", "register", "bind", "set_rng", "set_stream",
    "add_component", "install",
})


class PropagatedEffect:
    """One effect visible from a node, with the chain that reaches it."""

    __slots__ = ("site", "origin", "chain")

    def __init__(self, site: EffectSite, origin: str,
                 chain: Tuple[str, ...]):
        self.site = site
        self.origin = origin       # node id where the effect happens
        self.chain = chain         # node ids from root to origin

    def describe(self, graph: CallGraph) -> str:
        hops = [graph.nodes[n].qualname for n in self.chain
                if n in graph.nodes]
        origin_node = graph.nodes.get(self.origin)
        where = origin_node.qualname if origin_node else self.origin
        path = " -> ".join(hops) if len(hops) > 1 else where
        detail = self.site.detail
        return (f"{where} (line {self.site.lineno}) {detail}"
                + (f" [via {path}]" if len(hops) > 1 else ""))


#: summary keys are the plain effect kind, plus — for kinds listed in
#: ``granular_kinds`` with a known symbol — ``"<kind>:<symbol>"`` entries
#: so a consumer can see *every* distinct offender, not just the first
Summary = Dict[str, PropagatedEffect]          # key -> best chain
Summaries = Dict[str, Summary]                 # node id -> summary


def propagate_effects(graph: CallGraph,
                      granular_kinds: frozenset = frozenset()
                      ) -> Summaries:
    """Close local effects over call edges to a fixpoint.

    Each node's summary maps effect kind to the shortest known chain;
    cycles terminate because a summary only ever *gains* kinds and a
    kind's chain is never replaced once set.
    """
    summaries: Summaries = {}
    for node_id, node in graph.nodes.items():
        summary: Summary = {}
        for site in node.effects:
            keys = [site.kind]
            if site.kind in granular_kinds and site.symbol:
                keys.append(f"{site.kind}:{site.symbol}")
            for key in keys:
                if key not in summary:
                    summary[key] = PropagatedEffect(
                        site, node_id, (node_id,))
        summaries[node_id] = summary

    # reverse adjacency: callee -> callers
    callers: Dict[str, List[str]] = {}
    for node_id, node in graph.nodes.items():
        for call in node.calls:
            callers.setdefault(call.callee, []).append(node_id)

    worklist = [n for n in graph.nodes if summaries[n]]
    while worklist:
        current = worklist.pop()
        current_summary = summaries[current]
        for caller in callers.get(current, ()):
            caller_summary = summaries[caller]
            changed = False
            for kind, effect in current_summary.items():
                if kind not in caller_summary:
                    caller_summary[kind] = PropagatedEffect(
                        effect.site, effect.origin,
                        (caller,) + effect.chain)
                    changed = True
            if changed:
                worklist.append(caller)
    return summaries


# ---------------------------------------------------------------------------
# per-file analyzer
# ---------------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _last_segment(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _names_in(node: Optional[ast.AST]) -> Set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class Pass3Analyzer:
    """Runs the FLO / PUR / ORD families over one file."""

    def __init__(self, path: str, index: ProjectIndex, graph: CallGraph,
                 summaries: Summaries):
        self.path = path
        self.index = index
        self.graph = graph
        self.summaries = summaries
        self.findings: List[RawFinding] = []
        self._module_names: Set[str] = set()

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            (node.lineno, node.col_offset, rule, message))

    # -- entry ---------------------------------------------------------

    def analyze(self, tree: ast.Module) -> List[RawFinding]:
        for stmt in tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    self._module_names.add(target.id)

        self._check_pur(tree)
        # module body is a scope of its own (stream leaked at import time)
        self._check_flo_scope(tree, is_module_scope=True,
                              global_names=set())
        self._check_ord_scope(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                globals_here = {name
                                for stmt in _own_body(node)
                                if isinstance(stmt, ast.Global)
                                for name in stmt.names}
                self._check_flo_scope(node, is_module_scope=False,
                                      global_names=globals_here)
                self._check_flo003(node)
                self._check_ord_scope(node)
            elif isinstance(node, ast.ClassDef):
                self._check_flo_class_body(node)
        self._check_flo003_module(tree)

        seen: Set[RawFinding] = set()
        unique = [f for f in self.findings
                  if not (f in seen or seen.add(f))]
        unique.sort()
        return unique

    # -- PUR: runner-task purity ---------------------------------------

    def _check_pur(self, tree: ast.Module) -> None:
        for root in self.graph.task_roots:
            if root.path != self.path or root.node_id is None:
                continue
            summary = self.summaries.get(root.node_id, {})
            for kind in (GLOBAL_WRITE, CLOCK_READ, UNROUTED_RNG):
                effect = summary.get(kind)
                if effect is None:
                    continue
                rule = _PUR_RULES[kind]
                self.findings.append((
                    root.lineno, root.col,
                    rule,
                    f"task '{root.entry}' submitted to "
                    f"{root.submit_name}() is impure: "
                    f"{effect.describe(self.graph)}; the "
                    "content-addressed cache would replay results that "
                    "no longer match a fresh execution"))

    # -- FLO: stream flow ----------------------------------------------

    def _stream_tainted_call(self, call: ast.Call) -> bool:
        """True when ``call`` evaluates to a RandomRouter stream."""
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr == "stream":
            return True
        if isinstance(call.func, ast.Name):
            name = call.func.id
            target = self.graph._module_functions.get(
                self.path, {}).get(name)
            if target is None:
                candidates = self.graph._functions_by_name.get(name, [])
                if len(candidates) == 1:
                    target = candidates[0]
            if target is not None:
                node = self.graph.nodes.get(target)
                return node is not None and node.returns_stream
        return False

    def _retaining_callee(self, call: ast.Call) -> bool:
        """True when the callee plausibly *keeps* the argument: class
        constructors store streams as component state; drawing helpers
        (lowercase functions) consume values and return.  Sequential
        draws through one stream are deterministic — only retention
        aliases realizations across components."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in self.index.classes or func.id[:1].isupper()
        if isinstance(func, ast.Attribute):
            return (func.attr in _RETAIN_METHODS
                    or func.attr[:1].isupper())
        return False

    @staticmethod
    def _exclusive_branches(first: Tuple[Tuple[int, int], ...],
                            second: Tuple[Tuple[int, int], ...]) -> bool:
        """Two sites in different arms of the same ``if`` never both
        run — they share one stream only syntactically."""
        for (if_a, arm_a), (if_b, arm_b) in zip(first, second):
            if if_a != if_b:
                return False
            if arm_a != arm_b:
                return True
        return False

    def _check_flo_scope(self, scope: ast.AST, is_module_scope: bool,
                         global_names: Set[str]) -> None:
        tainted: Set[str] = set()
        bound_outside_loop: Set[str] = set()
        BranchPath = Tuple[Tuple[int, int], ...]
        passed_at: Dict[str, List[Tuple[int, int, BranchPath]]] = {}

        def handle_assign(stmt: ast.stmt, loop_depth: int) -> None:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                return
            is_stream = isinstance(value, ast.Call) \
                and self._stream_tainted_call(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    if is_stream:
                        tainted.add(target.id)
                        if loop_depth == 0:
                            bound_outside_loop.add(target.id)
                        if is_module_scope:
                            self._emit(
                                stmt, "FLO002",
                                f"stream bound to module-level name "
                                f"'{target.id}'; draws through it are "
                                "shared by every session in the process "
                                "— route streams through the session's "
                                "own RandomRouter")
                        elif target.id in global_names:
                            self._emit(
                                stmt, "FLO002",
                                f"stream stored into global "
                                f"'{target.id}'; stream state escapes "
                                "the session that owns it")
                    else:
                        tainted.discard(target.id)
                        bound_outside_loop.discard(target.id)
                elif isinstance(target, (ast.Attribute, ast.Subscript)) \
                        and is_stream and not is_module_scope:
                    base = target
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if isinstance(base, ast.Name) \
                            and base.id in self._module_names:
                        self._emit(
                            stmt, "FLO002",
                            f"stream stored into module-level object "
                            f"'{base.id}'; stream state escapes the "
                            "session that owns it")

        def handle_call(call: ast.Call, loop_depth: int,
                        branch_path: BranchPath) -> None:
            callee = _last_segment(call.func)
            if callee in _BENIGN_STREAM_SINKS:
                return
            # method call *on* the stream is a draw, not an alias
            if isinstance(call.func, ast.Attribute) \
                    and isinstance(call.func.value, ast.Name) \
                    and call.func.value.id in tainted:
                return
            if not self._retaining_callee(call):
                return
            for arg in list(call.args) + [k.value for k in call.keywords]:
                if not (isinstance(arg, ast.Name) and arg.id in tainted):
                    continue
                name = arg.id
                prior = passed_at.setdefault(name, [])
                in_loop = loop_depth > 0 and name in bound_outside_loop
                conflict = next(
                    (p for p in prior
                     if p[0] != call.lineno
                     and not self._exclusive_branches(p[2], branch_path)),
                    None)
                if conflict is not None:
                    self._emit(
                        call, "FLO001",
                        f"stream '{name}' already handed to a component "
                        f"at line {conflict[0]}; two components sharing "
                        "one generator couple their realizations — give "
                        "each its own named stream")
                elif in_loop:
                    self._emit(
                        call, "FLO001",
                        f"stream '{name}' created outside the loop is "
                        "retained by a component built inside it; every "
                        "iteration (link/session) shares one generator "
                        "— create a per-iteration stream instead")
                prior.append((call.lineno, call.col_offset, branch_path))

        self._walk_scope(scope, handle_assign, handle_call)

    def _walk_scope(self, scope: ast.AST, handle_assign,
                    handle_call) -> None:
        """Source-order statement walk with loop depth and branch path
        (which ``if`` arms enclose a site), own scope only."""

        def visit(stmts: Sequence[ast.stmt], loop_depth: int,
                  branch_path: tuple) -> None:
            for stmt in stmts:
                if isinstance(stmt, _SCOPE_NODES):
                    continue
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    handle_assign(stmt, loop_depth)
                for node in self._shallow_exprs(stmt):
                    for call in ast.walk(node):
                        if isinstance(call, ast.Call):
                            handle_call(call, loop_depth, branch_path)
                if isinstance(stmt, ast.If):
                    visit(stmt.body, loop_depth,
                          branch_path + ((id(stmt), 0),))
                    visit(stmt.orelse, loop_depth,
                          branch_path + ((id(stmt), 1),))
                    continue
                is_loop = isinstance(stmt, (ast.For, ast.AsyncFor,
                                            ast.While))
                for attr in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, attr, None)
                    if inner and isinstance(inner, list):
                        visit(inner,
                              loop_depth + 1 if is_loop
                              and attr == "body" else loop_depth,
                              branch_path)
                for handler in getattr(stmt, "handlers", ()):
                    visit(handler.body, loop_depth, branch_path)

        body = scope.body if hasattr(scope, "body") else []
        visit(body, 0, ())

    def _shallow_exprs(self, stmt: ast.stmt) -> Iterable[ast.expr]:
        for attr in ("value", "test", "iter", "exc", "msg", "targets",
                     "target"):
            node = getattr(stmt, attr, None)
            if isinstance(node, ast.expr):
                yield node
            elif isinstance(node, list):
                for item in node:
                    if isinstance(item, ast.expr):
                        yield item
        for item in getattr(stmt, "items", ()) or ():
            yield item.context_expr

    def _check_flo_class_body(self, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            value = getattr(stmt, "value", None)
            if isinstance(value, ast.Call) \
                    and self._stream_tainted_call(value) \
                    and isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._emit(
                    stmt, "FLO002",
                    f"stream bound to a class attribute of "
                    f"'{cls.name}'; every instance shares one generator "
                    "— create it per instance, from the session router")

    # -- FLO003: seed reuse in realization loops -----------------------

    def _is_realization_loop_iter(self, iter_node: ast.expr) -> bool:
        """Loops over ``range(...)`` or ``*seed*`` iterables enumerate
        independent realizations; loops over strategy/link lists are the
        paired-comparison pattern, where seed *reuse is the point*."""
        if isinstance(iter_node, ast.Call) \
                and _last_segment(iter_node.func) == "range":
            return True
        name = _last_segment(iter_node)
        return name is not None and "seed" in name.lower()

    def _seed_factory_arg(self, call: ast.Call) -> Optional[ast.expr]:
        """The seed/salt argument when ``call`` builds new randomness."""
        callee = _last_segment(call.func)
        if isinstance(call.func, ast.Name) and callee == "RandomRouter":
            if call.args:
                return call.args[0]
            for keyword in call.keywords:
                if keyword.arg == "seed":
                    return keyword.value
            return ast.Constant(value=0, lineno=call.lineno,
                                col_offset=call.col_offset)
        if isinstance(call.func, ast.Attribute) and callee == "fork":
            if call.args:
                return call.args[0]
            for keyword in call.keywords:
                if keyword.arg == "salt":
                    return keyword.value
        return None

    def _check_flo003(self, func: ast.AST) -> None:
        for node in _own_body(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not self._is_realization_loop_iter(node.iter):
                    continue
                variant = _names_in(node.target)
                for stmt in node.body:
                    for leaf in ast.walk(stmt):
                        if isinstance(leaf, ast.Name) \
                                and isinstance(leaf.ctx, ast.Store):
                            variant.add(leaf.id)
                for stmt in node.body:
                    for call in ast.walk(stmt):
                        if isinstance(call, ast.Call):
                            self._flag_invariant_seed(call, variant)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if not self._is_realization_loop_iter(gen.iter):
                        continue
                    variant = _names_in(gen.target)
                    for call in ast.walk(node):
                        if isinstance(call, ast.Call):
                            self._flag_invariant_seed(call, variant)

    def _check_flo003_module(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    and self._is_realization_loop_iter(stmt.iter):
                variant = _names_in(stmt.target)
                for inner in stmt.body:
                    for call in ast.walk(inner):
                        if isinstance(call, ast.Call):
                            self._flag_invariant_seed(call, variant)

    def _flag_invariant_seed(self, call: ast.Call,
                             variant: Set[str]) -> None:
        seed_expr = self._seed_factory_arg(call)
        if seed_expr is None:
            return
        if _names_in(seed_expr) & variant:
            return
        callee = _last_segment(call.func)
        self._emit(
            call, "FLO003",
            f"'{callee}(...)' inside a realization loop uses a "
            "loop-invariant seed; every iteration replays identical "
            "randomness — derive the seed (or fork salt) from the loop "
            "variable")

    # -- ORD: iteration-order hazards ----------------------------------

    def _unordered_expr(self, node: ast.expr,
                        tainted: Set[str]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Call):
            callee = _last_segment(node.func)
            if isinstance(node.func, ast.Name) \
                    and callee in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and callee in (
                    "union", "intersection", "difference",
                    "symmetric_difference"):
                return True
            if callee in ("listdir", "iglob", "scandir"):
                return True   # OS directory order is arbitrary
            if isinstance(node.func, ast.Name):
                target = self.graph._module_functions.get(
                    self.path, {}).get(callee or "")
                if target is None:
                    candidates = self.graph._functions_by_name.get(
                        callee or "", [])
                    if len(candidates) == 1:
                        target = candidates[0]
                if target is not None:
                    fn = self.graph.nodes.get(target)
                    return fn is not None and fn.returns_set
            return False
        if isinstance(node, ast.Attribute) \
                and node.attr in self.index.set_attributes \
                and isinstance(node.ctx, ast.Load):
            return True
        return False

    def _check_ord_scope(self, scope: ast.AST) -> None:
        tainted: Set[str] = set()
        for node in _own_body(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if self._unordered_expr(node.value, tainted):
                    tainted.add(node.targets[0].id)
                else:
                    tainted.discard(node.targets[0].id)

        blessed: Set[int] = set()
        for node in _own_body(scope):
            if isinstance(node, ast.Call):
                callee = _last_segment(node.func)
                if callee in _ORDER_INSENSITIVE and len(node.args) >= 1:
                    blessed.add(id(node.args[0]))

        for node in _own_body(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and self._unordered_expr(node.iter, tainted):
                self._check_ord_loop(node, tainted)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if id(node) in blessed:
                    continue
                for gen in node.generators:
                    if self._unordered_expr(gen.iter, tainted):
                        kind = ("dict built from" if
                                isinstance(node, ast.DictComp)
                                else "sequence built from")
                        self._emit(
                            node, "ORD201",
                            f"{kind} an unordered iterable; its order "
                            "follows the hash seed, not the spec — "
                            "iterate sorted(...) instead")
                        break
            elif isinstance(node, ast.Call):
                callee = _last_segment(node.func)
                args = node.args
                if not args:
                    continue
                arg = args[0]
                direct = self._unordered_expr(arg, tainted)
                via_gen = isinstance(
                    arg, ast.GeneratorExp) and any(
                    self._unordered_expr(g.iter, tainted)
                    for g in arg.generators)
                if not direct and not via_gen:
                    continue
                if callee in _FLOAT_ACCUMULATORS:
                    self._emit(
                        node, "ORD202",
                        f"'{callee}()' accumulates floats over an "
                        "unordered iterable; float addition is not "
                        "associative, so the result depends on hash "
                        "order — reduce over sorted(...) in spec order")
                elif callee in _ORDER_MATERIALIZERS:
                    self._emit(
                        node, "ORD201",
                        f"'{callee}()' freezes the arbitrary order of "
                        "an unordered iterable; use sorted(...) so the "
                        "materialized order is the spec order")

    def _check_ord_loop(self, loop: ast.AST, tainted: Set[str]) -> None:
        target_names = _names_in(loop.target)
        for node in _own_body_of_loop(loop):
            if isinstance(node, ast.AugAssign):
                self._emit(
                    loop, "ORD202",
                    "accumulation inside a loop over an unordered "
                    "iterable; float addition order follows the hash "
                    "seed — iterate sorted(...) instead")
                return
            if isinstance(node, ast.Call):
                callee = _last_segment(node.func)
                if callee in _ORDER_SINK_CALLS:
                    self._emit(
                        loop, "ORD201",
                        f"loop over an unordered iterable feeds "
                        f"'.{callee}()'; downstream order follows the "
                        "hash seed, not the spec — iterate sorted(...) "
                        "instead")
                    return
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        self._emit(
                            loop, "ORD201",
                            "loop over an unordered iterable writes "
                            "keyed entries; insertion order follows the "
                            "hash seed — iterate sorted(...) instead")
                        return
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                self._emit(
                    loop, "ORD201",
                    "loop over an unordered iterable yields values; "
                    "consumers observe hash order — iterate "
                    "sorted(...) instead")
                return


def _own_body_of_loop(loop: ast.AST):
    """Nodes of the loop body, not nested scopes."""
    stack = list(loop.body)
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)
