"""Multi-pass driver: parse everything once, index, graph, then analyze.

One parse feeds all passes: pass 1 builds the :class:`ProjectIndex`,
pass 3a builds the :class:`CallGraph` (with effect summaries propagated
to fixpoint) on the *same* trees, pass 4 folds its
concurrency/serialization effect sites into the same fixpoint, and the
per-file analyzers of passes 2, 3b and 4 all run off that shared state
— ``make lint`` pays for the filesystem walk and parsing exactly once
no matter how many passes run.

``analyze_paths`` always folds ``src/`` into the pass-1 index (when it
exists) even if only a subset of files was asked for — cross-module
resolution is the whole point, and a ``Packet`` constructed in a test
must still be checked against the schema defined in ``src/repro/core``.
PARSE and rule findings are only *reported* for the files actually
requested.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from lintcore.findings import Finding
from lintcore.policy import PathPolicy
from lintcore.suppress import is_suppressed, parse_suppressions
from lintcore.walk import iter_python_files

from reproflow.callgraph import CallGraph, build_callgraph
from reproflow.dataflow import Pass3Analyzer, Summaries, propagate_effects
from reproflow.index import ProjectIndex, build_index
from reproflow.parsafe import (GRANULAR_KINDS, ParsafeInfo, Pass4Analyzer,
                               collect_parsafe)
from reproflow.policy import DEFAULT_POLICY
from reproflow.rules import ALL_RULES, ScopeAnalyzer

__all__ = ["Finding", "analyze_paths", "analyze_source"]


def _parse(source: str, path: str
           ) -> Tuple[Optional[ast.Module], Optional[Finding]]:
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Finding(path=path, rule="PARSE", line=exc.lineno or 1,
                             col=(exc.offset or 1) - 1,
                             message=f"syntax error: {exc.msg}", text="")


def _analyze_tree(path: str, tree: ast.Module, source: str,
                  index: ProjectIndex,
                  rules: Optional[Sequence[str]],
                  graph: Optional[CallGraph] = None,
                  summaries: Optional[Summaries] = None,
                  parsafe: Optional[ParsafeInfo] = None) -> List[Finding]:
    lines = source.splitlines()
    suppressions = parse_suppressions(lines, tool="reproflow")
    selected = set(rules) if rules is not None else set(ALL_RULES)
    raw = list(ScopeAnalyzer(path, index).analyze(tree))
    if graph is not None and summaries is not None:
        raw += Pass3Analyzer(path, index, graph, summaries).analyze(tree)
        if parsafe is not None:
            raw += Pass4Analyzer(path, index, graph, summaries,
                                 parsafe).analyze(tree)
    findings: List[Finding] = []
    for lineno, col, rule_id, message in raw:
        if rule_id not in selected:
            continue
        if is_suppressed(suppressions, lineno, rule_id):
            continue
        text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
        findings.append(Finding(path=path, rule=rule_id, line=lineno,
                                col=col, message=message, text=text))
    return findings


def analyze_source(source: str, path: str,
                   rules: Optional[Sequence[str]] = None,
                   extra: Optional[Dict[str, str]] = None) -> List[Finding]:
    """Analyze one file's source text (unit-test entry point).

    ``extra`` maps path -> source for additional modules that should be
    part of the pass-1 index (schemas defined "elsewhere") without being
    analyzed themselves.
    """
    tree, parse_error = _parse(source, path)
    if parse_error is not None:
        return [parse_error]
    assert tree is not None
    trees: Dict[str, ast.Module] = {path: tree}
    sources: Dict[str, str] = {path: source}
    for extra_path, extra_source in (extra or {}).items():
        extra_tree, _ = _parse(extra_source, extra_path)
        if extra_tree is not None:
            trees[extra_path] = extra_tree
            sources[extra_path] = extra_source
    index = build_index(trees)
    graph = build_callgraph(trees, sources, index)
    parsafe = collect_parsafe(graph, trees)
    summaries = propagate_effects(graph, GRANULAR_KINDS)
    findings = _analyze_tree(path, tree, source, index, rules,
                             graph, summaries, parsafe)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_paths(paths: Iterable[str],
                  rules: Optional[Sequence[str]] = None,
                  policy: Optional[PathPolicy] = DEFAULT_POLICY
                  ) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` against a project-wide
    index that always includes ``src/`` when present."""
    targets = list(iter_python_files(paths))
    index_files = list(targets)
    if os.path.isdir("src"):
        seen = set(targets)
        index_files += [p for p in iter_python_files(["src"])
                        if p not in seen]

    sources: Dict[str, str] = {}
    trees: Dict[str, ast.Module] = {}
    parse_findings: List[Finding] = []
    target_set = set(targets)
    for path in index_files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        except OSError:
            continue
        tree, parse_error = _parse(sources[path], path)
        if tree is not None:
            trees[path] = tree
        elif parse_error is not None and path in target_set:
            parse_findings.append(parse_error)

    index = build_index(trees)
    graph = build_callgraph(trees, sources, index)
    parsafe = collect_parsafe(graph, trees)
    summaries = propagate_effects(graph, GRANULAR_KINDS)
    findings = list(parse_findings)
    for path in targets:
        if path not in trees:
            continue
        findings.extend(
            _analyze_tree(path, trees[path], sources[path], index, rules,
                          graph, summaries, parsafe))
    if policy is not None:
        findings = [f for f in findings
                    if not policy.exempt(f.path, f.rule)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
