"""Path-scoped rule exemptions.

The linters cover ``src/``, ``tools/`` and ``tests/``, but not every rule
makes sense everywhere: tests legitimately build throwaway seeded RNGs and
assert exact event times; command-line tools legitimately read the host
clock.  A :class:`PathPolicy` names those exemptions *once*, in code, with
a rationale — instead of scattering hundreds of inline suppressions or
silently not linting whole trees (the pre-PR-2 state).

A policy entry ``("tests/", {"DET001", ...})`` exempts the rules for any
file whose normalized path starts with, or contains, the ``tests/``
directory component.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple


class PathPolicy:
    """Ordered (directory-prefix, exempt-rules) pairs."""

    def __init__(self, entries: Sequence[Tuple[str, Iterable[str]]] = ()):
        self._entries: Tuple[Tuple[str, FrozenSet[str]], ...] = tuple(
            (prefix.rstrip("/") + "/", frozenset(rules))
            for prefix, rules in entries)

    def exempt(self, path: str, rule: str) -> bool:
        """True when ``rule`` is exempt for ``path``."""
        posix = path.replace("\\", "/")
        for prefix, rules in self._entries:
            if posix.startswith(prefix) or f"/{prefix}" in posix:
                if rule in rules:
                    return True
        return False

    def describe(self) -> str:
        """Human-readable listing (for ``--list-rules`` style output)."""
        lines = []
        for prefix, rules in self._entries:
            lines.append(f"{prefix}  exempt: {', '.join(sorted(rules))}")
        return "\n".join(lines)
