"""Path-scoped rule exemptions.

The linters cover ``src/``, ``tools/`` and ``tests/``, but not every rule
makes sense everywhere: tests legitimately build throwaway seeded RNGs and
assert exact event times; command-line tools legitimately read the host
clock.  A :class:`PathPolicy` names those exemptions *once*, in code, with
a rationale — instead of scattering hundreds of inline suppressions or
silently not linting whole trees (the pre-PR-2 state).

Two entry shapes:

* a directory entry ``("tests/", {"DET001", ...})`` exempts the rules
  for any file whose normalized path starts with, or contains, the
  ``tests/`` directory component;
* a file entry ``("tests/conftest.py", {"DET001"})`` — any entry whose
  last component names a ``.py`` file — exempts the rules for exactly
  that file (matched against the path's tail, so
  ``repo/tests/conftest.py`` matches too).  File entries let a policy
  carve out one deliberate exception without widening it to a whole
  tree.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple


class PathPolicy:
    """Ordered (directory-prefix or file-path, exempt-rules) pairs."""

    def __init__(self, entries: Sequence[Tuple[str, Iterable[str]]] = ()):
        normalized = []
        for prefix, rules in entries:
            posix = prefix.replace("\\", "/")
            if not posix.endswith(".py"):
                posix = posix.rstrip("/") + "/"
            normalized.append((posix, frozenset(rules)))
        self._entries: Tuple[Tuple[str, FrozenSet[str]], ...] = tuple(
            normalized)

    @staticmethod
    def _covers(entry: str, posix: str) -> bool:
        if entry.endswith(".py"):
            return posix == entry or posix.endswith(f"/{entry}")
        return posix.startswith(entry) or f"/{entry}" in posix

    def exempt(self, path: str, rule: str) -> bool:
        """True when ``rule`` is exempt for ``path``."""
        posix = path.replace("\\", "/")
        for entry, rules in self._entries:
            if self._covers(entry, posix) and rule in rules:
                return True
        return False

    def describe(self) -> str:
        """Human-readable listing (for ``--list-rules`` style output)."""
        lines = []
        for entry, rules in self._entries:
            lines.append(f"{entry}  exempt: {', '.join(sorted(rules))}")
        return "\n".join(lines)
