"""Deterministic Python-file discovery shared by every stage."""

from __future__ import annotations

import os
from typing import Iterable, List


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(set(out))
