"""Shared machinery for the repo's static-analysis stages.

Both linters — ``reprolint`` (stage 1: per-file determinism rules) and
``reproflow`` (stage 2: project-wide semantic rules on a two-pass index)
— are built on this package:

* :mod:`lintcore.findings`  — the :class:`Finding` record.
* :mod:`lintcore.suppress`  — per-line ``# <tool>: disable=RULE`` comments.
* :mod:`lintcore.baseline`  — freeze known findings, fail only on new ones.
* :mod:`lintcore.walk`      — deterministic ``.py`` file discovery.
* :mod:`lintcore.policy`    — path-scoped rule exemptions (tests/, tools/).
* :mod:`lintcore.output`    — text / json / github rendering.
* :mod:`lintcore.cli`       — the shared command-line driver.
"""

from lintcore.baseline import filter_new, load_baseline, write_baseline
from lintcore.findings import Finding
from lintcore.policy import PathPolicy
from lintcore.suppress import is_suppressed, parse_suppressions
from lintcore.walk import iter_python_files

__all__ = [
    "Finding",
    "PathPolicy",
    "filter_new",
    "is_suppressed",
    "iter_python_files",
    "load_baseline",
    "parse_suppressions",
    "write_baseline",
]
