"""Per-line suppression comments.

A finding on line *n* is suppressed when line *n* carries a comment of the
form::

    something()   # reprolint: disable=DET001
    something()   # reproflow: disable=UNT001,LIF002
    something()   # reproflow: disable=all

The tool name is part of the syntax: a ``reprolint`` disable never
silences a ``reproflow`` finding and vice versa, so each exception names
the stage it excuses.

Suppressions are deliberately line-scoped (the flagged statement's first
physical line) so that every exception is visible right where the rule
fires — there is no file- or block-level escape hatch short of the
baseline file.
"""

from __future__ import annotations

import re
from typing import Dict, Sequence, Set


def _disable_re(tool: str) -> "re.Pattern[str]":
    return re.compile(
        r"#\s*" + re.escape(tool)
        + r":\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


def parse_suppressions(lines: Sequence[str],
                       tool: str = "reprolint") -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of rule ids disabled there.

    The special id ``all`` disables every rule on that line.
    """
    pattern = _disable_re(tool)
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = pattern.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressions[lineno] = {r for r in rules if r}
    return suppressions


def is_suppressed(suppressions: Dict[int, Set[str]],
                  lineno: int, rule: str) -> bool:
    """True if ``rule`` is disabled on ``lineno``."""
    disabled = suppressions.get(lineno)
    if not disabled:
        return False
    return rule in disabled or "all" in disabled
