"""The shared command-line driver both analysis stages wrap.

Exit status: 0 when no (non-baselined) findings, 1 when violations were
found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import IO, Callable, Dict, List, Optional, Sequence, Tuple

from lintcore.baseline import filter_new, load_baseline, write_baseline
from lintcore.findings import Finding
from lintcore.output import FORMATS, emit

LintFn = Callable[[Sequence[str], Optional[Sequence[str]]], List[Finding]]


def build_parser(prog: str, description: str,
                 default_baseline: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {default_baseline} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="freeze current findings into the baseline "
                             "file and exit 0")
    parser.add_argument("--format", default="text", choices=FORMATS,
                        dest="fmt",
                        help="output format: text (default), json, or "
                             "github (Actions annotations)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding output")
    return parser


def run(prog: str, description: str,
        all_rules: Dict[str, Tuple[str, Callable]],
        rule_table: Callable[[], str],
        lint_paths: LintFn,
        default_baseline: str,
        argv: Optional[List[str]] = None,
        out: "IO[str]" = sys.stdout,
        default_paths: Sequence[str] = ("src/",)) -> int:
    """Parse ``argv`` and drive one lint stage end to end."""
    args = build_parser(prog, description, default_baseline).parse_args(argv)
    if args.list_rules:
        print(rule_table(), file=out)
        return 0

    paths = args.paths or list(default_paths)
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"{prog}: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    rules: Optional[List[str]] = None
    if args.select:
        rules = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rules if r not in all_rules]
        if unknown:
            print(f"{prog}: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings: List[Finding] = lint_paths(paths, rules)

    baseline_path = args.baseline or default_baseline
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"{prog}: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=out)
        return 0

    if not args.no_baseline and os.path.exists(baseline_path):
        findings = filter_new(findings, load_baseline(baseline_path))

    checked = "all rules" if rules is None else ",".join(rules)
    summary = f"{prog}: {len(findings)} new finding(s) ({checked})"
    if args.quiet:
        print(summary, file=out)
    else:
        emit(findings, args.fmt, prog, summary, out)
    return 1 if findings else 0
