"""The one record every rule in every stage produces."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    rule: str
    line: int
    col: int
    message: str
    #: stripped source text of the offending line — the stable part of the
    #: baseline fingerprint (line numbers drift, code rarely does)
    text: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.rule} {self.message}"
