"""Finding renderers: ``--format=text|json|github``.

``github`` emits workflow commands that GitHub Actions turns into inline
PR-diff annotations; ``json`` is a stable machine-readable dump for other
tooling.  Both include every finding the text format would.
"""

from __future__ import annotations

import json
from typing import IO, List

from lintcore.findings import Finding

FORMATS = ("text", "json", "github")


def _github_escape(value: str) -> str:
    """Escape per the workflow-command property/data rules."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(finding: Finding) -> str:
    return (f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::"
            f"{_github_escape(finding.message)}")


def emit(findings: List[Finding], fmt: str, tool: str, summary: str,
         out: "IO[str]") -> None:
    """Write ``findings`` to ``out`` in ``fmt``, ending with ``summary``.

    The summary line is always present on text/github output (CI logs and
    humans both key off it); json folds it into the payload instead.
    """
    if fmt == "json":
        payload = {
            "tool": tool,
            "summary": summary,
            "count": len(findings),
            "findings": [
                {"path": f.path.replace("\\", "/"), "rule": f.rule,
                 "line": f.line, "col": f.col + 1, "message": f.message,
                 "text": f.text}
                for f in findings],
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return
    for finding in findings:
        if fmt == "github":
            print(render_github(finding), file=out)
        else:
            print(finding.render(), file=out)
    print(summary, file=out)
