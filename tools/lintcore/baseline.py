"""Baseline files: freeze known findings, fail only on new ones.

A baseline is a JSON multiset of ``(path, rule, line-text)`` fingerprints.
Line *numbers* are deliberately excluded — inserting a docstring above an
old violation must not make it "new" — but the offending line's stripped
source text is included, so editing a baselined line re-surfaces it.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Counter as CounterType
from typing import List, Tuple

from lintcore.findings import Finding

FingerprintKey = Tuple[str, str, str]


def fingerprint(finding: Finding) -> FingerprintKey:
    return (finding.path.replace("\\", "/"), finding.rule, finding.text)


def write_baseline(path: str, findings: List[Finding]) -> None:
    entries = [{"path": f.path.replace("\\", "/"), "rule": f.rule,
                "text": f.text}
               for f in sorted(findings, key=fingerprint)]
    payload = {"version": 1, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> "CounterType[FingerprintKey]":
    """Multiset of baselined fingerprints."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    counter: CounterType[FingerprintKey] = Counter()
    for entry in payload.get("findings", ()):
        counter[(entry["path"], entry["rule"], entry["text"])] += 1
    return counter


def filter_new(findings: List[Finding],
               baselined: "CounterType[FingerprintKey]") -> List[Finding]:
    """Findings not covered by the baseline multiset."""
    budget = Counter(baselined)
    new: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    return new
