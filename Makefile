# DiversiFi reproduction — common tasks.

PYTHON ?= python

.PHONY: install test lint lint-baseline typecheck sanitize-test bench \
	bench-compare bench-pytest bench-smoke batch-smoke bench-full \
	obs-smoke sdn-smoke population-smoke examples docs clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

# Static-analysis pipeline, both stages:
#   stage 1 (tools/reprolint)  — per-file determinism lint
#   stage 2 (tools/reproflow)  — project-wide passes on one shared parse:
#                                pass 1 index, pass 2 units/lifecycle/
#                                config, pass 3 interprocedural dataflow
#                                (FLO/PUR/ORD), pass 4 concurrency &
#                                serialization safety (SER/IMP/KEY)
# Each fails on any finding not in its committed baseline; see
# CONTRIBUTING.md for the rule tables and suppression syntax.
lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/ tools/ tests/
	PYTHONPATH=tools $(PYTHON) -m reproflow src/ tools/ tests/

# Refreeze the baselines (only for genuinely unfixable legacy findings).
lint-baseline:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/ tools/ tests/ --write-baseline
	PYTHONPATH=tools $(PYTHON) -m reproflow src/ tools/ tests/ --write-baseline

# Strict typing gate for the core package.  mypy is an optional dev
# dependency (CI installs it); skip gracefully where it is absent.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --config-file mypy.ini src/repro; \
	else \
		echo "typecheck: mypy not installed; skipping (pip install mypy)"; \
	fi

# Run the simulator test files with the runtime invariant sanitizer on:
# heap-order assertions, stream-ownership checks, determinism digests.
sanitize-test:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/test_sim_engine.py \
		tests/test_sim_random.py tests/test_client_controller.py -q

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Perf trajectory baseline: the fixed scenario matrix, cache-cold and
# cache-warm, written to BENCH_runner.json at the repo root.
bench:
	PYTHONPATH=src $(PYTHON) -m repro.bench

# Diff a fresh benchmark run against the committed BENCH_runner.json;
# exits 1 when any subsystem lost >25% of its baseline sessions/sec.
# Cross-machine numbers are informational (CI runs this non-blocking).
bench-compare:
	PYTHONPATH=src $(PYTHON) tools/bench_compare.py

# The pytest-benchmark micro-suite (per-component timings).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output.txt

# Parallel-runner determinism smoke: the same small artifact executed
# serially and with --jobs 2 (sanitizer on) must print identical batch
# digests, and a warm-cache rerun must execute zero simulation runs.
bench-smoke:
	@rm -rf .bench-smoke-cache
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 6 \
		--cache-dir .bench-smoke-cache \
		| grep -o 'digest=[0-9a-f]*' > .bench-smoke-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 6 \
		--no-cache --jobs 2 \
		| grep -o 'digest=[0-9a-f]*' > .bench-smoke-jobs2
	cmp .bench-smoke-serial .bench-smoke-jobs2
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 6 \
		--cache-dir .bench-smoke-cache > .bench-smoke-warm
	grep -q 'executed=0' .bench-smoke-warm
	grep -o 'digest=[0-9a-f]*' .bench-smoke-warm \
		| cmp - .bench-smoke-serial
	@rm -rf .bench-smoke-cache .bench-smoke-serial .bench-smoke-jobs2 \
		.bench-smoke-warm
	@echo "bench-smoke: serial, --jobs 2 and warm-cache digests identical"

# Batch-backend determinism smoke: a 120-session population (two
# cache-keyed blocks) rendered serially and with --jobs 2 must print
# identical batch digests, and a warm-cache rerun must execute zero
# blocks.  REPRO_SANITIZE=1 additionally re-runs a sampled subset of
# each block through the event engine and checks statistical
# equivalence (repro.batch.sanity) before any digest is accepted.
batch-smoke:
	@rm -rf .batch-smoke-cache
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 120 \
		--backend batch --cache-dir .batch-smoke-cache \
		| grep -o 'digest=[0-9a-f]*' > .batch-smoke-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 120 \
		--backend batch --no-cache --jobs 2 \
		| grep -o 'digest=[0-9a-f]*' > .batch-smoke-jobs2
	cmp .batch-smoke-serial .batch-smoke-jobs2
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig2a --runs 120 \
		--backend batch --cache-dir .batch-smoke-cache > .batch-smoke-warm
	grep -q 'executed=0' .batch-smoke-warm
	grep -o 'digest=[0-9a-f]*' .batch-smoke-warm \
		| cmp - .batch-smoke-serial
	@rm -rf .batch-smoke-cache .batch-smoke-serial .batch-smoke-jobs2 \
		.batch-smoke-warm
	@echo "batch-smoke: serial, --jobs 2 and warm-cache digests identical"

# Metrics-export determinism smoke: the same artifact run serially, with
# --jobs 2 and from a warm cache (sanitizer on) must export byte-identical
# --metrics-out JSON — counters, gauges, histograms and span durations
# merged in spec order regardless of scheduling or cache hits.
obs-smoke:
	@rm -rf .obs-smoke-cache
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig8 --runs 3 \
		--cache-dir .obs-smoke-cache \
		--metrics-out .obs-smoke-serial.json > /dev/null
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig8 --runs 3 \
		--no-cache --jobs 2 \
		--metrics-out .obs-smoke-jobs2.json > /dev/null
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro fig8 --runs 3 \
		--cache-dir .obs-smoke-cache \
		--metrics-out .obs-smoke-warm.json > .obs-smoke-warm-out
	grep -q 'executed=0' .obs-smoke-warm-out
	cmp .obs-smoke-serial.json .obs-smoke-jobs2.json
	cmp .obs-smoke-serial.json .obs-smoke-warm.json
	@rm -rf .obs-smoke-cache .obs-smoke-serial.json .obs-smoke-jobs2.json \
		.obs-smoke-warm.json .obs-smoke-warm-out
	@echo "obs-smoke: serial, --jobs 2 and warm-cache metrics identical"

# Control-plane determinism smoke: the QoE controller head-to-head
# (event engine + SDN rules + middlebox valve) run serially, with
# --jobs 2 and from a warm cache (sanitizer on) must print identical
# batch digests — the controller's poll loop, reroutes and middlebox
# start/stop schedule are part of the digested payload.
sdn-smoke:
	@rm -rf .sdn-smoke-cache
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro controller \
		--runs 4 --cache-dir .sdn-smoke-cache \
		| grep -o 'digest=[0-9a-f]*' > .sdn-smoke-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro controller \
		--runs 4 --no-cache --jobs 2 \
		| grep -o 'digest=[0-9a-f]*' > .sdn-smoke-jobs2
	cmp .sdn-smoke-serial .sdn-smoke-jobs2
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro controller \
		--runs 4 --cache-dir .sdn-smoke-cache > .sdn-smoke-warm
	grep -q 'executed=0' .sdn-smoke-warm
	grep -o 'digest=[0-9a-f]*' .sdn-smoke-warm \
		| cmp - .sdn-smoke-serial
	@rm -rf .sdn-smoke-cache .sdn-smoke-serial .sdn-smoke-jobs2 \
		.sdn-smoke-warm
	@echo "sdn-smoke: serial, --jobs 2 and warm-cache digests identical"

# Population-study determinism smoke: a 50k-call provider population
# (4 blocks x 2 passes) and a small NetTest population, each run
# serially, with --jobs 2 and from a warm cache (sanitizer on), must
# print identical batch digests, and the warm rerun must execute zero
# blocks — the streaming-sketch merge is byte-stable across scheduling
# and caching modes.
population-smoke:
	@rm -rf .population-smoke-cache
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro provider \
		--calls 50000 --cache-dir .population-smoke-cache \
		| grep -o 'digest=[0-9a-f]*' > .population-smoke-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro provider \
		--calls 50000 --no-cache --jobs 2 \
		| grep -o 'digest=[0-9a-f]*' > .population-smoke-jobs2
	cmp .population-smoke-serial .population-smoke-jobs2
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro provider \
		--calls 50000 --cache-dir .population-smoke-cache \
		> .population-smoke-warm
	grep -q 'executed=0' .population-smoke-warm
	grep -o 'digest=[0-9a-f]*' .population-smoke-warm \
		| cmp - .population-smoke-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro nettest \
		--calls 200 --cache-dir .population-smoke-cache \
		| grep -o 'digest=[0-9a-f]*' > .population-smoke-nt-serial
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro nettest \
		--calls 200 --no-cache --jobs 2 \
		| grep -o 'digest=[0-9a-f]*' > .population-smoke-nt-jobs2
	cmp .population-smoke-nt-serial .population-smoke-nt-jobs2
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m repro nettest \
		--calls 200 --cache-dir .population-smoke-cache \
		> .population-smoke-nt-warm
	grep -q 'executed=0' .population-smoke-nt-warm
	grep -o 'digest=[0-9a-f]*' .population-smoke-nt-warm \
		| cmp - .population-smoke-nt-serial
	@rm -rf .population-smoke-cache .population-smoke-serial \
		.population-smoke-jobs2 .population-smoke-warm \
		.population-smoke-nt-serial .population-smoke-nt-jobs2 \
		.population-smoke-nt-warm
	@echo "population-smoke: serial, --jobs 2 and warm-cache digests identical"

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output_full.txt

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; \
	rm -rf .pytest_cache .hypothesis build *.egg-info
