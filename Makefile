# DiversiFi reproduction — common tasks.

PYTHON ?= python

.PHONY: install test lint lint-baseline sanitize-test bench bench-full \
	examples docs clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

# Determinism lint suite (tools/reprolint).  Fails on any finding not in
# .reprolint-baseline.json; see CONTRIBUTING.md for the rule table and
# suppression syntax.
lint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/

# Refreeze the baseline (only for genuinely unfixable legacy findings).
lint-baseline:
	PYTHONPATH=tools $(PYTHON) -m reprolint src/ --write-baseline

# Run the simulator test files with the runtime invariant sanitizer on:
# heap-order assertions, stream-ownership checks, determinism digests.
sanitize-test:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/test_sim_engine.py \
		tests/test_sim_random.py tests/test_client_controller.py -q

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output.txt

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output_full.txt

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; \
	rm -rf .pytest_cache .hypothesis build *.egg-info
