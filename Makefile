# DiversiFi reproduction — common tasks.

PYTHON ?= python

.PHONY: install test bench bench-full examples docs clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output.txt

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s \
		2>&1 | tee bench_output_full.txt

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; \
	rm -rf .pytest_cache .hypothesis build *.egg-info
