"""Every tunable of the DiversiFi system in one place.

Defaults are the paper's: Algorithm 1's constants, the G.711-like stream
profile of Section 4 (64 kbps, 160-byte packets, 20 ms spacing, 2-minute
calls), and the AP queue sizing rule APQueueLen = MaxTolerableDelay /
InterPktSpacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamProfile:
    """Characterizes a real-time stream (what RTP profile lookup yields)."""

    name: str = "g711"
    packet_size_bytes: int = 160
    inter_packet_spacing_s: float = 0.020
    duration_s: float = 120.0
    #: one-way delay budget for the WiFi hop (paper: 100 ms)
    max_tolerable_delay_s: float = 0.100

    @property
    def n_packets(self) -> int:
        """Packets in one call (paper: 6000 for a 2-minute G.711 call)."""
        return int(round(self.duration_s / self.inter_packet_spacing_s))

    @property
    def bitrate_bps(self) -> float:
        """Payload bitrate implied by size and spacing."""
        return self.packet_size_bytes * 8 / self.inter_packet_spacing_s


#: Section 4's VoIP workload: 64 kbps, 160 B, 20 ms, 2 minutes.
G711_PROFILE = StreamProfile()

#: Section 4.5's high-rate workload: 5 Mbps, 1000 B packets, 1.6 ms spacing.
HIGH_RATE_PROFILE = StreamProfile(
    name="highrate", packet_size_bytes=1000,
    inter_packet_spacing_s=0.0016, duration_s=120.0)


@dataclass(frozen=True)
class ClientConfig:
    """Algorithm 1's constants (paper Section 5.3.1).

    Derived quantities (APQueueLen, ExpectedTimeToReachHead) are properties
    so that changing a base constant keeps them consistent.
    """

    inter_packet_spacing_s: float = 0.020       # IPS
    max_tolerable_delay_s: float = 0.100        # MTD
    link_switch_latency_s: float = 0.0028       # LSL (measured: 2.8 ms)
    secondary_residency_time_s: float = 0.040   # SRT
    association_keepalive_timeout_s: float = 30.0  # AKT
    #: multiplier on IPS for the packet-loss timeout (PLT = 2 * IPS)
    packet_loss_timeout_factor: float = 2.0
    #: how long without a packet before the client declares a loss
    loss_detection_grace_s: float = 0.005

    @property
    def packet_loss_timeout_s(self) -> float:
        """PLT = 2 * IPS (= 40 ms with defaults)."""
        return self.packet_loss_timeout_factor * self.inter_packet_spacing_s

    @property
    def ap_queue_len(self) -> int:
        """APQL = MTD / IPS (= 5 with defaults)."""
        return int(round(self.max_tolerable_delay_s
                         / self.inter_packet_spacing_s))

    @property
    def expected_time_to_reach_head_s(self) -> float:
        """ETTRH = IPS * APQL - LSL (= 97.2 ms with defaults)."""
        return (self.inter_packet_spacing_s * self.ap_queue_len
                - self.link_switch_latency_s)

    def for_profile(self, profile: StreamProfile) -> "ClientConfig":
        """A config whose timing constants match a stream profile."""
        return ClientConfig(
            inter_packet_spacing_s=profile.inter_packet_spacing_s,
            max_tolerable_delay_s=profile.max_tolerable_delay_s,
            link_switch_latency_s=self.link_switch_latency_s,
            secondary_residency_time_s=self.secondary_residency_time_s,
            association_keepalive_timeout_s=(
                self.association_keepalive_timeout_s),
            packet_loss_timeout_factor=self.packet_loss_timeout_factor,
            loss_detection_grace_s=self.loss_detection_grace_s)


@dataclass(frozen=True)
class APConfig:
    """Access-point buffering behaviour (Section 5.3.1)."""

    #: "head" (DiversiFi's customized AP) or "tail" (stock PSM buffering)
    drop_policy: str = "head"
    #: maximum PSM buffer length in packets (paper: 5 for VoIP;
    #: stock OpenWRT default is 64)
    max_queue_len: int = 5
    #: how many queued packets the AP hands to the hardware queue in one go
    #: when the client wakes; >1 models firmware that flushes several PS
    #: frames at once (a source of wasteful duplication, Section 5.3.1)
    hardware_queue_batch: int = 1
    #: per-packet over-the-air service time (transmission + MAC overhead)
    service_time_s: float = 0.0015
    #: extra delivery attempts for a packet whose MAC burst failed while
    #: the client was present.  Stock 802.11 discards after the retry
    #: limit, so the default is 0; the knob exists for the ablation of
    #: aggressive AP-side redelivery.
    psm_redelivery_attempts: int = 0


@dataclass(frozen=True)
class MiddleboxConfig:
    """Click-style middlebox behaviour (Sections 5.3.2 and 6.4)."""

    #: head-drop buffer depth per flow
    buffer_len: int = 5
    #: base processing + LAN forwarding latency (Table 3: ~2 ms network,
    #: ~0.9 ms queuing at the middlebox)
    base_network_delay_s: float = 0.0020
    base_queuing_delay_s: float = 0.0009
    #: incremental delay per concurrent replicated stream (Section 6.4:
    #: +1.1 ms at 1000 streams)
    per_stream_delay_s: float = 1.1e-6


@dataclass
class ExperimentConfig:
    """Bundle used by experiment drivers."""

    profile: StreamProfile = field(default_factory=StreamProfile)
    client: ClientConfig = field(default_factory=ClientConfig)
    ap: APConfig = field(default_factory=APConfig)
    middlebox: MiddleboxConfig = field(default_factory=MiddleboxConfig)
    seed: int = 0
