"""N-link generalization of cross-link replication.

The paper evaluates two links (primary + secondary) but motivates the
design with the *many* BSSIDs available at typical venues (Figure 1:
median 6).  This module generalizes the Section 4 analysis to N links:

* :func:`render_multilink_run` — record one call replicated over N links;
* :func:`best_of` — receiver diversity over any subset;
* :func:`diversity_gain_curve` — worst-window loss as a function of the
  number of links used, the classic diminishing-returns curve that says
  where hedging stops paying.

Also provides :func:`make_before_break`, the seamless-handoff baseline of
related work [19]: selection with hysteresis where the client associates
to the next AP *before* leaving the current one (no association gap), but
still receives on only one link at a time — diversity minus the
replication benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace, merge_traces
from repro.core.types import RadioLink


@dataclass
class MultiLinkRun:
    """One call recorded over N links simultaneously."""

    profile: StreamProfile
    traces: List[LinkTrace]
    rssi_dbm: List[float] = field(default_factory=list)

    @property
    def n_links(self) -> int:
        return len(self.traces)


def render_multilink_run(links: Sequence[RadioLink],
                         profile: StreamProfile) -> MultiLinkRun:
    """Transmit one stream copy per link, all in global time order."""
    if not links:
        raise ValueError("need at least one link")
    n = profile.n_packets
    spacing = profile.inter_packet_spacing_s
    send_times = np.arange(n) * spacing

    columns = [{"delivered": np.zeros(n, dtype=bool),
                "delays": np.full(n, np.nan)} for _ in links]
    rssi_sums = [0.0] * len(links)
    rssi_counts = 0

    for seq in range(n):
        t = float(send_times[seq])
        if seq % 50 == 0:
            for i, link in enumerate(links):
                rssi_sums[i] += link.rssi_dbm(t)
            rssi_counts += 1
        for i, link in enumerate(links):
            record = link.transmit(seq, t, profile.packet_size_bytes)
            columns[i]["delivered"][seq] = record.delivered
            if record.delivered:
                columns[i]["delays"][seq] = record.delay

    traces = [LinkTrace(getattr(link, "name", f"link{i}"), send_times,
                        columns[i]["delivered"], columns[i]["delays"])
              for i, link in enumerate(links)]
    rssi = [s / rssi_counts for s in rssi_sums] if rssi_counts else []
    return MultiLinkRun(profile=profile, traces=traces, rssi_dbm=rssi)


def best_of(run: MultiLinkRun, k: int) -> LinkTrace:
    """Receiver diversity over the k strongest links (by mean RSSI)."""
    if not 1 <= k <= run.n_links:
        raise ValueError(f"k={k} outside 1..{run.n_links}")
    order = np.argsort(run.rssi_dbm)[::-1] if run.rssi_dbm \
        else np.arange(run.n_links)
    chosen = [run.traces[i] for i in order[:k]]
    if k == 1:
        return chosen[0]
    return merge_traces(chosen, name=f"best-of-{k}")


def diversity_gain_curve(runs: Sequence[MultiLinkRun],
                         metric: Callable[[LinkTrace], float]
                         ) -> Dict[int, float]:
    """Mean ``metric(trace)`` vs number of links used (1..N)."""
    if not runs:
        raise ValueError("no runs")
    n_links = min(run.n_links for run in runs)
    curve: Dict[int, float] = {}
    for k in range(1, n_links + 1):
        values = [metric(best_of(run, k)) for run in runs]
        curve[k] = float(np.mean(values))
    return curve


def make_before_break(run: MultiLinkRun,
                      rssi_hysteresis_db: float = 5.0,
                      evaluation_window: int = 50) -> LinkTrace:
    """Seamless-handoff selection baseline ([19]-style).

    The client listens on ONE link, re-evaluates every
    ``evaluation_window`` packets, and hands off to another link when
    that link's recent delivery rate beats the current one by enough to
    overcome hysteresis.  Because associations are pre-established
    (make-before-break) the handoff itself is lossless — but packets lost
    before the handoff are still gone, which is why replication wins.
    """
    n = run.profile.n_packets
    delivered = np.zeros(n, dtype=bool)
    delays = np.full(n, np.nan)
    # Start on the strongest link.
    current = int(np.argmax(run.rssi_dbm)) if run.rssi_dbm else 0
    hysteresis_margin = rssi_hysteresis_db / 100.0  # delivery-rate units

    for start in range(0, n, evaluation_window):
        block = slice(start, min(start + evaluation_window, n))
        trace = run.traces[current]
        delivered[block] = trace.delivered[block]
        delays[block] = trace.delays[block]
        # Re-evaluate on what each link delivered during this window
        # (the pre-associated client can snoop beacons cheaply).
        rates = [float(np.mean(t.delivered[block])) for t in run.traces]
        best = int(np.argmax(rates))
        if rates[best] > rates[current] + hysteresis_margin:
            current = best
    return LinkTrace("make-before-break", run.traces[0].send_times,
                     delivered, delays)
