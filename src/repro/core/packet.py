"""Packet, delivery-record and trace types shared across the stack.

The Section 4 analysis operates on :class:`LinkTrace` objects — the
per-packet outcome of sending one copy of a stream over one WiFi link —
mirroring the paper's methodology of recording a replicated stream on both
NICs and then replaying strategies over the recorded traces.

The Section 6 system evaluation produces :class:`StreamTrace` objects — the
receiver-side view (arrival times per sequence number, possibly via the
secondary link) that the voice-quality pipeline consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from repro.core.types import BoolArray, FloatArray


@dataclass
class Packet:
    """A single stream packet travelling through the simulated network."""

    seq: int
    send_time: float
    size_bytes: int = 160
    flow_id: str = "rt0"
    #: which link the copy travels on ("primary"/"secondary"/"wan"...)
    link: str = ""
    #: True for copies created by a replication point (SDN switch, source)
    is_duplicate: bool = False

    def copy_for_link(self, link: str, is_duplicate: bool = True) -> "Packet":
        """A replica of this packet tagged for a different link."""
        return Packet(seq=self.seq, send_time=self.send_time,
                      size_bytes=self.size_bytes, flow_id=self.flow_id,
                      link=link, is_duplicate=is_duplicate)


@dataclass
class DeliveryRecord:
    """Outcome of one packet copy on one link."""

    seq: int
    send_time: float
    delivered: bool
    #: arrival time at the receiver; NaN when not delivered
    arrival_time: float = math.nan

    @property
    def delay(self) -> float:
        """One-way delay in seconds (NaN when lost)."""
        if not self.delivered:
            return math.nan
        return self.arrival_time - self.send_time


class LinkTrace:
    """Per-packet outcomes for one copy of a stream over one link.

    Stored columnar (numpy arrays) because the analysis layer slides
    windows and computes correlations over thousands of packets per call.
    """

    def __init__(self, name: str, send_times: Sequence[float],
                 delivered: Sequence[bool], delays: Sequence[float]):
        self.name = name
        self.send_times: FloatArray = np.asarray(send_times, dtype=float)
        self.delivered: BoolArray = np.asarray(delivered, dtype=bool)
        self.delays: FloatArray = np.asarray(delays, dtype=float)
        if not (len(self.send_times) == len(self.delivered)
                == len(self.delays)):
            raise ValueError("trace columns must have equal length")

    def __len__(self) -> int:
        return len(self.send_times)

    @property
    def arrival_times(self) -> FloatArray:
        """Arrival time per packet (NaN where lost)."""
        arrivals = self.send_times + self.delays
        return np.where(self.delivered, arrivals, np.nan)

    @property
    def loss_indicator(self) -> FloatArray:
        """1.0 where the packet was lost, 0.0 where delivered."""
        return (~self.delivered).astype(float)

    @property
    def loss_rate(self) -> float:
        """Overall fraction of packets lost on this link."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(~self.delivered))

    def records(self) -> Iterator[DeliveryRecord]:
        """Iterate row-wise (convenient for event-driven consumers)."""
        arrivals = self.arrival_times
        for i in range(len(self)):
            yield DeliveryRecord(
                seq=i, send_time=float(self.send_times[i]),
                delivered=bool(self.delivered[i]),
                arrival_time=float(arrivals[i]))


@dataclass
class StreamTrace:
    """Receiver-side view of a stream: what arrived, and when.

    ``arrivals`` maps sequence number -> earliest arrival time. Packets
    absent from the map were never received.  ``duplicates`` counts copies
    received beyond the first (the paper's wasteful-duplication metric).
    """

    n_packets: int
    send_times: FloatArray
    arrivals: Dict[int, float] = field(default_factory=dict)
    duplicates: int = 0
    #: per-link receive counters for overhead accounting
    received_on: Dict[str, int] = field(default_factory=dict)

    def record_arrival(self, seq: int, time: float, link: str = "") -> bool:
        """Record a copy's arrival.  Returns True if it was the first copy."""
        if seq < 0 or seq >= self.n_packets:
            raise ValueError(f"sequence {seq} outside stream of "
                             f"{self.n_packets} packets")
        if link:
            self.received_on[link] = self.received_on.get(link, 0) + 1
        if seq in self.arrivals:
            self.duplicates += 1
            if time < self.arrivals[seq]:
                self.arrivals[seq] = time
            return False
        self.arrivals[seq] = time
        return True

    def effective_trace(self, deadline: Optional[float] = None,
                        name: str = "stream") -> LinkTrace:
        """Collapse to a LinkTrace: a packet counts as delivered only if it
        arrived, and (when ``deadline`` is given) within ``deadline`` seconds
        of its send time — the paper's MaxTolerableDelay accounting."""
        delivered = np.zeros(self.n_packets, dtype=bool)
        delays = np.full(self.n_packets, np.nan)
        for seq, arrival in self.arrivals.items():
            delay = arrival - self.send_times[seq]
            if deadline is not None and delay > deadline + 1e-12:
                continue
            delivered[seq] = True
            delays[seq] = delay
        return LinkTrace(name, self.send_times, delivered, delays)

    @property
    def loss_rate(self) -> float:
        """Fraction of stream packets never received (any copy, any time)."""
        if self.n_packets == 0:
            return 0.0
        return 1.0 - len(self.arrivals) / self.n_packets


def merge_traces(traces: Sequence[LinkTrace],
                 name: str = "merged") -> LinkTrace:
    """Receiver-diversity merge: delivered if delivered on *any* trace,
    with the earliest arrival winning.  This is naive two-NIC cross-link
    replication (Section 4), where the client receives both copies."""
    if not traces:
        raise ValueError("need at least one trace")
    n = len(traces[0])
    for trace in traces:
        if len(trace) != n:
            raise ValueError("traces must cover the same packet stream")
    send_times = traces[0].send_times
    arrival_stack = np.vstack([t.arrival_times for t in traces])
    # nanmin warns on all-NaN columns (packets no copy delivered); use a
    # sentinel instead.
    filled = np.where(np.isnan(arrival_stack), np.inf, arrival_stack)
    best_arrival = filled.min(axis=0)
    delivered = np.isfinite(best_arrival)
    best_arrival = np.where(delivered, best_arrival, np.nan)
    delays = best_arrival - send_times
    return LinkTrace(name, send_times, delivered, delays)
