"""Uplink DiversiFi — the paper's deferred direction, implemented.

Section 5 notes the design "would apply equally in the uplink direction
and would likely be easier to implement because the client would have
direct control over what packets are sent over which link and when".
This module provides that client:

* The client transmits the real-time stream on the primary link and gets
  *immediate* loss feedback from the missing MAC ACK (no network-side
  buffering or loss-detection timers needed).
* On a failure it switches to the secondary link (same 2.8 ms latency),
  retransmits the failed packet(s) and any packets that came due while
  off-channel, stays for ``SecondaryResidencyTime``, and returns.
* Packets older than ``MaxTolerableDelay`` are dropped rather than
  retransmitted — late audio is useless audio.

Duplication overhead is naturally zero (each packet is sent on exactly
one link unless its first transmission failed), confirming the paper's
intuition that the uplink is the easy direction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional, Tuple

import numpy as np

from repro.core.config import ClientConfig, StreamProfile
from repro.core.packet import StreamTrace
from repro.core.types import NamedRadioLink
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.sim.random import RandomRouter


@dataclass
class UplinkStats:
    """Uplink-session accounting."""

    sent_primary: int = 0
    sent_secondary: int = 0
    failures_primary: int = 0
    retransmissions: int = 0
    expired: int = 0
    switches: int = 0
    off_channel_time_s: float = 0.0


class UplinkDiversiFiClient:
    """Single-NIC uplink sender hedging across two links."""

    def __init__(self, sim: Simulator, link_primary: NamedRadioLink,
                 link_secondary: NamedRadioLink,
                 profile: StreamProfile,
                 config: Optional[ClientConfig] = None,
                 enabled: bool = True):
        self.sim = sim
        self.link_primary = link_primary
        self.link_secondary = link_secondary
        self.profile = profile
        self.config = config or ClientConfig().for_profile(profile)
        self.enabled = enabled
        self.stats = UplinkStats()

        n = profile.n_packets
        self._send_times = np.arange(n) * profile.inter_packet_spacing_s
        #: receiver-side view (the AP/wired peer's perspective)
        self.trace = StreamTrace(n_packets=n, send_times=self._send_times)
        self._on_secondary = False
        self._switching = False
        self._retry_queue: Deque[int] = deque()
        self._return_event = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the whole stream."""
        for seq in range(self.profile.n_packets):
            self.sim.call_at(float(self._send_times[seq]),
                             self._packet_due, seq)

    def _deadline(self, seq: int) -> float:
        return (float(self._send_times[seq])
                + self.config.max_tolerable_delay_s)

    def _packet_due(self, seq: int) -> None:
        if self._switching:
            # Radio mid-retune: queue for transmission on arrival.
            self._retry_queue.append(seq)
            return
        link = (self.link_secondary if self._on_secondary
                else self.link_primary)
        self._transmit(seq, link, is_retry=False)

    def _transmit(self, seq: int, link: NamedRadioLink,
                  is_retry: bool) -> None:
        if self.sim.now > self._deadline(seq):
            self.stats.expired += 1
            return
        record = link.transmit(seq, self.sim.now,
                               self.profile.packet_size_bytes)
        if link is self.link_primary:
            self.stats.sent_primary += 1
        else:
            self.stats.sent_secondary += 1
        if is_retry:
            self.stats.retransmissions += 1
        if record.delivered:
            arrival = record.arrival_time
            if arrival <= self._deadline(seq) + 1e-12:
                self.trace.record_arrival(seq, arrival,
                                          link=link.name)
            return
        # The MAC ACK never came: the client knows immediately.
        if link is self.link_primary:
            self.stats.failures_primary += 1
            if self.enabled:
                self._retry_queue.append(seq)
                self._go_to_secondary()
        elif self.enabled and self.sim.now < self._deadline(seq):
            # Failure on the secondary too: one more try back home.
            self._retry_queue.append(seq)

    # ------------------------------------------------------------------
    # switching

    def _go_to_secondary(self) -> None:
        if self._on_secondary or self._switching:
            return
        self._begin_switch(to_secondary=True)

    def _begin_switch(self, to_secondary: bool) -> None:
        self._switching = True
        self.stats.switches += 1
        started = self.sim.now
        if self._return_event is not None:
            self._return_event.cancel()
            self._return_event = None

        def done():
            self._switching = False
            self._on_secondary = to_secondary
            self.stats.off_channel_time_s += self.sim.now - started
            self._drain_retries()
            if to_secondary:
                self._return_event = self.sim.call_in(
                    self.config.secondary_residency_time_s,
                    self._begin_switch, False)

        self.sim.call_in(self.config.link_switch_latency_s, done)

    def _drain_retries(self) -> None:
        link = (self.link_secondary if self._on_secondary
                else self.link_primary)
        while self._retry_queue:
            seq = self._retry_queue.popleft()
            if seq in self.trace.arrivals:
                continue
            self._transmit(seq, link, is_retry=True)


def run_uplink_session(link_factory: Callable[["RandomRouter"],
                                              Tuple[Any, Any]],
                       profile: StreamProfile,
                       seed: int = 0, enabled: bool = True
                       ) -> UplinkDiversiFiClient:
    """Run one uplink call and return the finished client."""
    from repro.sim.random import RandomRouter
    sim = Simulator()
    router = RandomRouter(seed)
    link_primary, link_secondary = link_factory(router)
    client = UplinkDiversiFiClient(sim, link_primary, link_secondary,
                                   profile, enabled=enabled)
    client.start()
    sim.run(until=profile.duration_s + 1.0)
    return client
