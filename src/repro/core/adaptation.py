"""RTCP-driven replication policy: hedge only when it pays.

DiversiFi's coexistence story is that replication is confined to
real-time flows and to moments of actual need.  This module closes the
loop end to end: the sender watches RTCP receiver reports and turns
source replication (or the SDN replication rule) on only while the
reported loss is above a threshold, off again after a clean spell — so a
client on a pristine link never costs the network a duplicated byte.

The controller is deliberately hysteretic (separate on/off thresholds
and a minimum hold time) to avoid flapping on noisy reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.traffic.rtcp import ReceiverReport


@dataclass(frozen=True)
class AdaptationConfig:
    """Hysteresis parameters for the replication switch."""

    #: turn replication ON when reported loss exceeds this
    on_loss_threshold: float = 0.005
    #: turn it OFF when reported loss falls below this
    off_loss_threshold: float = 0.001
    #: minimum time to hold a state before switching again
    min_hold_s: float = 10.0
    #: also turn on when reported jitter exceeds this (late-loss proxy)
    on_jitter_threshold_s: float = 0.030

    def __post_init__(self) -> None:
        if self.off_loss_threshold > self.on_loss_threshold:
            raise ValueError("off threshold must not exceed on threshold")


class AdaptiveReplicationPolicy:
    """Feeds on receiver reports; drives a replication on/off control."""

    def __init__(self, config: AdaptationConfig = AdaptationConfig(),
                 set_replication: Optional[Callable[[bool], None]] = None):
        self.config = config
        self._set_replication = set_replication
        self.replicating = False
        self._last_change_t: Optional[float] = None
        #: (time, enabled) decision history
        self.decisions: List[tuple] = []

    def on_report(self, report: ReceiverReport) -> bool:
        """Consume one RR; returns the (possibly updated) state."""
        now = report.timestamp
        held_long_enough = (
            self._last_change_t is None
            or now - self._last_change_t >= self.config.min_hold_s)

        should_be_on = (
            report.fraction_lost >= self.config.on_loss_threshold
            or report.interarrival_jitter_s
            >= self.config.on_jitter_threshold_s)
        should_be_off = (
            report.fraction_lost <= self.config.off_loss_threshold
            and report.interarrival_jitter_s
            < self.config.on_jitter_threshold_s)

        if not self.replicating and should_be_on and held_long_enough:
            self._switch(True, now)
        elif self.replicating and should_be_off and held_long_enough:
            self._switch(False, now)
        return self.replicating

    def _switch(self, enabled: bool, now: float) -> None:
        self.replicating = enabled
        self._last_change_t = now
        self.decisions.append((now, enabled))
        if self._set_replication is not None:
            self._set_replication(enabled)

    def duty_cycle(self, total_time_s: float) -> float:
        """Fraction of the call during which replication was on."""
        if total_time_s <= 0:
            return 0.0
        on_time = 0.0
        state = False
        last_t = 0.0
        for t, enabled in self.decisions:
            if state:
                on_time += t - last_t
            state, last_t = enabled, t
        if state:
            on_time += total_time_s - last_t
        return min(on_time / total_time_s, 1.0)
