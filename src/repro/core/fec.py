"""FEC-based loss recovery on a single link — the coding baseline.

Prior work ([36], Vergetis et al.) recovers WiFi loss with packet-level
coding instead of replication: every block of ``k`` data packets is
followed by one XOR parity packet, so any *single* loss within a block is
recoverable once the rest of the block (and the parity) arrive.

This is the natural competitor DiversiFi's related-work section contrasts
against: coding adds a fixed 1/k overhead whether or not losses occur and
— critically — cannot recover *burst* losses that exceed the code's
redundancy within a block, which is exactly the loss pattern WiFi
produces.  The evaluation shows cross-link replication dominating FEC on
bursty channels while costing less airtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace
from repro.core.types import NamedRadioLink


@dataclass(frozen=True)
class FecConfig:
    """XOR-parity code parameters."""

    block_size: int = 5       # data packets per parity packet

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block size must be >= 1")

    @property
    def overhead_fraction(self) -> float:
        """Extra airtime relative to the data stream (always paid)."""
        return 1.0 / self.block_size


def apply_fec(data_trace: LinkTrace, parity_trace: LinkTrace,
              config: FecConfig = FecConfig(),
              decode_deadline_s: float = 0.100) -> LinkTrace:
    """Decode a stream protected by per-block XOR parity.

    ``data_trace`` holds the data packets' outcomes; ``parity_trace`` the
    parity packets' outcomes, one per block, indexed by block (only the
    first ``ceil(n/k)`` entries are used).  A lost data packet is
    recovered iff it is the only loss in its block, the block's parity
    arrived, and the decode completes within ``decode_deadline_s`` of the
    packet's send time (recovery must wait for the whole block).
    """
    n = len(data_trace)
    k = config.block_size
    delivered = data_trace.delivered.copy()
    delays = data_trace.delays.copy()
    parity_arrivals = parity_trace.arrival_times

    for block_start in range(0, n, k):
        block = slice(block_start, min(block_start + k, n))
        block_idx = np.arange(block.start, block.stop)
        lost = block_idx[~data_trace.delivered[block]]
        if len(lost) != 1:
            continue            # nothing to do, or beyond the code
        block_no = block_start // k
        if block_no >= len(parity_trace) \
                or not parity_trace.delivered[block_no]:
            continue            # parity itself lost
        # Decode completes when the last needed symbol arrives.
        needed_arrivals = [data_trace.arrival_times[i]
                           for i in block_idx if i != lost[0]]
        needed_arrivals.append(parity_arrivals[block_no])
        decode_time = max(needed_arrivals)
        seq = int(lost[0])
        decode_delay = decode_time - data_trace.send_times[seq]
        if decode_delay <= decode_deadline_s + 1e-12:
            delivered[seq] = True
            delays[seq] = decode_delay
    return LinkTrace(f"{data_trace.name}+fec", data_trace.send_times,
                     delivered, delays)


def render_fec_run(link: NamedRadioLink, profile: StreamProfile,
                   config: FecConfig = FecConfig()
                   ) -> Tuple[LinkTrace, LinkTrace]:
    """Transmit a stream plus its parity packets over one link.

    Parity packet for block b is sent right after the block's last data
    packet.  Returns (data_trace, parity_trace) ready for
    :func:`apply_fec`.
    """
    n = profile.n_packets
    k = config.block_size
    spacing = profile.inter_packet_spacing_s
    send_times = np.arange(n) * spacing

    data_delivered = np.zeros(n, dtype=bool)
    data_delays = np.full(n, np.nan)
    n_blocks = (n + k - 1) // k
    parity_send = np.zeros(n_blocks)
    parity_delivered = np.zeros(n_blocks, dtype=bool)
    parity_delays = np.full(n_blocks, np.nan)

    for seq in range(n):
        record = link.transmit(seq, float(send_times[seq]),
                               profile.packet_size_bytes)
        data_delivered[seq] = record.delivered
        if record.delivered:
            data_delays[seq] = record.delay
        is_block_end = (seq % k == k - 1) or (seq == n - 1)
        if is_block_end:
            block_no = seq // k
            # Parity rides just behind the last data packet of the block.
            p_time = float(send_times[seq]) + spacing * 0.5
            parity_send[block_no] = p_time
            p_record = link.transmit(seq, p_time,
                                     profile.packet_size_bytes)
            parity_delivered[block_no] = p_record.delivered
            if p_record.delivered:
                parity_delays[block_no] = (p_record.arrival_time - p_time)

    data = LinkTrace(link.name, send_times, data_delivered, data_delays)
    parity = LinkTrace(f"{link.name}-parity", parity_send,
                       parity_delivered, parity_delays)
    return data, parity
