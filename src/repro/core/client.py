"""The DiversiFi single-NIC client — Algorithm 1 of the paper.

The client keeps two associations alive through one physical NIC: the
*primary* (normally active) and the *secondary* (parked in PSM at its AP,
or backed by the middlebox).  Logic, per Algorithm 1:

* Receive the stream on the primary.  A packet is declared lost on the
  primary when a later sequence number arrives (gap detection) or when its
  expected arrival is ``PacketLossTimeout`` (= 2 x IPS) overdue.
* On loss, schedule a switch to the secondary **just in time** for the
  missing packet to reach the head of the secondary AP's short head-drop
  queue (``ExpectedTimeToReachHead = IPS * APQueueLen - LSL``), collect it,
  and switch back immediately — or after ``PacketLossTimeout`` if it never
  shows.
* Visit the secondary at least every ``AssociationKeepaliveTimeout``
  (30 s) for ``SecondaryResidencyTime`` (40 ms) to keep the association
  alive.

In middlebox mode the secondary AP is stock; the wake visit instead sends
a **start** message to the middlebox, which streams its buffer through the
secondary AP, and a **stop** on departure (Section 5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.config import ClientConfig, StreamProfile
from repro.core.packet import Packet, StreamTrace
from repro.core.types import ReplicaBuffer
from repro.obs.registry import LabelValue, MetricsRegistry
from repro.obs.runtime import active_registry
from repro.obs.spans import Span, SpanTracker
from repro.sim.engine import Event, Simulator
from repro.sim.tracing import EventLog
from repro.wifi.association import WifiManager


@dataclass
class ClientStats:
    """Per-call client-side accounting (Sections 6.2/6.3)."""

    received_primary: int = 0
    received_secondary: int = 0
    duplicates: int = 0
    losses_declared: int = 0
    #: packets whose first on-time copy came via the secondary path
    recovered: int = 0
    recovery_switches: int = 0
    keepalive_switches: int = 0
    #: recovery delay samples: loss-declared -> first secondary arrival
    recovery_delays_s: List[float] = field(default_factory=list)


class DiversiFiClient:
    """Algorithm 1 on the event engine."""

    PRIMARY = "primary"
    SECONDARY = "secondary"

    def __init__(self, sim: Simulator, manager: WifiManager,
                 profile: StreamProfile, config: ClientConfig,
                 stream_start_time: float = 0.0,
                 nominal_delay_s: float = 0.005,
                 middlebox: Optional[ReplicaBuffer] = None,
                 flow_id: str = "rt0",
                 enabled: bool = True,
                 event_log: Optional[EventLog] = None,
                 middlebox_explicit: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 metric_labels: Optional[Dict[str, LabelValue]] = None):
        self.sim = sim
        self.manager = manager
        self.profile = profile
        self.config = config
        self.flow_id = flow_id
        self.middlebox = middlebox
        #: use per-sequence retrieval instead of start/stop (§5.2.5)
        self.middlebox_explicit = middlebox_explicit
        #: with ``enabled=False`` the client never taps the secondary —
        #: the single-link baseline of Figure 8.
        self.enabled = enabled
        self.stats = ClientStats()
        self._event_log = event_log
        # Explicit registry wins; otherwise pick up the registry the
        # runner installed for this task, if any (see repro.obs.runtime).
        self._metrics = metrics if metrics is not None \
            else active_registry()
        self._metric_labels: Dict[str, LabelValue] = \
            dict(metric_labels or {})
        self._spans = SpanTracker(clock=lambda: self.sim.now,
                                  registry=self._metrics,
                                  event_log=event_log, source="client")
        self._visit_span: Optional[Span] = None

        n = profile.n_packets
        send_times = (stream_start_time
                      + np.arange(n) * profile.inter_packet_spacing_s)
        self.trace = StreamTrace(n_packets=n, send_times=send_times)
        self._send_times = send_times
        self._nominal_delay_s = nominal_delay_s
        self._highest_seen = -1
        #: seq -> recovery deadline (send time + MaxTolerableDelay)
        self._pending_lost: Dict[int, float] = {}
        self._declared_lost: Set[int] = set()
        self._loss_declared_at: Dict[int, float] = {}
        self._on_secondary = False
        self._visit_planned = False
        self._return_event: Optional[Event] = None
        self._last_secondary_visit = sim.now
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Activate on the primary and arm watchdogs."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        self.manager.activate(self.PRIMARY)
        if self.enabled:
            self._schedule_loss_checks()
            self._schedule_keepalive()

    def _schedule_loss_checks(self) -> None:
        # One overdue check per packet; cheap on the event heap and exact.
        for seq in range(self.profile.n_packets):
            check_at = (self._send_times[seq] + self._nominal_delay_s
                        + self.config.packet_loss_timeout_s)
            self.sim.call_at(float(check_at), self._check_overdue, seq)

    def _schedule_keepalive(self) -> None:
        self.sim.call_in(self.config.association_keepalive_timeout_s,
                         self._keepalive_tick)

    # ------------------------------------------------------------------
    # receive path (installed as both APs' receiver callback)

    def on_receive(self, packet: Packet, arrival_time: float,
                   ap_name: str) -> None:
        """Deliver one packet copy to the application-side trace."""
        seq = packet.seq
        via_secondary = ap_name != self.PRIMARY
        first_copy = self.trace.record_arrival(
            seq, arrival_time, link=ap_name)
        if via_secondary:
            self.stats.received_secondary += 1
        else:
            self.stats.received_primary += 1
        if not first_copy:
            self.stats.duplicates += 1
            self._count("client.duplicates")

        if first_copy and via_secondary and seq in self._declared_lost:
            deadline = (self._send_times[seq]
                        + self.config.max_tolerable_delay_s)
            if arrival_time <= deadline + 1e-9:
                self.stats.recovered += 1
                self._count("client.recovered")
                self._log("recovered", f"seq={seq}")
            declared = self._loss_declared_at.get(seq)
            if declared is not None:
                self.stats.recovery_delays_s.append(
                    arrival_time - declared)
                if self._metrics is not None:
                    self._metrics.histogram(
                        "client.recovery_delay_s",
                        **self._metric_labels).observe(
                            arrival_time - declared)

        self._pending_lost.pop(seq, None)

        if not via_secondary and self.enabled:
            # Gap detection: everything between the highest seq seen and
            # this one is missing on the primary.
            for missing in range(self._highest_seen + 1, seq):
                self._declare_lost(missing)
        self._highest_seen = max(self._highest_seen, seq)

        if (self._on_secondary and not self._pending_lost
                and self.enabled):
            # LostPacketReceivedOnSecondary -> switch back immediately.
            self._return_to_primary()

    # ------------------------------------------------------------------
    # loss handling

    def _check_overdue(self, seq: int) -> None:
        if seq in self.trace.arrivals or seq in self._declared_lost:
            return
        self._declare_lost(seq)

    def _log(self, kind: str, detail: str = "") -> None:
        if self._event_log is not None:
            self._event_log.record(self.sim.now, "client", kind, detail)

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, **self._metric_labels).inc(amount)

    def _declare_lost(self, seq: int) -> None:
        if seq in self._declared_lost or seq in self.trace.arrivals:
            return
        self._log("loss-declared", f"seq={seq}")
        self._declared_lost.add(seq)
        self._loss_declared_at[seq] = self.sim.now
        self.stats.losses_declared += 1
        self._count("client.losses_declared")
        deadline = (self._send_times[seq]
                    + self.config.max_tolerable_delay_s)
        if self.sim.now > deadline:
            return  # nothing to gain any more
        self._pending_lost[seq] = float(deadline)
        self._plan_recovery_visit(seq)

    def _recovery_wake_time(self, seq: int) -> float:
        """When the radio should be awake on the secondary for ``seq``.

        The packet reaches the head of the secondary's head-drop queue of
        APQueueLen once its successors fill the queue; it is purged when
        packet seq+APQueueLen arrives.  Waking one inter-packet spacing
        before the purge catches it at the head.
        """
        queue_residency = (self.config.ap_queue_len
                           * self.config.inter_packet_spacing_s)
        margin = self.config.inter_packet_spacing_s * 0.75
        return float(self._send_times[seq]) + queue_residency - margin

    def _plan_recovery_visit(self, seq: int) -> None:
        if self._on_secondary or self._visit_planned:
            return  # the active/planned visit will collect it
        wake_at = self._recovery_wake_time(seq)
        begin_at = wake_at - self.config.link_switch_latency_s
        self._visit_planned = True
        if begin_at <= self.sim.now:
            self._begin_switch_to_secondary()
        else:
            self.sim.call_at(begin_at, self._begin_switch_to_secondary)

    def _begin_switch_to_secondary(self) -> None:
        if self._on_secondary:
            self._visit_planned = False
            return
        if not self._pending_lost:
            # Everything recovered on the primary in the meantime.
            self._visit_planned = False
            return
        self.stats.recovery_switches += 1
        self._count("client.recovery_switches")
        self._log("switch-to-secondary",
                  f"pending={len(self._pending_lost)}")
        if self._visit_span is None:
            # A keepalive switch may already be in flight (span open);
            # that visit doubles as the recovery visit.
            self._visit_span = self._spans.span(
                "client.secondary_visit", reason="recovery",
                **self._metric_labels)
        self.manager.switch_to(self.SECONDARY, self._on_secondary_awake)

    def _on_secondary_awake(self) -> None:
        self._visit_planned = False
        self._on_secondary = True
        self._last_secondary_visit = self.sim.now
        if self.middlebox is not None:
            if self.middlebox_explicit:
                self.middlebox.retrieve(self.flow_id,
                                        list(self._pending_lost))
            else:
                self.middlebox.start(self.flow_id)
        if not self._pending_lost:
            self._return_to_primary()
            return
        # Hard return: PLT after waking, per Algorithm 1 line 12.
        stay_until = self.sim.now + self.config.packet_loss_timeout_s
        self._return_event = self.sim.call_at(
            stay_until, self._return_to_primary)

    def _return_to_primary(self) -> None:
        if not self._on_secondary:
            return
        self._on_secondary = False
        if self._return_event is not None:
            self._return_event.cancel()
            self._return_event = None
        if self.middlebox is not None and not self.middlebox_explicit:
            self.middlebox.stop(self.flow_id)
        self._log("switch-to-primary")
        if self._visit_span is not None:
            self._visit_span.end()
            self._visit_span = None
        # Expire pending packets that can no longer make their deadline.
        horizon = self.sim.now + self.config.link_switch_latency_s
        self._pending_lost = {
            seq: dl for seq, dl in self._pending_lost.items()
            if dl > horizon}
        self.manager.switch_to(self.PRIMARY, self._on_primary_awake)

    def _on_primary_awake(self) -> None:
        if self._pending_lost and not self._visit_planned:
            next_seq = min(self._pending_lost)
            self._plan_recovery_visit(next_seq)

    # ------------------------------------------------------------------
    # keepalive

    def _keepalive_tick(self) -> None:
        idle = self.sim.now - self._last_secondary_visit
        if idle >= self.config.association_keepalive_timeout_s - 1e-9:
            if not self._on_secondary and not self._visit_planned:
                self.stats.keepalive_switches += 1
                self._count("client.keepalive_switches")
                self._log("keepalive-visit")
                if self._visit_span is None:
                    self._visit_span = self._spans.span(
                        "client.secondary_visit", reason="keepalive",
                        **self._metric_labels)
                self.manager.switch_to(self.SECONDARY,
                                       self._keepalive_awake)
        # Re-arm relative to the most recent visit.
        next_check = max(
            self.config.association_keepalive_timeout_s - idle,
            self.config.association_keepalive_timeout_s * 0.1)
        self.sim.call_in(next_check, self._keepalive_tick)

    def _keepalive_awake(self) -> None:
        self._on_secondary = True
        self._last_secondary_visit = self.sim.now
        if self.middlebox is not None and not self.middlebox_explicit:
            self.middlebox.start(self.flow_id)
        self._return_event = self.sim.call_in(
            self.config.secondary_residency_time_s,
            self._return_to_primary)
