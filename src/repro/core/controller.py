"""End-to-end session orchestration: Figure 7's architectures, wired up.

:func:`run_session` assembles one simulated call:

* ``mode="diversifi-ap"``   — Figure 7(b): source replication, both copies
  over the LAN to their APs; the secondary AP is *customized* (head-drop,
  short settable queue).
* ``mode="diversifi-mbox"`` — Figure 7(c): an SDN switch replicates the
  flow, one copy to the primary AP, one to the middlebox; the secondary AP
  is stock and merely forwards what the middlebox streams.
* ``mode="primary-only"`` / ``mode="secondary-only"`` — single-link
  baselines (client pinned to one link, DiversiFi logic disabled).

The same ``seed`` yields statistically identical channels across modes, so
Figure 8's primary/secondary/DiversiFi comparison is run per location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Union

from repro.core.client import ClientStats, DiversiFiClient
from repro.core.config import (
    APConfig,
    ClientConfig,
    MiddleboxConfig,
    StreamProfile,
)
from repro.core.packet import LinkTrace, Packet, StreamTrace
from repro.net.lan import LanSegment
from repro.net.middlebox import Middlebox
from repro.net.sdn import FlowMatch, MatchAction, SdnSwitch
from repro.obs.registry import LabelValue, MetricsRegistry
from repro.obs.runtime import active_registry
from repro.sim.engine import Simulator
from repro.sim.random import RandomRouter
from repro.sim.tracing import EventLog
from repro.traffic.voip import VoipSender
from repro.wifi.ap import AccessPoint
from repro.wifi.association import WifiManager


VALID_MODES = ("diversifi-ap", "diversifi-mbox",
               "primary-only", "secondary-only")


@dataclass
class SessionResult:
    """Everything one simulated call produced."""

    mode: str
    stream: StreamTrace
    client_stats: ClientStats
    primary_ap: AccessPoint
    secondary_ap: AccessPoint
    middlebox: Optional[Middlebox] = None
    switch_count: int = 0
    off_channel_time_s: float = 0.0
    #: stats of the competing TCP flow on DEF, when one was run
    tcp_stats: Optional[object] = None
    #: sanitizer fingerprint of the executed event sequence; set only when
    #: the session ran with ``REPRO_SANITIZE=1`` (see repro.sim.sanitize)
    determinism_digest: Optional[str] = None

    def effective_trace(self, deadline: float = 0.100) -> LinkTrace:
        """Receiver trace with the MaxTolerableDelay accounting."""
        return self.stream.effective_trace(deadline=deadline,
                                           name=self.mode)

    @property
    def secondary_air_transmissions(self) -> int:
        return self.secondary_ap.stats.air_transmissions

    @property
    def wasteful_duplicates(self) -> int:
        """Secondary air transmissions that did not recover a packet."""
        return max(self.secondary_air_transmissions
                   - self.client_stats.recovered, 0)

    def wasteful_duplication_rate(self) -> float:
        """Fraction of the stream duplicated unnecessarily (Section 6.3)."""
        if self.stream.n_packets == 0:
            return 0.0
        return self.wasteful_duplicates / self.stream.n_packets


def run_session(link_factory: Callable[[RandomRouter], Tuple[Any, Any]],
                mode: str = "diversifi-ap",
                profile: StreamProfile = StreamProfile(),
                client_config: Optional[ClientConfig] = None,
                ap_config: Optional[APConfig] = None,
                middlebox_config: Optional[MiddleboxConfig] = None,
                seed: int = 0,
                extra_middlebox_streams: int = 0,
                with_tcp: bool = False,
                tcp_capacity_bps: float = 4.6e6,
                event_log: Optional[EventLog] = None,
                middlebox_explicit: bool = False,
                metrics: Optional[MetricsRegistry] = None) -> SessionResult:
    """Simulate one call end to end and return its result.

    ``link_factory(rng_router)`` builds the (primary, secondary) WifiLink
    pair — e.g. ``repro.scenarios.build_office_pair``.
    ``extra_middlebox_streams`` preloads the middlebox with other tenants
    (the Section 6.4 scalability sweep).

    ``metrics`` defaults to the registry the parallel runner installed
    for this task (``repro.obs.runtime.active_registry``); every metric
    the session records carries a ``mode`` label so the Figure 8
    architectures stay distinguishable after a batch merge.
    """
    if mode not in VALID_MODES:
        raise ValueError(f"unknown mode {mode!r}; pick from {VALID_MODES}")
    if metrics is None:
        metrics = active_registry()
    metric_labels: dict = {"mode": mode}
    client_config = client_config or ClientConfig().for_profile(profile)
    ap_config = ap_config or APConfig(
        max_queue_len=client_config.ap_queue_len)
    middlebox_config = middlebox_config or MiddleboxConfig(
        buffer_len=client_config.ap_queue_len)

    sim = Simulator()
    router = RandomRouter(seed)
    link_primary, link_secondary = link_factory(router)

    if mode == "secondary-only":
        link_primary, link_secondary = link_secondary, link_primary

    single_link = mode in ("primary-only", "secondary-only")

    # --- access points -------------------------------------------------
    primary_ap = AccessPoint(sim, "primary", link_primary,
                             APConfig(drop_policy=ap_config.drop_policy,
                                      max_queue_len=ap_config.max_queue_len,
                                      hardware_queue_batch=(
                                          ap_config.hardware_queue_batch),
                                      service_time_s=ap_config.service_time_s))
    if mode == "diversifi-mbox":
        # Stock secondary AP: tail-drop, deep buffer (it sees no PSM
        # traffic anyway — the middlebox holds the replica).
        secondary_ap_config = APConfig(drop_policy="tail", max_queue_len=64,
                                       hardware_queue_batch=(
                                           ap_config.hardware_queue_batch),
                                       service_time_s=ap_config.service_time_s)
    else:
        secondary_ap_config = ap_config
    secondary_ap = AccessPoint(sim, "secondary", link_secondary,
                               secondary_ap_config)

    # --- client NIC and associations ------------------------------------
    manager = WifiManager(sim, router.stream("client.psm"),
                          metrics=metrics)
    manager.create_adapter(DiversiFiClient.PRIMARY)
    manager.create_adapter(DiversiFiClient.SECONDARY)
    # The queue-length IE carries the experiment's AP buffer depth; a
    # customized (head-drop) AP honours it, a stock AP ignores it.
    manager.associate(DiversiFiClient.PRIMARY, primary_ap, channel=1,
                      requested_queue_len=ap_config.max_queue_len)
    manager.associate(DiversiFiClient.SECONDARY, secondary_ap, channel=11,
                      requested_queue_len=ap_config.max_queue_len)

    # --- wired side ------------------------------------------------------
    middlebox = None
    sender = VoipSender(sim, profile, flow_id="rt0")
    if mode == "diversifi-mbox":
        middlebox = Middlebox(sim, middlebox_config)
        for i in range(extra_middlebox_streams):
            middlebox.register_flow(f"tenant{i}", lambda pkt: None)
        switch = SdnSwitch(sim)
        switch.attach_port("to-primary",
                           _lan_into(sim, router, primary_ap, "lan-p"))
        switch.attach_port("to-mbox",
                           _lan_into(sim, router, middlebox.replica_arrival,
                                     "lan-m", is_ap=False))
        switch.install_rule(MatchAction(
            match=FlowMatch(flow_id="rt0"),
            output_ports=["to-primary", "to-mbox"], priority=10))
        sender.attach(switch.ingress)
        middlebox.register_flow(
            "rt0", _lan_into(sim, router, secondary_ap, "lan-s"))
    else:
        sender.attach(_lan_into(sim, router, primary_ap, "lan-p"),
                      link="primary")
        if not single_link:
            sender.attach(_lan_into(sim, router, secondary_ap, "lan-s"),
                          link="secondary")

    # --- client ----------------------------------------------------------
    client = DiversiFiClient(
        sim, manager, profile, client_config,
        middlebox=middlebox if mode == "diversifi-mbox" else None,
        enabled=not single_link, event_log=event_log,
        middlebox_explicit=middlebox_explicit,
        metrics=metrics, metric_labels=metric_labels)
    primary_ap.set_receiver(client.on_receive)
    secondary_ap.set_receiver(client.on_receive)

    # --- competing TCP flow on the DEF link (Figure 10) ------------------
    tcp = None
    if with_tcp:
        from repro.traffic.tcp import TcpReno
        # DEF shares the primary's channel: the flow stalls whenever the
        # radio is off-channel, and suffers the primary link's loss.
        tcp = TcpReno(
            sim, router.stream("tcp"),
            capacity_bps=tcp_capacity_bps,
            duration_s=profile.duration_s,
            radio_present=lambda: (
                manager.active_adapter == DiversiFiClient.PRIMARY),
            wireless_loss_prob=lambda: min(
                link_primary.attempt_loss_prob(sim.now), 0.5))
        tcp.start()

    client.start()
    sender.start()
    sim.run(until=profile.duration_s + 1.0)

    if metrics is not None:
        sim.record_metrics(metrics, **metric_labels)
        metrics.counter("session.runs", **metric_labels).inc()
        metrics.counter("session.switches",
                        **metric_labels).inc(manager.switch_count)
        metrics.histogram("session.off_channel_time_s",
                          **metric_labels).observe(
                              manager.off_channel_time_s)
        # Close the wake-ratio gauges at the end of the observation
        # period and fold them into the registry.
        manager.record_metrics(sim.now)

    return SessionResult(
        mode=mode, stream=client.trace, client_stats=client.stats,
        primary_ap=primary_ap, secondary_ap=secondary_ap,
        middlebox=middlebox,
        switch_count=manager.switch_count,
        off_channel_time_s=manager.off_channel_time_s,
        tcp_stats=tcp.stats if tcp is not None else None,
        determinism_digest=sim.determinism_digest())


def _lan_into(sim: Simulator, router: RandomRouter,
              target: Union[AccessPoint, Callable[[Packet], None]],
              name: str,
              is_ap: bool = True) -> Callable[[Packet], None]:
    """A LAN segment whose sink is an AP's wired ingress (or a callable)."""
    sink = target.wired_arrival if is_ap else target
    segment = LanSegment(sim, sink, router.stream(f"{name}.jitter"),
                         name=name)
    return segment.send
