"""The Section 4 strategy zoo.

Every strategy consumes a :class:`PairedRun` (both links' outcomes for the
same call) and returns the :class:`LinkTrace` the client would have
experienced:

* ``stronger``   — associate with the higher-RSSI link (what OSes do).
* ``better``     — sample both links for a 5 s trial, then settle on the
                   one that lost fewer packets during the trial.
* ``divert``     — fine-grained reactive link selection [28]: switch links
                   when >= T of the last H frames were lost.  Losses before
                   the switch are NOT recovered — the paper's key contrast
                   with diversity.
* ``temporal``   — two copies on one link, offset by delta seconds.
* ``cross_link`` — replication across both links (receiver diversity).
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from repro.core.packet import LinkTrace, merge_traces
from repro.core.replication import PairedRun, cross_link_trace


def stronger(run: PairedRun) -> LinkTrace:
    """Pick the link with the higher average RSSI for the whole call."""
    if run.rssi_a_dbm >= run.rssi_b_dbm:
        return run.trace_a
    return run.trace_b


def better(run: PairedRun, trial_s: float = 5.0) -> LinkTrace:
    """Trial both links for ``trial_s``, then settle on the better one.

    During the trial the two-NIC client hears both links (it is receiving
    on both anyway), so the trial segment is the merged trace.
    """
    spacing = run.profile.inter_packet_spacing_s
    trial_packets = min(int(round(trial_s / spacing)), run.n_packets)
    loss_a = float(np.mean(~run.trace_a.delivered[:trial_packets]))
    loss_b = float(np.mean(~run.trace_b.delivered[:trial_packets]))
    chosen = run.trace_a if loss_a <= loss_b else run.trace_b

    merged = merge_traces([run.trace_a, run.trace_b], name="trial")
    delivered = np.concatenate([
        merged.delivered[:trial_packets], chosen.delivered[trial_packets:]])
    delays = np.concatenate([
        merged.delays[:trial_packets], chosen.delays[trial_packets:]])
    return LinkTrace("better", run.trace_a.send_times, delivered, delays)


def divert(run: PairedRun, window_h: int = 1,
           threshold_t: int = 1) -> LinkTrace:
    """Divert-style fine-grained selection: switch on loss.

    A switch is triggered when >= ``threshold_t`` of the last ``window_h``
    frames on the current link were lost; it affects only FUTURE packets.
    (H=1, T=1, the setting used in the paper's comparison.)
    """
    if window_h < 1 or threshold_t < 1 or threshold_t > window_h:
        raise ValueError("need 1 <= T <= H")
    n = run.n_packets
    delivered = np.zeros(n, dtype=bool)
    delays = np.full(n, np.nan)
    current = "a"
    recent: deque = deque(maxlen=window_h)
    for seq in range(n):
        trace = run.trace_a if current == "a" else run.trace_b
        delivered[seq] = trace.delivered[seq]
        delays[seq] = trace.delays[seq]
        recent.append(not trace.delivered[seq])
        if len(recent) == window_h and sum(recent) >= threshold_t:
            current = "b" if current == "a" else "a"
            recent.clear()
    return LinkTrace("divert", run.trace_a.send_times, delivered, delays)


def temporal(run: PairedRun, delta_s: float) -> LinkTrace:
    """Two copies on link A, the second offset by ``delta_s``."""
    offset = run.offset_traces.get(delta_s)
    if offset is None:
        raise KeyError(
            f"run was not rendered with temporal delta {delta_s!r}; "
            f"available: {sorted(run.offset_traces)}")
    return merge_traces([run.trace_a, offset],
                        name=f"temporal-{delta_s * 1e3:.0f}ms")


def cross_link(run: PairedRun) -> LinkTrace:
    """Full cross-link replication (receive on both links)."""
    return cross_link_trace(run)


def baseline(run: PairedRun) -> LinkTrace:
    """No replication, no selection beyond the default (stronger)."""
    return stronger(run)


#: name -> callable registry used by experiment drivers
STRATEGIES: Dict[str, object] = {
    "stronger": stronger,
    "better": better,
    "divert": divert,
    "cross-link": cross_link,
    "baseline": baseline,
}
