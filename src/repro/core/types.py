"""Shared typing vocabulary for the core package.

Centralizes the numpy array aliases (``mypy --strict`` rejects bare
``np.ndarray`` under ``disallow_any_generics``) and the structural
protocols the core algorithms are generic over — any object with a
``transmit``/``rssi_dbm`` surface is a usable link, whether it is a
:class:`repro.wifi.link.WifiLink`, a cellular model, or a test stub.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.core.packet import DeliveryRecord

try:
    import numpy.typing as npt
    FloatArray = npt.NDArray[np.float64]
    BoolArray = npt.NDArray[np.bool_]
except ImportError:  # pragma: no cover - numpy < 1.21
    FloatArray = np.ndarray          # type: ignore[misc]
    BoolArray = np.ndarray           # type: ignore[misc]


class RadioLink(Protocol):
    """Structural type of anything the core can send a packet copy over."""

    def transmit(self, seq: int, time: float,
                 size_bytes: int) -> "DeliveryRecord":
        """Send one copy; the outcome is known immediately (MAC ACK)."""
        ...

    def rssi_dbm(self, time_s: float) -> float:
        """Received signal strength the client would measure at ``time_s``."""
        ...


class NamedRadioLink(RadioLink, Protocol):
    """A radio link that also carries a display name."""

    name: str


class ReplicaBuffer(Protocol):
    """The middlebox surface the client drives (Section 5.3.2)."""

    def start(self, flow_id: str) -> None:
        """Begin streaming the buffered replica through the secondary."""
        ...

    def stop(self, flow_id: str) -> None:
        """Halt streaming when the client returns to the primary."""
        ...

    def retrieve(self, flow_id: str, seqs: Sequence[int]) -> int:
        """Forward exactly ``seqs``; returns how many were buffered."""
        ...
