"""DiversiFi core: packets, replication strategies, and the client.

This package holds the paper's primary contribution:

* :mod:`repro.core.packet` — packet / delivery-record / trace types shared
  by the whole stack.
* :mod:`repro.core.strategies` — the Section 4 strategy zoo evaluated on
  paired link traces: ``stronger``, ``better``, ``divert``, ``temporal``,
  ``cross-link``.
* :mod:`repro.core.client` — the single-NIC DiversiFi client (Algorithm 1).
* :mod:`repro.core.controller` — end-to-end session wiring for the
  "Customized AP" and "Middlebox" architectures of Figure 7.
* :mod:`repro.core.config` — every tunable in one place.
"""

from repro.core.adaptation import AdaptationConfig, AdaptiveReplicationPolicy
from repro.core.config import ClientConfig, StreamProfile
from repro.core.fec import FecConfig, apply_fec, render_fec_run
from repro.core.multilink import (
    MultiLinkRun,
    best_of,
    diversity_gain_curve,
    make_before_break,
    render_multilink_run,
)
from repro.core.packet import DeliveryRecord, LinkTrace, Packet, StreamTrace
from repro.core.uplink import UplinkDiversiFiClient, run_uplink_session

__all__ = [
    "AdaptationConfig",
    "AdaptiveReplicationPolicy",
    "ClientConfig",
    "DeliveryRecord",
    "FecConfig",
    "LinkTrace",
    "MultiLinkRun",
    "Packet",
    "StreamProfile",
    "StreamTrace",
    "UplinkDiversiFiClient",
    "apply_fec",
    "best_of",
    "diversity_gain_curve",
    "make_before_break",
    "render_fec_run",
    "render_multilink_run",
    "run_uplink_session",
]
