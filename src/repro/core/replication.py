"""Two-NIC replication experiments: paired-run rendering (Section 4).

The paper's Section 4 methodology sends a copy of the same G.711-like
stream to each NIC of a two-NIC client and records both, then replays
selection/replication strategies over the recorded traces.  This module
renders the equivalent object: a :class:`PairedRun` holding, for one call
over one channel realization,

* ``trace_a`` / ``trace_b`` — per-packet outcomes of the stream copy on
  each link,
* ``offset_traces[delta]`` — outcomes of a second copy sent on link A with
  a temporal offset of ``delta`` seconds (for the temporal-replication
  comparison of Section 4.2),
* the RSSI each link showed (what the ``stronger`` policy consults).

All copies are transmitted in one pass in global time order so that every
strategy sees the *same* slow channel state (Gilbert sojourns, fades,
interference episodes) — the in-simulation analogue of replaying recorded
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace, merge_traces
from repro.core.types import NamedRadioLink


@dataclass
class PairedRun:
    """Everything recorded for one two-NIC call."""

    profile: StreamProfile
    trace_a: LinkTrace
    trace_b: LinkTrace
    offset_traces: Dict[float, LinkTrace] = field(default_factory=dict)
    rssi_a_dbm: float = 0.0
    rssi_b_dbm: float = 0.0
    #: scenario tag ("weak_link", "mobility", "microwave", "congestion")
    scenario: str = ""

    @property
    def n_packets(self) -> int:
        return len(self.trace_a)


def render_paired_run(link_a: NamedRadioLink, link_b: NamedRadioLink,
                      profile: StreamProfile,
                      temporal_deltas: Sequence[float] = (),
                      scenario: str = "") -> PairedRun:
    """Simulate one call with full replication on both links.

    ``temporal_deltas`` additionally transmits offset copies on link A at
    ``send_time + delta`` for each delta (0.0 means back-to-back).
    """
    n = profile.n_packets
    spacing = profile.inter_packet_spacing_s
    send_times = np.arange(n) * spacing

    # Build the global transmission schedule: (time, stream_key, seq).
    schedule: List[Tuple[float, str, int]] = []
    for seq in range(n):
        t = float(send_times[seq])
        schedule.append((t, "a", seq))
        schedule.append((t, "b", seq))
        for delta in temporal_deltas:
            # A back-to-back copy (delta=0) still follows the original by
            # one frame's airtime; represent "immediately after" with a
            # tiny epsilon so ordering is well defined.
            offset_time = t + max(delta, 1e-6)
            schedule.append((offset_time, f"offset:{delta}", seq))
    schedule.sort(key=lambda item: (item[0], item[1]))

    columns: Dict[str, Dict[str, np.ndarray]] = {}
    keys = ["a", "b"] + [f"offset:{d}" for d in temporal_deltas]
    for key in keys:
        columns[key] = {
            "delivered": np.zeros(n, dtype=bool),
            "delays": np.full(n, np.nan),
        }

    rssi_samples_a: List[float] = []
    rssi_samples_b: List[float] = []
    rssi_sample_period = 1.0
    next_rssi_sample = 0.0

    for time, key, seq in schedule:
        link = link_b if key == "b" else link_a
        if time >= next_rssi_sample:
            rssi_samples_a.append(link_a.rssi_dbm(time))
            rssi_samples_b.append(link_b.rssi_dbm(time))
            next_rssi_sample += rssi_sample_period
        record = link.transmit(seq, time, profile.packet_size_bytes)
        columns[key]["delivered"][seq] = record.delivered
        if record.delivered:
            # Delay is accounted relative to the ORIGINAL send time, so an
            # offset copy's delay includes its temporal offset.
            columns[key]["delays"][seq] = (record.arrival_time
                                           - float(send_times[seq]))

    def build(key: str, name: str) -> LinkTrace:
        return LinkTrace(name, send_times,
                         columns[key]["delivered"], columns[key]["delays"])

    offset_traces = {
        delta: build(f"offset:{delta}", f"{link_a.name}+{delta * 1e3:.0f}ms")
        for delta in temporal_deltas}
    return PairedRun(
        profile=profile,
        trace_a=build("a", link_a.name),
        trace_b=build("b", link_b.name),
        offset_traces=offset_traces,
        rssi_a_dbm=float(np.mean(rssi_samples_a)) if rssi_samples_a else 0.0,
        rssi_b_dbm=float(np.mean(rssi_samples_b)) if rssi_samples_b else 0.0,
        scenario=scenario)


def cross_link_trace(run: PairedRun) -> LinkTrace:
    """Naive two-NIC cross-link replication: best of both copies."""
    return merge_traces([run.trace_a, run.trace_b], name="cross-link")
