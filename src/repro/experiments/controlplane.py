"""Control-plane head-to-head: DiversiFi hedging vs QoE routing vs RAIL.

The evaluation the :mod:`repro.net.controller` exists for: the same
N-path topology, the same impaired channels, three strategies —

* ``qoe-route`` — dynamic single-path selection on E-model MOS (1x
  bandwidth, reacts after the damage shows up in the counters);
* ``hedge`` — DiversiFi: ride the strongest path, keep a replica branch
  buffered at a middlebox in front of the second-strongest AP, and open
  the valve only while the primary is actually losing packets;
* ``replicate`` — RAIL-style always-on duplication over every path
  (maximum robustness, N x bandwidth).

Each run builds the links once per mode from the *same* fork of the root
router, so all three strategies face identically-parameterized channels
(paired comparison at the parameter level; the sample paths diverge as
each strategy consumes its streams differently).

Everything here is runner-compatible: :data:`CONTROLLER_TASK` is a
module-level entry point whose inputs are plain JSON-able config, so the
sweep caches content-addressed and parallelizes across processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.windows import worst_window_loss
from repro.core.config import StreamProfile
from repro.net.controller import (
    CONTROLLER_MODES,
    ControllerConfig,
    QoeController,
)
from repro.net.middlebox import Middlebox
from repro.net.topology import (
    ClientCapture,
    StreamSource,
    build_npath_topology,
)
from repro.runner import map_task
from repro.scenarios import (
    MULTIPATH_MIX,
    build_multipath_links,
    sample_scenario_name,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomRouter
from repro.voice.pcr import score_call

CONTROLLER_TASK = "repro.experiments.controlplane:controller_run_metrics"


def _controller_config(config: ControllerConfig) -> Dict[str, Any]:
    """The JSON-able form of a :class:`ControllerConfig` (task input)."""
    return dataclasses.asdict(config)


def _run_one_mode(mode: str, index: int, root_seed: int, scenario: str,
                  n_paths: int, profile: StreamProfile,
                  config: ControllerConfig) -> Dict[str, Any]:
    """One strategy over one freshly-built run of the scenario."""
    # Every mode rebuilds from the same fork salt: identical scenario
    # pick, identical channel parameters, identical stream seeds.
    router = RandomRouter(root_seed).fork(f"controlplane-{index}")
    name = scenario
    if name == "mix":
        name = sample_scenario_name(router.stream("scenario.pick"),
                                    MULTIPATH_MIX)
    links = build_multipath_links(name, router, n_paths=n_paths)
    sim = Simulator()
    client = ClientCapture(sim)
    topology = build_npath_topology(sim, links, client)
    middlebox = Middlebox(sim) if mode == "hedge" else None
    controller = QoeController(sim, topology, "rt0", mode,
                               config=config, middlebox=middlebox)
    if mode == "hedge":
        controller.register_hedge_flow()
    controller.start()
    StreamSource(sim, topology.ingress, profile, flow_id="rt0").start()
    sim.run(until=profile.duration_s + 1.0)

    trace = client.trace(profile)
    score = score_call(trace)
    data_sent = sum(radio.stats.data_sent
                    for radio in topology.radios())
    return {
        "mos": float(score.mos),
        "loss_pct": 100.0 * float(score.loss_fraction),
        "worst_pct": 100.0 * float(worst_window_loss(trace)),
        "copies_per_packet": data_sent / max(profile.n_packets, 1),
        "duplicates": float(client.duplicates),
        "reroutes": float(controller.stats.reroutes),
        "mbox_starts": float(controller.stats.mbox_starts),
        "polls": float(controller.stats.polls),
        "scenario": name,
    }


def controller_run_metrics(index: int, *, root_seed: int, scenario: str,
                           n_paths: int, profile: Mapping[str, Any],
                           controller: Mapping[str, Any]
                           ) -> Dict[str, Dict[str, Any]]:
    """One head-to-head run: every strategy over the same channel draw.

    Runner task (:data:`CONTROLLER_TASK`): all knobs arrive as plain
    config, all randomness derives from ``(root_seed, index)``.
    """
    stream_profile = StreamProfile(**profile)
    controller_config = ControllerConfig(**controller)
    return {mode: _run_one_mode(mode, index, root_seed, scenario,
                                n_paths, stream_profile,
                                controller_config)
            for mode in CONTROLLER_MODES}


@dataclass
class ControlPlaneResult:
    """Per-strategy means over the sweep."""

    n_runs: int
    n_paths: int
    #: mode -> metric -> mean over runs
    rows: Dict[str, Dict[str, float]]
    #: scenario name -> run count (mix observability)
    scenario_counts: Dict[str, int]

    def render(self) -> str:
        table = [[mode,
                  f"{row['mos']:.2f}",
                  f"{row['worst_pct']:.2f}%",
                  f"{row['loss_pct']:.2f}%",
                  f"{row['copies_per_packet']:.2f}x",
                  f"{row['reroutes']:.1f}",
                  f"{row['mbox_starts']:.1f}"]
                 for mode, row in sorted(self.rows.items())]
        return render_table(
            f"Control-plane head-to-head over {self.n_paths}-path "
            f"topologies ({self.n_runs} runs)",
            ["strategy", "MOS", "worst-5s", "loss", "bandwidth",
             "reroutes", "mbox starts"],
            table)


def run_controller_sweep(n_runs: int = 8, seed: int = 0,
                         scenario: str = "mix", n_paths: int = 3,
                         profile: StreamProfile = StreamProfile(
                             duration_s=30.0),
                         config: Optional[ControllerConfig] = None
                         ) -> ControlPlaneResult:
    """The head-to-head sweep (cached + parallel via the runner)."""
    controller_config = config if config is not None else ControllerConfig()
    payloads = map_task(
        CONTROLLER_TASK, range(n_runs),
        {"root_seed": seed, "scenario": scenario, "n_paths": n_paths,
         "profile": dataclasses.asdict(profile),
         "controller": _controller_config(controller_config)})
    rows: Dict[str, Dict[str, float]] = {}
    metrics = ("mos", "loss_pct", "worst_pct", "copies_per_packet",
               "duplicates", "reroutes", "mbox_starts", "polls")
    for mode in CONTROLLER_MODES:
        rows[mode] = {metric: float(np.mean(
            [payload[mode][metric] for payload in payloads]))
            for metric in metrics}
    counts: Dict[str, int] = {}
    for payload in payloads:
        name = str(payload[CONTROLLER_MODES[0]]["scenario"])
        counts[name] = counts.get(name, 0) + 1
    return ControlPlaneResult(n_runs=n_runs, n_paths=n_paths,
                              rows=rows, scenario_counts=counts)
