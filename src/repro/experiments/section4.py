"""Section 4 drivers: the two-NIC analysis figures (2a–2e, 3, 4, 5, 6).

All of Figure 2 and Figures 4–6 share one dataset: N simulated calls over
the wild scenario mix with full replication recorded on both links (the
counterpart of the paper's 458-call trace collection).

The per-run unit of work is :func:`wild_run_metrics` — render ONE wild
call and evaluate the full strategy suite on it — executed through
:mod:`repro.runner`'s map API.  Because every run is independent and
seeded from ``(root seed, index)``, the batch parallelizes across
processes (``--jobs``), is content-address cached per run, and merges in
seed order, so serial and parallel executions produce byte-identical
figures.  One run's payload carries the superset of metrics the Section
4 figures need, so Figures 2a/2b/2c/4/5 all hit the same cache entries.

:func:`wild_dataset` (the in-memory ``PairedRun`` tuple) remains for
tests and ad-hoc analysis of the raw traces.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.analysis.bursts import burst_lengths
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.correlation import (
    loss_autocorrelation,
    loss_crosscorrelation,
)
from repro.analysis.report import (
    render_cdf_series,
    render_histogram,
    render_table,
)
from repro.analysis.windows import worst_window_loss
from repro.core import strategies
from repro.core.config import G711_PROFILE, HIGH_RATE_PROFILE, StreamProfile
from repro.core.replication import PairedRun
from repro.runner import map_task
from repro.scenarios import build_scenario, generate_wild_run, \
    generate_wild_runs
from repro.sim.random import RandomRouter
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call

#: the temporal offsets evaluated in Figure 2c
TEMPORAL_DELTAS = (0.0, 0.1)

#: runner entry point for the shared per-run task
WILD_TASK = "repro.experiments.section4:wild_run_metrics"

#: strategies scored for PCR (Figure 6) and burst structure (Figure 5)
_POOR_STRATEGIES = ("stronger", "cross-link")
_BURST_STRATEGIES = ("stronger", "temporal:0.1", "cross-link")

#: burst histogram buckets (Figure 5 bars)
_MAX_BURST_BUCKET = 10


def _profile_for(highrate: bool,
                 duration_s: Optional[float]) -> StreamProfile:
    base = HIGH_RATE_PROFILE if highrate else G711_PROFILE
    if duration_s is None:
        return base
    return StreamProfile(
        name=base.name, packet_size_bytes=base.packet_size_bytes,
        inter_packet_spacing_s=base.inter_packet_spacing_s,
        duration_s=duration_s,
        max_tolerable_delay_s=base.max_tolerable_delay_s)


@lru_cache(maxsize=8)
def _wild_dataset(n_runs: int, seed: int, deltas: Tuple[float, ...],
                  mimo_branches: int, highrate: bool,
                  duration_s) -> Tuple[PairedRun, ...]:
    profile = _profile_for(highrate, duration_s)
    runs = generate_wild_runs(n_runs, profile, seed=seed,
                              temporal_deltas=deltas,
                              mimo_branches=mimo_branches)
    return tuple(runs)


def wild_dataset(n_runs: int = 60, seed: int = 0,
                 deltas: Sequence[float] = TEMPORAL_DELTAS,
                 mimo_branches: int = 1,
                 highrate: bool = False,
                 duration_s: float = None) -> Sequence[PairedRun]:
    """The shared Section 4 dataset of raw traces (cached in memory).

    ``duration_s`` overrides the call length (the 5 Mbps workload at the
    paper's full 2 minutes is 75k packets per link per call — pass a
    shorter duration for quick sweeps).
    """
    return _wild_dataset(n_runs, seed, tuple(deltas), mimo_branches,
                         highrate, duration_s)


# ---------------------------------------------------------------------------
# the per-run task (the repro.runner unit of work)

def _strategy_suite(deltas: Sequence[float]
                    ) -> List[Tuple[str, Callable[[PairedRun], Any]]]:
    """The (payload key, strategy) superset evaluated on every run."""
    suite: List[Tuple[str, Callable[[PairedRun], Any]]] = [
        ("cross-link", strategies.cross_link),
        ("stronger", strategies.stronger),
        ("better", strategies.better),
        ("divert", lambda r: strategies.divert(r, window_h=1,
                                               threshold_t=1)),
        ("baseline", strategies.baseline),
    ]
    for delta in deltas:
        suite.append((f"temporal:{float(delta)!r}",
                      lambda r, d=float(delta): strategies.temporal(r, d)))
    return suite


def _burst_contribution(trace) -> Dict[str, Any]:
    """One call's burst accounting, combinable across runs by summation
    (all quantities are integer packet counts, so float sums are exact)."""
    buckets = {str(i): 0.0 for i in range(1, _MAX_BURST_BUCKET + 1)}
    buckets[f">{_MAX_BURST_BUCKET}"] = 0.0
    lost, bursty = 0.0, 0.0
    for length in burst_lengths(trace):
        key = str(length) if length <= _MAX_BURST_BUCKET \
            else f">{_MAX_BURST_BUCKET}"
        buckets[key] += length
        lost += length
        if length >= 2:
            bursty += length
    return {"buckets": buckets, "lost": lost, "bursty": bursty}


def _merge_burst_contributions(
        contributions: Sequence[Mapping[str, Any]]
) -> Tuple[Dict[str, float], float, float]:
    """Per-call averages of summed contributions.

    Buckets are rebuilt in bar order (1..N, >N) because payloads coming
    back from the runner carry canonical-JSON (lexicographic) key order.
    """
    buckets = {str(i): 0.0 for i in range(1, _MAX_BURST_BUCKET + 1)}
    buckets[f">{_MAX_BURST_BUCKET}"] = 0.0
    lost, bursty = 0.0, 0.0
    for contribution in contributions:
        for bucket, packets in contribution["buckets"].items():
            buckets[bucket] += packets
        lost += contribution["lost"]
        bursty += contribution["bursty"]
    n_calls = len(contributions)
    if n_calls:
        buckets = {bucket: packets / n_calls
                   for bucket, packets in buckets.items()}
        lost /= n_calls
        bursty /= n_calls
    return buckets, lost, bursty


def wild_run_metrics(index: int, *, root_seed: int,
                     deltas: Sequence[float] = (),
                     mimo_branches: int = 1,
                     highrate: bool = False,
                     duration_s: Optional[float] = None,
                     scenario: Optional[str] = None,
                     max_lag: int = 20) -> Dict[str, Any]:
    """Render wild call ``index`` and evaluate the strategy suite on it.

    Returns the JSON payload the Section 4 figures are assembled from:
    per-strategy worst-5s-window loss (all figures 2a–2e), poor-call
    flags (Figure 6), burst contributions (Figure 5), and the loss
    auto-/cross-correlation curves (Figure 4).
    """
    profile = _profile_for(highrate, duration_s)
    run = generate_wild_run(index, profile, seed=root_seed,
                            temporal_deltas=tuple(deltas),
                            mimo_branches=mimo_branches,
                            scenario=scenario)
    spacing = run.profile.inter_packet_spacing_s
    worst: Dict[str, float] = {}
    poor: Dict[str, bool] = {}
    bursts: Dict[str, Dict[str, Any]] = {}
    for name, fn in _strategy_suite(deltas):
        trace = fn(run)
        worst[name] = 100.0 * worst_window_loss(
            trace, window_s=5.0, inter_packet_spacing_s=spacing)
        if name in _POOR_STRATEGIES:
            poor[name] = bool(score_call(trace).mos < POOR_MOS_THRESHOLD)
        if name in _BURST_STRATEGIES:
            bursts[name] = _burst_contribution(trace)
    return {
        "scenario": run.scenario,
        "worst_window": worst,
        "poor": poor,
        "bursts": bursts,
        "autocorr": loss_autocorrelation(run.trace_a, max_lag).tolist(),
        "crosscorr": loss_crosscorrelation(run.trace_a, run.trace_b,
                                           max_lag).tolist(),
    }


def _wild_metrics(n_runs: int, seed: int,
                  deltas: Sequence[float] = TEMPORAL_DELTAS,
                  mimo_branches: int = 1,
                  highrate: bool = False,
                  duration_s: Optional[float] = None,
                  scenario: Optional[str] = None,
                  max_lag: int = 20,
                  backend: str = "event") -> List[Dict[str, Any]]:
    """Produce the per-run payload list for ``n_runs`` wild calls.

    ``backend="event"`` maps :func:`wild_run_metrics` over run indices
    via the runner (the reference path); ``backend="batch"`` renders the
    same population through :mod:`repro.batch` in vectorized blocks.
    Both backends emit payloads with identical shape and session order,
    and the batch backend re-validates a sampled subset against the
    event engine whenever ``REPRO_SANITIZE=1``.
    """
    if backend == "batch":
        from repro.batch.driver import batch_wild_metrics
        return batch_wild_metrics(
            n_runs, seed, deltas=deltas, mimo_branches=mimo_branches,
            highrate=highrate, duration_s=duration_s, scenario=scenario,
            max_lag=max_lag)
    if backend != "event":
        raise ValueError(
            f"unknown backend {backend!r}; expected 'event' or 'batch'")
    config = {
        "root_seed": seed,
        "deltas": [float(d) for d in deltas],
        "mimo_branches": mimo_branches,
        "highrate": highrate,
        "duration_s": duration_s,
        "scenario": scenario,
        "max_lag": max_lag,
    }
    return map_task(WILD_TASK, range(n_runs), config)


# ---------------------------------------------------------------------------
# generic CDF machinery for Figure 2

@dataclass
class CdfFigure:
    """A worst-5-second-window loss CDF comparison (Figure 2 panels)."""

    title: str
    series: Dict[str, List[float]]   # strategy -> per-run worst-window %

    def cdf(self, name: str) -> EmpiricalCdf:
        return EmpiricalCdf(self.series[name])

    def p90(self, name: str) -> float:
        return self.cdf(name).quantile(0.90)

    def render(self) -> str:
        return render_cdf_series(
            self.title,
            {name: EmpiricalCdf(vals).series()
             for name, vals in self.series.items()},
            x_label="worst-5s loss %")


def _series(rows: Sequence[Dict[str, Any]],
            labels: Sequence[Tuple[str, str]]) -> Dict[str, List[float]]:
    """Slice (figure label -> payload key) series out of run payloads."""
    return {label: [row["worst_window"][key] for row in rows]
            for label, key in labels}


# ------------------------------------------------------------- Figure 2a/b

def run_figure2a(n_runs: int = 60, seed: int = 0,
                 backend: str = "event") -> CdfFigure:
    """Cross-link replication vs stronger/better link selection."""
    rows = _wild_metrics(n_runs, seed, backend=backend)
    series = _series(rows, [("cross-link", "cross-link"),
                            ("stronger", "stronger"),
                            ("better", "better")])
    return CdfFigure(
        "Figure 2a: CDF of worst-5s loss — replication vs selection",
        series)


def run_figure2b(n_runs: int = 60, seed: int = 0,
                 backend: str = "event") -> CdfFigure:
    """Cross-link replication vs Divert (H=1, T=1)."""
    rows = _wild_metrics(n_runs, seed, backend=backend)
    series = _series(rows, [("cross-link", "cross-link"),
                            ("divert", "divert")])
    return CdfFigure(
        "Figure 2b: CDF of worst-5s loss — replication vs fine-grained "
        "selection (Divert)", series)


# --------------------------------------------------------------- Figure 2c

def run_figure2c(n_runs: int = 60, seed: int = 0,
                 backend: str = "event") -> CdfFigure:
    """Cross-link vs temporal replication (delta = 0 and 100 ms)."""
    rows = _wild_metrics(n_runs, seed, backend=backend)
    series = _series(rows, [("cross-link", "cross-link"),
                            ("temporal (100ms)", "temporal:0.1"),
                            ("temporal (0ms)", "temporal:0.0"),
                            ("baseline", "baseline")])
    return CdfFigure(
        "Figure 2c: CDF of worst-5s loss — cross-link vs temporal "
        "replication", series)


# --------------------------------------------------------------- Figure 2d

def run_figure2d(n_runs: int = 44, seed: int = 0,
                 backend: str = "event") -> CdfFigure:
    """With 802.11ac-style MIMO (2 spatial branches) on every link."""
    rows = _wild_metrics(n_runs, seed, mimo_branches=2, backend=backend)
    series = _series(rows, [("MIMO + cross-link", "cross-link"),
                            ("MIMO + stronger", "stronger"),
                            ("MIMO + better", "better")])
    return CdfFigure(
        "Figure 2d: CDF of worst-5s loss — cross-link on top of MIMO",
        series)


# --------------------------------------------------------------- Figure 2e

def run_figure2e(n_runs: int = 40, seed: int = 0,
                 duration_s: float = 30.0,
                 backend: str = "event") -> CdfFigure:
    """High-rate (5 Mbps) streams (paper: 80 two-minute runs)."""
    rows = _wild_metrics(n_runs, seed, deltas=(), highrate=True,
                         duration_s=duration_s, backend=backend)
    series = _series(rows, [("cross-link", "cross-link"),
                            ("stronger", "stronger"),
                            ("better", "better")])
    return CdfFigure(
        "Figure 2e: CDF of worst-5s loss — 5 Mbps streams", series)


# ---------------------------------------------------------------- Figure 3

@dataclass
class Figure3Result:
    """The two-weak-links example trace."""

    loss_a_pct: float
    loss_b_pct: float
    loss_combined_pct: float
    jitter_a_ms: float
    jitter_b_ms: float
    jitter_combined_ms: float

    def render(self) -> str:
        rows = [
            ["link A", f"{self.loss_a_pct:.2f}", f"{self.jitter_a_ms:.1f}"],
            ["link B", f"{self.loss_b_pct:.2f}", f"{self.jitter_b_ms:.1f}"],
            ["cross-link", f"{self.loss_combined_pct:.2f}",
             f"{self.jitter_combined_ms:.1f}"],
        ]
        return render_table(
            "Figure 3: two weak links — replication beats the better link "
            "(paper: 4.3% + 15.4% -> 0.88%)",
            ["stream", "loss %", "delay jitter (ms)"], rows)


def _jitter_ms(trace) -> float:
    delays = trace.delays[trace.delivered]
    if delays.size < 2:
        return 0.0
    return float(np.std(delays) * 1000.0)


def run_figure3(seed: int = 0, max_tries: int = 40) -> Figure3Result:
    """Find a weak-link run like the paper's example (A ~4%, B ~15%).

    Sequential by design: the search stops at the first qualifying run,
    so later attempts depend on earlier outcomes (no parallel map).
    """
    root = RandomRouter(seed)
    best = None
    for attempt in range(max_tries):
        router = root.fork(f"fig3-{attempt}")
        link_a, link_b = build_scenario("weak_link", router)
        from repro.core.replication import render_paired_run
        run = render_paired_run(link_a, link_b, G711_PROFILE)
        loss_a = run.trace_a.loss_rate * 100
        loss_b = run.trace_b.loss_rate * 100
        # Look for the paper's asymmetric weak pair.
        fitness = abs(loss_a - 4.3) + abs(loss_b - 15.4) * 0.5
        if best is None or fitness < best[0]:
            best = (fitness, run)
        if 2.0 <= loss_a <= 7.0 and 10.0 <= loss_b <= 22.0:
            best = (0.0, run)
            break
    run = best[1]
    combined = strategies.cross_link(run)
    return Figure3Result(
        loss_a_pct=run.trace_a.loss_rate * 100,
        loss_b_pct=run.trace_b.loss_rate * 100,
        loss_combined_pct=combined.loss_rate * 100,
        jitter_a_ms=_jitter_ms(run.trace_a),
        jitter_b_ms=_jitter_ms(run.trace_b),
        jitter_combined_ms=_jitter_ms(combined))


# ---------------------------------------------------------------- Figure 4

@dataclass
class Figure4Result:
    """Loss auto-correlation vs cross-correlation (lags 1..20)."""

    lags: List[int]
    autocorrelation: List[float]
    crosscorrelation: List[float]

    def render(self) -> str:
        rows = [[lag, f"{a:.3f}", f"{c:.3f}"]
                for lag, a, c in zip(self.lags, self.autocorrelation,
                                     self.crosscorrelation)]
        return render_table(
            "Figure 4: loss auto-correlation (within link) vs "
            "cross-correlation (across links)",
            ["lag (pkts)", "auto", "cross"], rows)


def run_figure4(n_runs: int = 60, seed: int = 0,
                max_lag: int = 20,
                backend: str = "event") -> Figure4Result:
    rows = _wild_metrics(n_runs, seed, max_lag=max_lag, backend=backend)
    if rows:
        auto = np.mean(np.vstack([row["autocorr"] for row in rows]), axis=0)
        cross = np.mean(np.vstack([row["crosscorr"] for row in rows]),
                        axis=0)
    else:
        auto = cross = np.zeros(max_lag)
    return Figure4Result(lags=list(range(1, max_lag + 1)),
                         autocorrelation=auto.tolist(),
                         crosscorrelation=cross.tolist())


# ---------------------------------------------------------------- Figure 5

@dataclass
class Figure5Result:
    """Burst-length distributions per strategy."""

    histograms: Dict[str, Dict[str, float]]
    stats: Dict[str, Tuple[float, float]]   # (mean lost, mean in bursts)

    def render(self) -> str:
        blocks = []
        for name, hist in self.histograms.items():
            mean_lost, bursty = self.stats[name]
            blocks.append(render_histogram(
                f"Figure 5 [{name}]: avg packets lost by burst length "
                f"(total {mean_lost:.1f}/call, {bursty:.1f} in bursts)",
                hist))
        return "\n\n".join(blocks)


def run_figure5(n_runs: int = 60, seed: int = 0,
                backend: str = "event") -> Figure5Result:
    rows = _wild_metrics(n_runs, seed, backend=backend)
    labels = [("stronger", "stronger"),
              ("temporal (100ms)", "temporal:0.1"),
              ("cross-link", "cross-link")]
    histograms, stats = {}, {}
    for label, key in labels:
        contributions = [row["bursts"][key] for row in rows]
        buckets, lost, bursty = _merge_burst_contributions(contributions)
        histograms[label] = buckets
        stats[label] = (lost, bursty)
    return Figure5Result(histograms=histograms, stats=stats)


# ---------------------------------------------------------------- Figure 6

@dataclass
class Figure6Result:
    """PCR by impairment scenario, stronger vs cross-link."""

    pcr: Dict[str, Dict[str, float]]   # scenario -> strategy -> PCR %
    overall: Dict[str, float]

    #: per-strategy per-run poor indicators (for the bootstrap CI)
    raw_poors: Dict[str, List[bool]] = field(default_factory=dict)

    def improvement_factor(self) -> float:
        if self.overall["cross-link"] == 0:
            return float("inf")
        return self.overall["stronger"] / self.overall["cross-link"]

    def improvement_interval(self):
        """Bootstrap CI for the headline PCR-cut factor."""
        from repro.analysis.summary import improvement_factor_interval
        if not self.raw_poors or not any(self.raw_poors.get(
                "cross-link", [])):
            return None
        return improvement_factor_interval(
            [float(x) for x in self.raw_poors["stronger"]],
            [float(x) for x in self.raw_poors["cross-link"]])

    def render(self) -> str:
        rows = [[scenario,
                 f"{values['stronger']:.1f}",
                 f"{values['cross-link']:.1f}"]
                for scenario, values in self.pcr.items()]
        rows.append(["OVERALL", f"{self.overall['stronger']:.1f}",
                     f"{self.overall['cross-link']:.1f}"])
        table = render_table(
            "Figure 6: poor call rate (%) by impairment",
            ["Impairment", "stronger", "cross-link"], rows)
        interval = self.improvement_interval()
        ci = f" (95% CI {interval.low:.1f}-{interval.high:.1f}x)" \
            if interval else ""
        return (f"{table}\n"
                f"overall improvement: {self.improvement_factor():.2f}x"
                f"{ci} (paper: 2.24x, 12.23% -> 5.45%)")


def run_figure6(n_runs_per_scenario: int = 15, seed: int = 0,
                backend: str = "event") -> Figure6Result:
    scenarios = ("microwave", "mobility", "weak_link", "congestion")
    pcr: Dict[str, Dict[str, float]] = {}
    all_scores: Dict[str, List[bool]] = {"stronger": [], "cross-link": []}
    for scenario in scenarios:
        rows = _wild_metrics(
            n_runs_per_scenario,
            seed + zlib.crc32(scenario.encode()) % 1000,
            deltas=(), scenario=scenario, backend=backend)
        pcr[scenario] = {}
        for name in ("stronger", "cross-link"):
            poors = [bool(row["poor"][name]) for row in rows]
            pcr[scenario][name] = 100.0 * float(np.mean(poors))
            all_scores[name].extend(poors)
    overall = {name: 100.0 * float(np.mean(vals))
               for name, vals in all_scores.items()}
    return Figure6Result(pcr=pcr, overall=overall,
                         raw_poors=all_scores)
