"""Experiment drivers: one entry point per paper table/figure.

Each driver returns a structured result object with a ``render()`` string
that prints the same rows/series the paper reports.  The benchmark suite
(`benchmarks/`) calls these with reduced run counts by default; pass the
paper's full counts to reproduce at publication scale.

Index (see DESIGN.md for the full mapping):

* :mod:`repro.experiments.section3` — Table 1, Table 2, Figure 1.
* :mod:`repro.experiments.section4` — Figures 2a–2e, 3, 4, 5, 6.
* :mod:`repro.experiments.section6` — Figures 8, 9, 10, the Section 6.3
  overhead numbers, Table 3, and the Section 6.4 scalability sweep.
"""

from repro.experiments.section3 import (
    run_figure1,
    run_nettest_population,
    run_provider_population,
    run_table1,
    run_table2,
)
from repro.experiments.section4 import (
    run_figure2a,
    run_figure2b,
    run_figure2c,
    run_figure2d,
    run_figure2e,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
)
from repro.experiments.section6 import (
    run_figure8,
    run_figure9,
    run_figure10,
    run_section63_overhead,
    run_section64_scalability,
    run_table3,
)
from repro.experiments.controlplane import run_controller_sweep
from repro.experiments.extensions import (
    run_fec_comparison,
    run_gaming,
    run_nlink_sweep,
    run_uplink,
)

__all__ = [
    "run_figure1",
    "run_figure2a",
    "run_figure2b",
    "run_figure2c",
    "run_figure2d",
    "run_figure2e",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_controller_sweep",
    "run_fec_comparison",
    "run_gaming",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_nettest_population",
    "run_nlink_sweep",
    "run_provider_population",
    "run_section63_overhead",
    "run_section64_scalability",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_uplink",
]
