"""Section 6 drivers: the single-NIC DiversiFi system evaluation.

Figures 8/9 and the Section 6.3 overhead numbers come from a shared set of
office sessions (the counterpart of the paper's 61 interleaved runs): per
seed/location, the same channel statistics are evaluated under
``primary-only``, ``secondary-only`` and ``diversifi-ap``.

Figure 10 runs paired TCP sessions (DiversiFi on vs off); Table 3 and the
Section 6.4 sweep run controlled switch micro-benchmarks against the AP
and the middlebox.

Each driver's per-seed unit of work is a module-level task function
(:func:`office_run_metrics`, :func:`tcp_throughput_metrics`,
:func:`switch_delay_metrics`, :func:`mbox_retrieval_metrics`) executed
through :mod:`repro.runner` — so every artifact here parallelizes over
seeds with ``--jobs``, caches per run, and merges deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import (
    render_cdf_series,
    render_histogram,
    render_table,
)
from repro.analysis.windows import worst_window_loss
from repro.core.config import (
    ClientConfig,
    G711_PROFILE,
    MiddleboxConfig,
    StreamProfile,
)
from repro.core.controller import SessionResult, run_session
from repro.experiments.section4 import (
    _burst_contribution,
    _merge_burst_contributions,
)
from repro.runner import map_configs, map_task
from repro.scenarios import build_office_pair
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call

OFFICE_MODES = ("primary-only", "secondary-only", "diversifi-ap")

#: runner entry points for the Section 6 tasks
OFFICE_TASK = "repro.experiments.section6:office_run_metrics"
TCP_TASK = "repro.experiments.section6:tcp_throughput_metrics"
SWITCH_TASK = "repro.experiments.section6:switch_delay_metrics"
RETRIEVAL_TASK = "repro.experiments.section6:mbox_retrieval_metrics"


@lru_cache(maxsize=4)
def _office_sessions(n_runs: int, seed0: int
                     ) -> Dict[str, Tuple[SessionResult, ...]]:
    sessions: Dict[str, List[SessionResult]] = {m: [] for m in OFFICE_MODES}
    for seed in range(seed0, seed0 + n_runs):
        for mode in OFFICE_MODES:
            sessions[mode].append(run_session(
                build_office_pair, mode=mode, profile=G711_PROFILE,
                seed=seed))
    return {m: tuple(v) for m, v in sessions.items()}


def office_sessions(n_runs: int = 61, seed0: int = 0
                    ) -> Dict[str, Tuple[SessionResult, ...]]:
    """The shared Section 6 raw-session set (cached in memory)."""
    return _office_sessions(n_runs, seed0)


# ---------------------------------------------------------------------------
# per-seed tasks (the repro.runner units of work)

def office_run_metrics(seed: int, *,
                       modes: Sequence[str] = OFFICE_MODES
                       ) -> Dict[str, Dict[str, Any]]:
    """One office location/seed evaluated under every mode.

    The payload carries everything Figures 8/9 and Section 6.3 need, so
    all three artifacts share one cache entry per seed.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for mode in modes:
        result = run_session(build_office_pair, mode=mode,
                             profile=G711_PROFILE, seed=seed)
        trace = result.effective_trace()
        out[mode] = {
            "worst_window": 100.0 * worst_window_loss(trace),
            "poor": bool(score_call(trace).mos < POOR_MOS_THRESHOLD),
            "loss_rate": float(trace.loss_rate),
            "waste": float(result.wasteful_duplication_rate()),
            "recovery_switches": int(
                result.client_stats.recovery_switches),
            "keepalive_switches": int(
                result.client_stats.keepalive_switches),
            "bursts": _burst_contribution(trace),
        }
    return out


def tcp_throughput_metrics(seed: int) -> Dict[str, float]:
    """Competing-TCP throughput with DiversiFi on vs off (one seed)."""
    session_on = run_session(build_office_pair, mode="diversifi-ap",
                             profile=G711_PROFILE, seed=seed,
                             with_tcp=True)
    session_off = run_session(build_office_pair, mode="primary-only",
                              profile=G711_PROFILE, seed=seed,
                              with_tcp=True)
    return {"on": float(session_on.tcp_stats.throughput_mbps),
            "off": float(session_off.tcp_stats.throughput_mbps)}


def switch_delay_metrics(seed: int) -> Dict[str, List[float]]:
    """One forced switch against the AP and against the middlebox."""
    ap_switch, ap_total = _measure_switch(seed, use_middlebox=False)
    mb_switch, mb_total = _measure_switch(seed, use_middlebox=True)
    return {"ap": [float(ap_switch), float(ap_total)],
            "mbox": [float(mb_switch), float(mb_total)]}


def mbox_retrieval_metrics(seed: int, *,
                           middlebox_load: int = 0) -> Dict[str, float]:
    """Retrieval delay through a loaded middlebox (Section 6.4 unit)."""
    _, total = _measure_switch(seed, use_middlebox=True,
                               middlebox_load=middlebox_load)
    return {"total": float(total)}


def _office_metrics(n_runs: int, seed0: int) -> List[Dict[str, Any]]:
    return map_task(OFFICE_TASK, range(seed0, seed0 + n_runs))


# ---------------------------------------------------------------- Figure 8

@dataclass
class Figure8Result:
    """Worst-5s loss CDFs and PCR for primary/secondary/DiversiFi."""

    worst_window: Dict[str, List[float]]    # mode -> per-run %
    pcr: Dict[str, float]                   # mode -> %

    def p90(self, mode: str) -> float:
        return EmpiricalCdf(self.worst_window[mode]).quantile(0.90)

    def render(self) -> str:
        cdf = render_cdf_series(
            "Figure 8: CDF of worst-5s loss (paper 90th pctile: primary "
            "11.6%, secondary 52%, DiversiFi 1.2%)",
            {mode: EmpiricalCdf(vals).series()
             for mode, vals in self.worst_window.items()},
            x_label="worst-5s loss %")
        pcr_rows = [[m, f"{v:.1f}"] for m, v in self.pcr.items()]
        table = render_table(
            "PCR (paper: primary 4.9%, secondary 26.2%, DiversiFi 0%)",
            ["mode", "PCR %"], pcr_rows)
        return f"{cdf}\n\n{table}"


def _mode_label(mode: str) -> str:
    return {"primary-only": "primary", "secondary-only": "secondary",
            "diversifi-ap": "DiversiFi"}[mode]


def run_figure8(n_runs: int = 61, seed0: int = 0) -> Figure8Result:
    rows = _office_metrics(n_runs, seed0)
    worst: Dict[str, List[float]] = {}
    pcr: Dict[str, float] = {}
    for mode in OFFICE_MODES:
        label = _mode_label(mode)
        worst[label] = [row[mode]["worst_window"] for row in rows]
        poors = [bool(row[mode]["poor"]) for row in rows]
        pcr[label] = 100.0 * float(np.mean(poors))
    return Figure8Result(worst_window=worst, pcr=pcr)


# ---------------------------------------------------------------- Figure 9

@dataclass
class Figure9Result:
    """Burst-length distributions for primary/secondary/DiversiFi."""

    histograms: Dict[str, Dict[str, float]]
    stats: Dict[str, Tuple[float, float]]

    def render(self) -> str:
        blocks = []
        for name, hist in self.histograms.items():
            mean_lost, bursty = self.stats[name]
            blocks.append(render_histogram(
                f"Figure 9 [{name}]: avg packets lost by burst length "
                f"(total {mean_lost:.1f}/call, {bursty:.1f} in bursts)",
                hist))
        return "\n\n".join(blocks)


def run_figure9(n_runs: int = 61, seed0: int = 0) -> Figure9Result:
    rows = _office_metrics(n_runs, seed0)
    histograms, stats = {}, {}
    for mode in OFFICE_MODES:
        label = _mode_label(mode)
        contributions = [row[mode]["bursts"] for row in rows]
        buckets, lost, bursty = _merge_burst_contributions(contributions)
        histograms[label] = buckets
        stats[label] = (lost, bursty)
    return Figure9Result(histograms=histograms, stats=stats)


# ------------------------------------------------------------ Section 6.3

@dataclass
class OverheadResult:
    """Duplication-overhead accounting (Section 6.3)."""

    primary_loss_pct: float
    residual_loss_pct: float
    wasteful_duplication_pct: float
    recovery_switches_per_call: float
    keepalive_switches_per_call: float

    def render(self) -> str:
        rows = [
            ["primary-link loss", f"{self.primary_loss_pct:.2f}%", "1.97%"],
            ["residual loss (DiversiFi)", f"{self.residual_loss_pct:.2f}%",
             "0.05%"],
            ["wasteful duplication", f"{self.wasteful_duplication_pct:.2f}%",
             "0.62%"],
            ["recovery switches/call",
             f"{self.recovery_switches_per_call:.1f}", "-"],
            ["keepalive switches/call",
             f"{self.keepalive_switches_per_call:.1f}", "-"],
        ]
        return render_table("Section 6.3: duplication overhead",
                            ["metric", "measured", "paper"], rows)


def run_section63_overhead(n_runs: int = 61, seed0: int = 0
                           ) -> OverheadResult:
    rows = _office_metrics(n_runs, seed0)
    primary_losses = [row["primary-only"]["loss_rate"] for row in rows]
    div = [row["diversifi-ap"] for row in rows]
    return OverheadResult(
        primary_loss_pct=100.0 * float(np.mean(primary_losses)),
        residual_loss_pct=100.0 * float(np.mean(
            [d["loss_rate"] for d in div])),
        wasteful_duplication_pct=100.0 * float(np.mean(
            [d["waste"] for d in div])),
        recovery_switches_per_call=float(np.mean(
            [d["recovery_switches"] for d in div])),
        keepalive_switches_per_call=float(np.mean(
            [d["keepalive_switches"] for d in div])))


# --------------------------------------------------------------- Figure 10

@dataclass
class Figure10Result:
    """Competing-TCP throughput with DiversiFi on vs off."""

    with_diversifi_mbps: List[float]
    without_diversifi_mbps: List[float]

    @property
    def differences_kbps(self) -> List[float]:
        return [(off - on) * 1000.0
                for on, off in zip(self.with_diversifi_mbps,
                                   self.without_diversifi_mbps)]

    @property
    def mean_with(self) -> float:
        return float(np.mean(self.with_diversifi_mbps))

    @property
    def mean_without(self) -> float:
        return float(np.mean(self.without_diversifi_mbps))

    def degradation_pct(self) -> float:
        if self.mean_without == 0:
            return 0.0
        return 100.0 * (1.0 - self.mean_with / self.mean_without)

    def render(self) -> str:
        cdf = render_cdf_series(
            "Figure 10: difference in TCP throughput, "
            "off-minus-on (centred near zero in the paper)",
            {"Throughput(primary) - Throughput(DiversiFi)":
             EmpiricalCdf(self.differences_kbps).series()},
            x_label="Kbps")
        return (f"{cdf}\n"
                f"avg TCP throughput: DiversiFi on {self.mean_with:.2f} "
                f"Mbps, off {self.mean_without:.2f} Mbps -> "
                f"{self.degradation_pct():.1f}% degradation "
                f"(paper: 3.9 vs 4.0 Mbps, 2.5%)")


def run_figure10(n_runs: int = 26, seed0: int = 100) -> Figure10Result:
    rows = map_task(TCP_TASK, range(seed0, seed0 + n_runs))
    return Figure10Result(
        with_diversifi_mbps=[row["on"] for row in rows],
        without_diversifi_mbps=[row["off"] for row in rows])


# ----------------------------------------------------------------- Table 3

@dataclass
class Table3Result:
    """Recovery-delay breakdown: AP buffering vs middlebox (ms)."""

    ap_total_ms: float
    ap_switching_ms: float
    ap_network_ms: float
    mbox_total_ms: float
    mbox_switching_ms: float
    mbox_network_ms: float
    mbox_queuing_ms: float

    def render(self) -> str:
        rows = [
            ["Middlebox", f"{self.mbox_total_ms:.1f}",
             f"{self.mbox_switching_ms:.1f}",
             f"{self.mbox_network_ms:.1f}",
             f"{self.mbox_queuing_ms:.1f}"],
            ["AP", f"{self.ap_total_ms:.1f}",
             f"{self.ap_switching_ms:.1f}",
             f"{self.ap_network_ms:.1f}", "-"],
        ]
        return render_table(
            "Table 3: delay (ms) to collect a buffered packet on the "
            "secondary link (paper: middlebox 5.2 = 2.3 + 2 + 0.9; "
            "AP 2.8 = 2.3 + 0.5)",
            ["Scheme", "Total", "Switching", "Network", "Queuing"], rows)


def _measure_switch(seed: int, use_middlebox: bool,
                    middlebox_load: int = 0) -> Tuple[float, float]:
    """One forced primary->secondary switch; returns
    (switch_latency_s, total_time_to_first_secondary_packet_s)."""
    from repro.core.packet import Packet
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomRouter
    from repro.wifi.ap import AccessPoint
    from repro.wifi.association import WifiManager
    from repro.net.middlebox import Middlebox
    from repro.core.config import APConfig

    sim = Simulator()
    router = RandomRouter(seed)

    class InstantLink:
        name = "instant"

        def transmit(self, seq, send_time, size_bytes=160):
            from repro.core.packet import DeliveryRecord
            return DeliveryRecord(seq=seq, send_time=send_time,
                                  delivered=True,
                                  arrival_time=send_time + 0.0005)

    primary = AccessPoint(sim, "primary", InstantLink(), APConfig())
    secondary = AccessPoint(sim, "secondary", InstantLink(), APConfig())
    manager = WifiManager(sim, router.stream("psm"))
    manager.create_adapter("primary")
    manager.create_adapter("secondary")
    manager.associate("primary", primary, channel=1)
    manager.associate("secondary", secondary, channel=11)
    manager.activate("primary")

    arrivals: List[float] = []
    secondary.set_receiver(lambda p, t, name: arrivals.append(t))

    mbox: Optional[Middlebox] = None
    if use_middlebox:
        mbox = Middlebox(sim, MiddleboxConfig())
        for i in range(middlebox_load):
            mbox.register_flow(f"tenant{i}", lambda p: None)
        mbox.register_flow("rt0", secondary.wired_arrival)
        sim.call_at(0.5, mbox.replica_arrival,
                    Packet(seq=0, send_time=0.5, flow_id="rt0"))
    else:
        sim.call_at(0.5, secondary.wired_arrival,
                    Packet(seq=0, send_time=0.5, flow_id="rt0"))

    switch_done: List[float] = []
    switch_start = 1.0

    def on_awake():
        switch_done.append(sim.now)
        if mbox is not None:
            mbox.start("rt0")

    sim.call_at(switch_start, manager.switch_to, "secondary", on_awake)
    sim.run(until=2.0)
    if not arrivals or not switch_done:
        raise RuntimeError("switch micro-benchmark produced no delivery")
    return (switch_done[0] - switch_start, arrivals[0] - switch_start)


def run_table3(n_events: int = 100, seed0: int = 0) -> Table3Result:
    rows = map_task(SWITCH_TASK, range(seed0, seed0 + n_events))
    ap_switch = [row["ap"][0] for row in rows]
    ap_total = [row["ap"][1] for row in rows]
    mb_switch = [row["mbox"][0] for row in rows]
    mb_total = [row["mbox"][1] for row in rows]
    config = MiddleboxConfig()
    ap_switch_ms = 1000 * float(np.mean(ap_switch))
    ap_total_ms = 1000 * float(np.mean(ap_total))
    mb_switch_ms = 1000 * float(np.mean(mb_switch))
    mb_total_ms = 1000 * float(np.mean(mb_total))
    mbox_queuing_ms = 1000 * config.base_queuing_delay_s
    return Table3Result(
        ap_total_ms=ap_total_ms,
        ap_switching_ms=ap_switch_ms,
        ap_network_ms=ap_total_ms - ap_switch_ms,
        mbox_total_ms=mb_total_ms,
        mbox_switching_ms=mb_switch_ms,
        mbox_network_ms=mb_total_ms - mb_switch_ms - mbox_queuing_ms,
        mbox_queuing_ms=mbox_queuing_ms)


# ------------------------------------------------------------ Section 6.4

@dataclass
class ScalabilityResult:
    """Retrieval delay vs concurrent replicated streams (Section 6.4)."""

    loads: List[int]
    total_delay_ms: List[float]

    def extra_at_max_load_ms(self) -> float:
        return self.total_delay_ms[-1] - self.total_delay_ms[0]

    def render(self) -> str:
        rows = [[load, f"{ms:.2f}"]
                for load, ms in zip(self.loads, self.total_delay_ms)]
        table = render_table(
            "Section 6.4: middlebox retrieval delay vs concurrent streams",
            ["streams", "total delay (ms)"], rows)
        return (f"{table}\n"
                f"extra delay at {self.loads[-1]} streams: "
                f"{self.extra_at_max_load_ms():.2f} ms (paper: ~1.1 ms)")


def run_section64_scalability(loads: Tuple[int, ...] = (0, 10, 100, 500,
                                                        1000),
                              n_events: int = 20,
                              seed0: int = 0) -> ScalabilityResult:
    # One flat batch (all loads x all seeds) so a parallel run keeps
    # every worker busy across the whole sweep, not per-load.
    items = [(seed, {"middlebox_load": load})
             for load in loads
             for seed in range(seed0, seed0 + n_events)]
    rows = map_configs(RETRIEVAL_TASK, items)
    delays_ms = []
    for i, _load in enumerate(loads):
        totals = [row["total"]
                  for row in rows[i * n_events:(i + 1) * n_events]]
        delays_ms.append(1000 * float(np.mean(totals)))
    return ScalabilityResult(loads=list(loads), total_delay_ms=delays_ms)
