"""Drivers for the beyond-the-paper extensions.

These cover what the paper defers or only argues qualitatively:

* :func:`run_uplink` — uplink DiversiFi (Section 5: "would apply equally
  in the uplink direction and would likely be easier").
* :func:`run_nlink_sweep` — diversity gain vs number of links (Figure 1
  motivates many candidates; the paper hedges across two).
* :func:`run_fec_comparison` — replication vs [36]-style XOR coding.
* :func:`run_gaming` — 60 fps cloud-game video over the wild scenarios.

Like the Section 4/6 drivers, each per-seed unit of work is a module
level task executed through :mod:`repro.runner`, so these sweeps
parallelize with ``--jobs`` and cache per run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.windows import worst_window_loss
from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.core.fec import FecConfig, apply_fec, render_fec_run
from repro.core.multilink import (
    best_of,
    diversity_gain_curve,
    make_before_break,
    render_multilink_run,
)
from repro.core.packet import merge_traces
from repro.core.uplink import run_uplink_session
from repro.runner import map_configs, map_task
from repro.scenarios import build_scenario
from repro.sim.random import RandomRouter

#: runner entry points for the extension tasks
UPLINK_TASK = "repro.experiments.extensions:uplink_run_metrics"
NLINK_TASK = "repro.experiments.extensions:nlink_run_metrics"
GAMING_TASK = "repro.experiments.extensions:gaming_run_metrics"
FEC_TASK = "repro.experiments.extensions:fec_run_metrics"


def _profile_config(profile: StreamProfile) -> Dict[str, Any]:
    """A JSON-safe config fragment reconstructing ``profile`` in a task."""
    return dataclasses.asdict(profile)


# ------------------------------------------------------------------ uplink

@dataclass
class UplinkResult:
    """Plain vs hedged uplink across a severity sweep."""

    severities: List[float]
    plain_loss_pct: List[float]
    hedged_loss_pct: List[float]
    retransmissions: List[float]

    def render(self) -> str:
        rows = []
        for i, severity in enumerate(self.severities):
            rows.append([f"{severity * 100:.0f}%",
                         f"{self.plain_loss_pct[i]:.2f}%",
                         f"{self.hedged_loss_pct[i]:.2f}%",
                         f"{self.retransmissions[i]:.1f}"])
        return render_table(
            "Uplink DiversiFi: loss within the 100 ms deadline "
            "(no proactive duplication at all)",
            ["primary outage", "plain", "hedged", "retx/call"], rows)


def _uplink_factory(outage_fraction: float, profile: StreamProfile):
    mean_bad = 0.4
    mean_good = mean_bad * (1 - outage_fraction) / max(outage_fraction,
                                                       1e-6)
    primary_g = GilbertParams(mean_good_s=mean_good, mean_bad_s=mean_bad,
                              loss_good=0.0, loss_bad=0.995)
    clean = GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                          loss_good=0.0, loss_bad=0.0)

    def build(router):
        client = StaticPosition(Position(0, 0))
        primary = WifiLink(
            LinkConfig(name="up-p", ap_position=Position(7, 0),
                       gilbert=primary_g, base_delay_s=0.0),
            router, mobility=client)
        secondary = WifiLink(
            LinkConfig(name="up-s", ap_position=Position(11, 0),
                       gilbert=clean, base_delay_s=0.0),
            router, mobility=client)
        return primary, secondary

    return build


def uplink_run_metrics(seed: int, *, outage_fraction: float,
                       profile: Mapping[str, Any]) -> Dict[str, float]:
    """One seed of the uplink sweep: plain vs hedged session."""
    stream = StreamProfile(**profile)
    build = _uplink_factory(outage_fraction, stream)
    plain = run_uplink_session(build, stream, seed=seed, enabled=False)
    hedged = run_uplink_session(build, stream, seed=seed, enabled=True)
    return {
        "plain": float(plain.trace.effective_trace(0.100).loss_rate * 100),
        "hedged": float(
            hedged.trace.effective_trace(0.100).loss_rate * 100),
        "retx": float(hedged.stats.retransmissions),
    }


def run_uplink(severities=(0.01, 0.03, 0.08), n_runs: int = 5,
               seed: int = 0,
               profile: StreamProfile = StreamProfile(duration_s=30.0)
               ) -> UplinkResult:
    """Sweep primary outage severity; average over ``n_runs`` seeds."""
    profile_cfg = _profile_config(profile)
    items: List[Tuple[int, Mapping[str, Any]]] = [
        (seed + k, {"outage_fraction": float(severity),
                    "profile": profile_cfg})
        for severity in severities for k in range(n_runs)]
    rows = map_configs(UPLINK_TASK, items)
    plain_out, hedged_out, retx_out = [], [], []
    for i, _severity in enumerate(severities):
        chunk = rows[i * n_runs:(i + 1) * n_runs]
        plain_out.append(float(np.mean([r["plain"] for r in chunk])))
        hedged_out.append(float(np.mean([r["hedged"] for r in chunk])))
        retx_out.append(float(np.mean([r["retx"] for r in chunk])))
    return UplinkResult(severities=list(severities),
                        plain_loss_pct=plain_out,
                        hedged_loss_pct=hedged_out,
                        retransmissions=retx_out)


# ------------------------------------------------------------- n-link sweep

@dataclass
class NLinkResult:
    """Worst-window loss vs number of hedged links."""

    curve: Dict[int, float]
    make_before_break_pct: float

    def render(self) -> str:
        rows = [[k, f"{v:.2f}%"] for k, v in sorted(self.curve.items())]
        rows.append(["handoff (1 active)",
                     f"{self.make_before_break_pct:.2f}%"])
        return render_table(
            "Diversity gain vs number of links (mean worst-5s loss)",
            ["links", "worst-5s loss"], rows)


def _render_nlink_run(index: int, root_seed: int, n_links: int,
                      profile: StreamProfile):
    root = RandomRouter(root_seed)
    router = root.fork(f"nlink-{index}")
    rng = router.stream("params")
    client = StaticPosition(Position(0, 0))
    links = []
    for j in range(n_links):
        bad_frac = float(np.exp(rng.normal(np.log(0.02), 0.8)))
        mean_bad = float(rng.uniform(0.2, 0.8))
        mean_good = mean_bad * (1 - bad_frac) / max(bad_frac, 1e-4)
        links.append(WifiLink(
            LinkConfig(name=f"ap{j}", channel=1 + 4 * j,
                       ap_position=Position(4.0 + 4 * j, float(j)),
                       gilbert=GilbertParams(
                           mean_good_s=mean_good, mean_bad_s=mean_bad,
                           loss_good=0.0,
                           loss_bad=float(rng.uniform(0.9, 1.0))),
                       base_delay_s=0.0),
            router, mobility=client))
    return render_multilink_run(links, profile)


def nlink_run_metrics(index: int, *, root_seed: int, n_links: int,
                      profile: Mapping[str, Any]) -> Dict[str, Any]:
    """One multilink run: worst-window loss per link count + handoff."""
    run = _render_nlink_run(index, root_seed, n_links,
                            StreamProfile(**profile))
    curve = diversity_gain_curve(
        [run], metric=lambda t: 100 * worst_window_loss(t))
    mbb = 100 * worst_window_loss(make_before_break(run))
    return {"curve": {str(k): float(v) for k, v in curve.items()},
            "mbb": float(mbb)}


def run_nlink_sweep(n_links: int = 4, n_runs: int = 10, seed: int = 0,
                    profile: StreamProfile = StreamProfile(
                        duration_s=60.0)) -> NLinkResult:
    rows = map_task(NLINK_TASK, range(n_runs),
                    {"root_seed": seed, "n_links": n_links,
                     "profile": _profile_config(profile)})
    curve = {k: float(np.mean([row["curve"][str(k)] for row in rows]))
             for k in range(1, n_links + 1)}
    mbb = float(np.mean([row["mbb"] for row in rows]))
    return NLinkResult(curve=curve, make_before_break_pct=mbb)


# ----------------------------------------------------------- cloud gaming

@dataclass
class GamingResult:
    """Frame-level outcomes per scenario, single vs hedged."""

    rows: List[List[str]]

    def render(self) -> str:
        return render_table(
            "Cloud gaming: frame failures and stalls, single link vs "
            "cross-link",
            ["scenario", "mode", "failed frames", "stalls/min"],
            self.rows)


def gaming_run_metrics(index: int, *, root_seed: int, scenario: str,
                       duration_s: float) -> Dict[str, Dict[str, float]]:
    """One game-streaming run over one scenario, single vs cross-link."""
    from repro.traffic.gaming import (
        GameStreamProfile,
        packetize_game_stream,
        score_game_session,
        transmit_game_stream,
    )
    game_profile = GameStreamProfile(duration_s=duration_s)
    root = RandomRouter(root_seed)
    router = root.fork(f"game-{scenario}-{index}")
    link_a, link_b = build_scenario(scenario, router)
    stream = packetize_game_stream(game_profile, router.stream("frames"))
    trace_a = transmit_game_stream(stream, link_a)
    trace_b = transmit_game_stream(stream, link_b)
    single = score_game_session(stream, trace_a)
    cross = score_game_session(stream, merge_traces([trace_a, trace_b]))
    return {
        "single": {"frame_failure_rate": float(single.frame_failure_rate),
                   "stalls_per_minute": float(single.stalls_per_minute)},
        "cross-link": {
            "frame_failure_rate": float(cross.frame_failure_rate),
            "stalls_per_minute": float(cross.stalls_per_minute)},
    }


def run_gaming(n_runs: int = 3, seed: int = 11,
               duration_s: float = 20.0,
               scenarios=("weak_link", "congestion", "mobility")
               ) -> GamingResult:
    """Stream 60 fps game video over the wild scenarios."""
    rows: List[List[str]] = []
    for scenario in scenarios:
        payloads = map_task(GAMING_TASK, range(n_runs),
                            {"root_seed": seed, "scenario": scenario,
                             "duration_s": float(duration_s)})
        for label in ("single", "cross-link"):
            scores = [p[label] for p in payloads]
            rows.append([
                scenario, label,
                f"{np.mean([s['frame_failure_rate'] for s in scores]) * 100:.2f}%",
                f"{np.mean([s['stalls_per_minute'] for s in scores]):.1f}"])
    return GamingResult(rows=rows)


# ------------------------------------------------------------ FEC baseline

@dataclass
class FecComparisonResult:
    """FEC-on-one-link vs replication-on-two-links."""

    fec_loss_pct: float
    fec_worst_pct: float
    cross_loss_pct: float
    cross_worst_pct: float
    fec_overhead_pct: float

    def render(self) -> str:
        rows = [
            ["FEC k=5 (single link)", f"{self.fec_loss_pct:.2f}%",
             f"{self.fec_worst_pct:.2f}%",
             f"{self.fec_overhead_pct:.0f}% always"],
            ["cross-link (two links)", f"{self.cross_loss_pct:.2f}%",
             f"{self.cross_worst_pct:.2f}%", "<1% reactive"],
        ]
        return render_table(
            "Coding vs diversity on bursty channels",
            ["scheme", "loss", "worst-5s", "airtime overhead"], rows)


def fec_run_metrics(index: int, *, root_seed: int, block_size: int,
                    profile: Mapping[str, Any]) -> Dict[str, float]:
    """One weak-link run: XOR-FEC recovery vs cross-link replication."""
    stream = StreamProfile(**profile)
    config = FecConfig(block_size=block_size)
    root = RandomRouter(root_seed)
    router = root.fork(f"fec-{index}")
    link_a, link_b = build_scenario("weak_link", router)
    data, parity = render_fec_run(link_a, stream, config)
    fec_trace = apply_fec(data, parity, config)
    cross = merge_traces([data, link_b.generate_trace(stream)])
    return {
        "fec_loss": float(fec_trace.loss_rate * 100),
        "fec_worst": float(100 * worst_window_loss(fec_trace)),
        "cross_loss": float(cross.loss_rate * 100),
        "cross_worst": float(100 * worst_window_loss(cross)),
    }


def run_fec_comparison(n_runs: int = 10, seed: int = 0,
                       profile: StreamProfile = StreamProfile(
                           duration_s=60.0)) -> FecComparisonResult:
    config = FecConfig(block_size=5)
    rows = map_task(FEC_TASK, range(n_runs),
                    {"root_seed": seed, "block_size": config.block_size,
                     "profile": _profile_config(profile)})
    return FecComparisonResult(
        fec_loss_pct=float(np.mean([r["fec_loss"] for r in rows])),
        fec_worst_pct=float(np.mean([r["fec_worst"] for r in rows])),
        cross_loss_pct=float(np.mean([r["cross_loss"] for r in rows])),
        cross_worst_pct=float(np.mean([r["cross_worst"] for r in rows])),
        fec_overhead_pct=config.overhead_fraction * 100)
