"""Section 3 drivers: Table 1, Table 2, Figure 1.

Each artifact's unit of work is a module-level task function
(:func:`table1_metrics`, :func:`table2_metrics`, :func:`figure1_metrics`)
executed through :mod:`repro.runner`, matching the Section 4-6 drivers:
the studies parallelize with ``--jobs``, cache per seed/config, and the
CLI prints the runner telemetry footer for them.  The task payloads are
plain JSON (lists and scalars); the drivers rebuild the result
dataclasses from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.analysis.report import render_table
from repro.runner import map_task
from repro.studies.nettest import (
    NetTestCall,
    NetTestDataset,
    run_nettest_study,
)
from repro.studies.population import (
    NetTestPopulationTables,
    ProviderPopulationTables,
    nettest_population_study,
    provider_population_study,
)
from repro.studies.provider import (
    Table1Row,
    analyze_table1,
    synthesize_provider_year,
)
from repro.studies.scan import (
    SURVEY_LOCATIONS,
    SurveyLocation,
    residential_multi_bssid_fraction,
    run_site_survey,
)

#: runner entry points for the Section 3 studies
TABLE1_TASK = "repro.experiments.section3:table1_metrics"
TABLE2_TASK = "repro.experiments.section3:table2_metrics"
FIGURE1_TASK = "repro.experiments.section3:figure1_metrics"


# ---------------------------------------------------------------------------
# per-seed tasks (the repro.runner units of work)

def table1_metrics(seed: int, *, n_calls: int = 200_000) -> Dict[str, Any]:
    """Synthesize one provider year and run the subset analysis."""
    dataset = synthesize_provider_year(n_calls=n_calls, seed=seed)
    return {
        "rows": [[row.label, float(row.delta_ee_pct),
                  float(row.delta_ew_pct), float(row.delta_ww_pct),
                  int(row.n_calls)]
                 for row in analyze_table1(dataset)],
        "overall_pcr": float(dataset.pcr()),
        "n_rated_calls": len(dataset.calls),
    }


def table2_metrics(seed: int, *, scale: float = 1.0) -> Dict[str, Any]:
    """One full NetTest study; the raw scored calls are the payload.

    Every Table 2 aggregate (category PCRs, per-user spatial stats) is a
    pure function of the call list, so shipping the calls keeps the task
    re-usable for any downstream cut without growing the cache key.
    """
    dataset = run_nettest_study(seed=seed, scale=scale)
    return {"calls": [[call.category, int(call.client_a),
                       int(call.client_b), float(call.mos)]
                      for call in dataset.calls]}


def figure1_metrics(seed: int) -> Dict[str, Any]:
    """The site survey plus the residential availability check.

    Counts are keyed by position: ``run_site_survey`` scans
    ``SURVEY_LOCATIONS`` in order, so the driver zips the counts back
    onto the location metadata.
    """
    survey = run_site_survey(seed=seed)
    return {
        "counts": [[int(scan.n_bssids), int(scan.n_channels)]
                   for _, scan in survey],
        "residential_multi_fraction": float(
            residential_multi_bssid_fraction(seed=seed)),
    }


# ----------------------------------------------------------------- Table 1

@dataclass
class Table1Result:
    """Relative PCR deltas (Table 1) from the synthetic provider year."""

    rows: List[Table1Row]
    overall_pcr: float
    n_rated_calls: int

    def render(self) -> str:
        table_rows = [
            [row.label, f"{row.delta_ee_pct:+.1f}%",
             f"{row.delta_ew_pct:+.1f}%", f"{row.delta_ww_pct:+.1f}%",
             row.n_calls]
            for row in self.rows]
        return render_table(
            "Table 1: change in PCR relative to the baseline "
            "(+ = better, - = worse)",
            ["Subset", "EE", "EW", "WW", "#calls"], table_rows)


def run_table1(n_calls: int = 200_000, seed: int = 0) -> Table1Result:
    """Synthesize the provider year and run the subset analysis."""
    (payload,) = map_task(TABLE1_TASK, [seed], {"n_calls": n_calls})
    return Table1Result(
        rows=[Table1Row(label=label, delta_ee_pct=ee, delta_ew_pct=ew,
                        delta_ww_pct=ww, n_calls=n)
              for label, ee, ew, ww, n in payload["rows"]],
        overall_pcr=payload["overall_pcr"],
        n_rated_calls=payload["n_rated_calls"])


# ----------------------------------------------------------------- Table 2

@dataclass
class Table2Result:
    """Per-category PCR for the NetTest study (Table 2)."""

    dataset: NetTestDataset
    frac_users_any_poor: float
    frac_users_pcr20: float

    def render(self) -> str:
        rows = [[cat, n, f"{pcr:.2f}"]
                for cat, n, pcr in self.dataset.table2()]
        table = render_table(
            "Table 2: poor call rates by call category",
            ["Call Type", "Total Calls", "PCR (%)"], rows)
        return (f"{table}\n"
                f"users with >=1 poor call: "
                f"{self.frac_users_any_poor * 100:.1f}%  "
                f"(paper: 57.9%)\n"
                f"users with PCR >= 20%:    "
                f"{self.frac_users_pcr20 * 100:.1f}%  (paper: 16.3%)")


def run_table2(seed: int = 0, scale: float = 1.0) -> Table2Result:
    """Simulate the NetTest study (9224 calls at scale=1)."""
    (payload,) = map_task(TABLE2_TASK, [seed], {"scale": scale})
    dataset = NetTestDataset(calls=[
        NetTestCall(category=category, client_a=a, client_b=b, mos=mos)
        for category, a, b, mos in payload["calls"]])
    frac_any, frac_20 = dataset.spatial_stats()
    return Table2Result(dataset=dataset,
                        frac_users_any_poor=frac_any,
                        frac_users_pcr20=frac_20)


# ---------------------------------------------------------------- Figure 1

@dataclass
class Figure1Result:
    """Per-location BSSID/channel counts (Figure 1's bars and dashes)."""

    locations: List[Tuple[SurveyLocation, int, int]]
    residential_multi_fraction: float

    @property
    def bssid_counts(self) -> List[int]:
        return [b for _, b, _ in self.locations]

    @property
    def channel_counts(self) -> List[int]:
        return [c for _, _, c in self.locations]

    def render(self) -> str:
        rows = [[loc.label, loc.city, bssids, channels]
                for loc, bssids, channels in self.locations]
        table = render_table(
            "Figure 1: connectable BSSIDs (bars) and distinct channels "
            "(dashes) per location",
            ["Location", "City", "#BSSIDs", "#channels"], rows)
        b, c = self.bssid_counts, self.channel_counts
        return (f"{table}\n"
                f"BSSIDs: median={int(np.median(b))} "
                f"range={min(b)}-{max(b)}  (paper: 6, 2-13)\n"
                f"channels: median={int(np.median(c))} "
                f"range={min(c)}-{max(c)}  (paper: 4, 2-9)\n"
                f"residential clients with >1 BSSID: "
                f"{self.residential_multi_fraction * 100:.0f}%  "
                f"(paper: ~30%)")


def run_figure1(seed: int = 0) -> Figure1Result:
    """Run the site survey and the residential availability check."""
    (payload,) = map_task(FIGURE1_TASK, [seed])
    return Figure1Result(
        locations=[(loc, bssids, channels)
                   for loc, (bssids, channels)
                   in zip(SURVEY_LOCATIONS, payload["counts"])],
        residential_multi_fraction=payload["residential_multi_fraction"])


# ------------------------------------------- whole-population backends

@dataclass
class ProviderPopulationResult:
    """Table 1 at population scale (streaming sketches, no call list)."""

    tables: ProviderPopulationTables

    def render(self) -> str:
        t = self.tables
        rows = [[row.label, f"{row.delta_ee_pct:+.1f}%",
                 f"{row.delta_ew_pct:+.1f}%", f"{row.delta_ww_pct:+.1f}%",
                 row.n_calls]
                for row in t.rows]
        table = render_table(
            "Table 1 (population backend): change in PCR relative to "
            "the baseline (+ = better, - = worse)",
            ["Subset", "EE", "EW", "WW", "#calls"], rows)
        lo, hi = t.pcr_wilson
        mos = t.mos_moments
        return (f"{table}\n"
                f"calls generated: {t.n_calls:,}  "
                f"rated: {t.n_rated_calls:,}\n"
                f"overall PCR: {t.overall_pcr * 100:.2f}%  "
                f"(95% Wilson: {lo * 100:.2f}-{hi * 100:.2f}%)\n"
                f"rated-call MOS: mean={mos.mean:.3f} "
                f"sd={mos.stddev:.3f}  "
                f"p10/p50/p90={t.mos_cdf.quantile(0.10):.2f}/"
                f"{t.mos_cdf.quantile(0.50):.2f}/"
                f"{t.mos_cdf.quantile(0.90):.2f} "
                f"(grid resolution {t.mos_cdf.bin_width:.3f})")


def run_provider_population(n_calls: int = 1_000_000,
                            seed: int = 0) -> ProviderPopulationResult:
    """The provider study at population scale (``repro provider``)."""
    return ProviderPopulationResult(
        tables=provider_population_study(n_calls=n_calls, seed=seed))


@dataclass
class NetTestPopulationResult:
    """Table 2 at population scale (runner-sharded blocks)."""

    tables: NetTestPopulationTables

    def render(self) -> str:
        t = self.tables
        rows = [[category, n, f"{pcr:.2f}"] for category, n, pcr in t.rows]
        table = render_table(
            "Table 2 (population backend): poor call rates by call "
            "category", ["Call Type", "Total Calls", "PCR (%)"], rows)
        lo, hi = t.pcr_wilson
        mos = t.mos_moments
        return (f"{table}\n"
                f"overall PCR: {t.overall_pcr * 100:.2f}%  "
                f"(95% Wilson: {lo * 100:.2f}-{hi * 100:.2f}%)\n"
                f"users with >=1 poor call: "
                f"{t.frac_users_any_poor * 100:.1f}%  (paper: 57.9%)\n"
                f"users with PCR >= 20%:    "
                f"{t.frac_users_pcr20 * 100:.1f}%  (paper: 16.3%)\n"
                f"call MOS: mean={mos.mean:.3f} sd={mos.stddev:.3f}  "
                f"p10/p50/p90={t.mos_cdf.quantile(0.10):.2f}/"
                f"{t.mos_cdf.quantile(0.50):.2f}/"
                f"{t.mos_cdf.quantile(0.90):.2f}")


def run_nettest_population(seed: int = 0, scale: float = 1.0
                           ) -> NetTestPopulationResult:
    """The NetTest study sharded over runner blocks (``repro nettest``)."""
    return NetTestPopulationResult(
        tables=nettest_population_study(seed=seed, scale=scale))
