"""G.711 codec model.

G.711 is 64 kbps PCM: 8000 samples/s, 8 bits each.  A 20 ms packet carries
one 160-sample frame — exactly the paper's "G.711-like" stream (160-byte
packets at 20 ms spacing).  The model tracks frames and samples (the units
the concealment accounting needs) and implements the actual mu-law
encode/decode transfer so the codec path is real, not a stub.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SAMPLE_RATE_HZ = 8000
FRAME_MS = 20
SAMPLES_PER_FRAME = SAMPLE_RATE_HZ * FRAME_MS // 1000  # 160
BYTES_PER_FRAME = SAMPLES_PER_FRAME  # 8-bit samples

_MU = 255.0
_PCM_MAX = 32767.0


@dataclass(frozen=True)
class G711Frame:
    """One encoded 20 ms frame."""

    seq: int
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.payload) != BYTES_PER_FRAME:
            raise ValueError(
                f"G.711 frame must be {BYTES_PER_FRAME} bytes, "
                f"got {len(self.payload)}")


class G711Codec:
    """Mu-law encode/decode on 16-bit PCM sample blocks."""

    @staticmethod
    def encode(samples: np.ndarray) -> bytes:
        """Encode one frame of 160 int16 samples to mu-law bytes."""
        if len(samples) != SAMPLES_PER_FRAME:
            raise ValueError(f"expected {SAMPLES_PER_FRAME} samples")
        x = np.asarray(samples, dtype=float) / _PCM_MAX
        x = np.clip(x, -1.0, 1.0)
        y = np.sign(x) * np.log1p(_MU * np.abs(x)) / np.log1p(_MU)
        quantized = ((y + 1.0) / 2.0 * 255.0).round().astype(np.uint8)
        return quantized.tobytes()

    @staticmethod
    def decode(payload: bytes) -> np.ndarray:
        """Decode mu-law bytes back to int16 PCM samples."""
        if len(payload) != BYTES_PER_FRAME:
            raise ValueError(f"expected {BYTES_PER_FRAME} bytes")
        y = np.frombuffer(payload, dtype=np.uint8).astype(float)
        y = y / 255.0 * 2.0 - 1.0
        x = np.sign(y) * ((1.0 + _MU) ** np.abs(y) - 1.0) / _MU
        return (x * _PCM_MAX).astype(np.int16)

    @classmethod
    def encode_stream(cls, pcm: np.ndarray) -> list:
        """Packetize a PCM sample stream into G711Frames (trailing samples
        that do not fill a frame are dropped, as a real packetizer does)."""
        frames = []
        n_frames = len(pcm) // SAMPLES_PER_FRAME
        for seq in range(n_frames):
            chunk = pcm[seq * SAMPLES_PER_FRAME:(seq + 1)
                        * SAMPLES_PER_FRAME]
            frames.append(G711Frame(seq, cls.encode(chunk)))
        return frames
