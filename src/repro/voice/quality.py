"""Call-quality scoring: the ITU-T E-model (G.107) mapped to MOS.

The transmission rating factor is

    R = R0 - Is - Id - Ie_eff + A

with R0 = 93.2 for G.711 narrowband.  We use:

* ``Id`` — delay impairment, the standard piecewise G.107 approximation of
  one-way delay (mouth-to-ear).
* ``Ie_eff`` — effective equipment impairment from packet loss with the
  burstiness-aware form Ie_eff = Ie + (95 - Ie) * Ppl / (Ppl/BurstR + Bpl),
  where BurstR is the burst ratio (observed mean burst length relative to
  random loss).  G.711 with PLC: Ie = 0, Bpl = 25.1 (lower Bpl = less
  robust).  Extrapolated (burst) concealment is exactly what drives BurstR
  up, tying the score to the paper's interpolation/extrapolation degrees.

R maps to MOS by the G.107 Annex B cubic.  The paper's worst-window
evidence [38] enters through scoring: the call score is a blend of the
whole-call R and the worst 5-second window's R.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

#: G.711 defaults
R0 = 93.2
IE_G711 = 0.0
BPL_G711 = 25.1


@dataclass(frozen=True)
class CodecImpairment:
    """Per-codec E-model constants (ITU-T G.113 Appendix I).

    ``ie`` is the equipment impairment at zero loss; ``bpl`` the packet-
    loss robustness (higher = more robust concealment).
    """

    name: str
    ie: float
    bpl: float


#: G.113 values for the codecs in the RTP static profile table.
CODEC_IMPAIRMENTS = {
    "g711": CodecImpairment("G.711 w/ PLC", ie=0.0, bpl=25.1),
    "PCMU/G711u": CodecImpairment("G.711 w/ PLC", ie=0.0, bpl=25.1),
    "PCMA/G711a": CodecImpairment("G.711 w/ PLC", ie=0.0, bpl=25.1),
    "G722": CodecImpairment("G.722", ie=13.0, bpl=15.0),
    "G723": CodecImpairment("G.723.1", ie=15.0, bpl=16.1),
    "G729": CodecImpairment("G.729A w/ VAD", ie=11.0, bpl=19.0),
}


class UnknownCodecError(KeyError):
    """``codec_impairment`` was asked about a codec G.113 doesn't cover."""


def codec_impairment(codec: str, strict: bool = True) -> CodecImpairment:
    """G.113 constants for ``codec``.

    An unknown codec raises :class:`UnknownCodecError`: the old silent
    G.711 fallback scored e.g. a misspelled low-bitrate codec with the
    *most* loss-robust constants in the table, quietly inflating its
    MOS.  Pass ``strict=False`` to opt back into the fallback (with a
    warning) when scoring traces whose codec column is untrusted.
    """
    constants = CODEC_IMPAIRMENTS.get(codec)
    if constants is not None:
        return constants
    if strict:
        raise UnknownCodecError(
            f"no G.113 impairment constants for codec {codec!r}; known: "
            f"{sorted(CODEC_IMPAIRMENTS)} (pass strict=False to fall "
            "back to G.711)")
    warnings.warn(
        f"unknown codec {codec!r}: falling back to G.711 constants",
        stacklevel=2)
    return CODEC_IMPAIRMENTS["g711"]


def delay_impairment(one_way_delay_s: float) -> float:
    """Id — G.107's delay impairment (simplified standard approximation)."""
    d_ms = max(one_way_delay_s, 0.0) * 1000.0
    # Below 100 ms delay is essentially free; beyond, impairment grows.
    if d_ms < 100.0:
        return d_ms * 0.024
    return 0.024 * d_ms + 0.11 * (d_ms - 177.3) * (d_ms > 177.3)


def loss_impairment(loss_fraction: float, burst_ratio: float = 1.0,
                    ie: float = IE_G711, bpl: float = BPL_G711) -> float:
    """Ie_eff — packet-loss impairment with burstiness (G.107 eq. 7-29)."""
    ppl = max(loss_fraction, 0.0) * 100.0
    burst_r = max(burst_ratio, 1.0)
    return ie + (95.0 - ie) * ppl / (ppl / burst_r + bpl)


def burst_ratio(loss_fraction: float, mean_burst_len: float) -> float:
    """BurstR = observed mean burst length / expected under random loss.

    Under Bernoulli loss at rate p, bursts have mean length 1/(1-p).
    """
    if mean_burst_len <= 0:
        return 1.0
    p = min(max(loss_fraction, 0.0), 0.99)
    random_mean = 1.0 / (1.0 - p)
    return max(mean_burst_len / random_mean, 1.0)


def emodel_r_factor(loss_fraction: float, one_way_delay_s: float,
                    mean_burst_len: float = 1.0,
                    codec: str = "g711") -> float:
    """Full-call R factor (codec-aware via the G.113 constants)."""
    constants = codec_impairment(codec)
    br = burst_ratio(loss_fraction, mean_burst_len)
    r = (R0 - delay_impairment(one_way_delay_s)
         - loss_impairment(loss_fraction, br,
                           ie=constants.ie, bpl=constants.bpl))
    return float(np.clip(r, 0.0, 100.0))


def r_to_mos(r: float) -> float:
    """G.107 Annex B mapping from R to MOS (1.0 .. 4.5)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    # The cubic dips fractionally below 1.0 for tiny positive R; MOS is
    # defined on [1, 4.5].
    return float(min(max(mos, 1.0), 4.5))


@dataclass
class CallScore:
    """The quality verdict for one call."""

    r_factor: float
    mos: float
    loss_fraction: float
    worst_window_loss: float
    mean_burst_len: float
    one_way_delay_s: float

    def is_poor(self, mos_threshold: float) -> bool:
        """Would a user rate this call in the two lowest bins?"""
        return self.mos < mos_threshold
