"""Voice-quality pipeline.

Replays a network trace through a G.711 codec model with a playout buffer
and loss concealment, then scores the call with the ITU-T E-model (G.107)
mapped to MOS — the reproduction's stand-in for the paper's PESQ-based
scoring ([10], [11]).  The poor-call threshold corresponds to the two
lowest bins of a 5-point user rating scale.

End to end::

    from repro.voice import score_call, poor_call_rate

    mos = score_call(trace).mos
    pcr = poor_call_rate(traces)
"""

from repro.voice.g711 import G711Codec, G711Frame
from repro.voice.playout import PlayoutBuffer, PlayoutResult
from repro.voice.adaptive import AdaptivePlayoutBuffer, AdaptivePlayoutConfig
from repro.voice.concealment import ConcealmentAccounting, account_concealment
from repro.voice.quality import CallScore, emodel_r_factor, r_to_mos
from repro.voice.pcr import POOR_MOS_THRESHOLD, poor_call_rate, score_call
from repro.voice.audio import (
    ConcealingDecoder,
    score_call_audio,
    synthesize_speech,
)

__all__ = [
    "AdaptivePlayoutBuffer",
    "AdaptivePlayoutConfig",
    "CallScore",
    "ConcealingDecoder",
    "ConcealmentAccounting",
    "G711Codec",
    "G711Frame",
    "POOR_MOS_THRESHOLD",
    "PlayoutBuffer",
    "PlayoutResult",
    "account_concealment",
    "emodel_r_factor",
    "poor_call_rate",
    "r_to_mos",
    "score_call",
    "score_call_audio",
    "synthesize_speech",
]
