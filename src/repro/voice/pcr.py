"""Poor-call-rate estimation from packet traces.

Pipeline per call (matching the paper's methodology in Sections 3.2/4):

1. Replay the network trace through the playout buffer (late = lost).
2. Account concealment (interpolation vs extrapolation degrees).
3. Score the call with the E-model, blending the whole-call impairment
   with the worst 5-second window (worst-segment quality dominates user
   ratings [38]).
4. Threshold MOS to "poor" — the two lowest bins of the 5-point scale.

PCR over a set of calls is the fraction scored poor.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np

from repro.analysis.bursts import burst_lengths
from repro.analysis.windows import worst_window_loss
from repro.core.packet import LinkTrace, StreamTrace
from repro.voice.concealment import account_concealment
from repro.voice.playout import PlayoutBuffer
from repro.voice.quality import CallScore, emodel_r_factor, r_to_mos

#: MOS below which users land in the two lowest rating bins.  Calibrated so
#: that the paper's baseline populations reproduce their reported PCRs
#: (NetTest overall ~10%; the in-the-wild "stronger" baseline ~12%).
POOR_MOS_THRESHOLD = 3.0

#: weight of the worst 5-second window in the call score (vs whole call).
#: Calibrated so that a call with a single ~10% worst window but an
#: otherwise clean trace is not yet rated poor (the paper's office primary
#: has a 11.6% 90th-percentile worst window at only 4.9% PCR).
WORST_WINDOW_WEIGHT = 0.25


def score_call(trace: Union[LinkTrace, StreamTrace],
               playout_delay_s: float = 0.100,
               extra_one_way_delay_s: float = 0.050) -> CallScore:
    """Score one call.

    ``extra_one_way_delay_s`` accounts for the rest of the end-to-end path
    (WAN + encode/decode) beyond the WiFi hop captured in the trace.
    """
    if isinstance(trace, StreamTrace):
        trace = trace.effective_trace(deadline=playout_delay_s)
    playout = PlayoutBuffer(playout_delay_s).replay(trace)
    concealment = account_concealment(playout)

    loss = playout.effective_loss_rate
    missing = (~playout.played).astype(float)
    worst = worst_window_loss(
        missing,
        inter_packet_spacing_s=_spacing_of(trace))
    bursts = burst_lengths(missing)
    mean_burst = float(np.mean(bursts)) if bursts else 0.0

    delays = trace.delays[trace.delivered]
    median_delay = float(np.median(delays)) if delays.size else 0.0
    one_way = extra_one_way_delay_s + max(median_delay, 0.0) \
        + playout_delay_s / 2.0

    r_full = emodel_r_factor(loss, one_way, mean_burst)
    r_worst = emodel_r_factor(worst, one_way, mean_burst)
    r = ((1.0 - WORST_WINDOW_WEIGHT) * r_full
         + WORST_WINDOW_WEIGHT * r_worst)
    return CallScore(
        r_factor=r, mos=r_to_mos(r), loss_fraction=loss,
        worst_window_loss=worst, mean_burst_len=mean_burst,
        one_way_delay_s=one_way)


def poor_call_rate(traces: Iterable[Union[LinkTrace, StreamTrace]],
                   playout_delay_s: float = 0.100,
                   mos_threshold: float = POOR_MOS_THRESHOLD) -> float:
    """Fraction of calls whose MOS falls below the poor threshold."""
    scores: List[CallScore] = [
        score_call(t, playout_delay_s) for t in traces]
    if not scores:
        raise ValueError("no calls to score")
    return float(np.mean([s.is_poor(mos_threshold) for s in scores]))


def _spacing_of(trace: LinkTrace) -> float:
    if len(trace) >= 2:
        return float(np.median(np.diff(trace.send_times)))
    return 0.020
