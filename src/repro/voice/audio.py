"""Sample-level audio pipeline: synthesis, concealment, PESQ-like scoring.

The E-model pipeline (:mod:`repro.voice.quality`) scores calls from
packet statistics.  This module runs the *actual audio path* the paper's
methodology describes — "running the packet traces through a G711 codec,
and using the degree of interpolation and extrapolation of voice
samples":

1. synthesize a speech-like reference signal (harmonic voiced segments
   with pitch/energy modulation, separated by pauses);
2. G.711-encode it into 20 ms frames and subject the frames to a network
   trace (lost/late frames never reach the decoder);
3. decode with packet-loss concealment — interpolation across single-
   frame gaps, energy-attenuated repetition (extrapolation) inside
   bursts;
4. score the degraded signal against the reference with segmental SNR
   mapped to a MOS-like value (a light-weight stand-in for PESQ, ITU-T
   P.862/P.862.1).

It is slower than the E-model path, so the large studies keep using the
statistical scorer; this one backs it up at sample level and is exercised
by the voice tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.packet import LinkTrace
from repro.voice.g711 import (
    G711Codec,
    SAMPLE_RATE_HZ,
    SAMPLES_PER_FRAME,
)
from repro.voice.playout import PlayoutBuffer


def synthesize_speech(duration_s: float,
                      rng: np.random.Generator) -> np.ndarray:
    """A speech-like int16 signal at 8 kHz.

    Voiced segments (0.2–1 s) carry a few harmonics of a drifting pitch
    with an energy envelope; pauses (0.1–0.5 s) separate them.  Not
    speech, but spectrally and temporally speech-*shaped*, which is what
    concealment quality depends on.
    """
    n_total = int(duration_s * SAMPLE_RATE_HZ)
    signal = np.zeros(n_total)
    t_cursor = 0
    while t_cursor < n_total:
        pause = int(rng.uniform(0.1, 0.5) * SAMPLE_RATE_HZ)
        t_cursor += pause
        if t_cursor >= n_total:
            break
        voiced = int(rng.uniform(0.2, 1.0) * SAMPLE_RATE_HZ)
        voiced = min(voiced, n_total - t_cursor)
        t = np.arange(voiced) / SAMPLE_RATE_HZ
        pitch = rng.uniform(90.0, 220.0)
        drift = rng.uniform(-20.0, 20.0)
        phase = 2 * np.pi * (pitch * t + 0.5 * drift * t ** 2)
        chunk = np.zeros(voiced)
        for harmonic, gain in ((1, 1.0), (2, 0.5), (3, 0.25), (4, 0.12)):
            chunk += gain * np.sin(harmonic * phase)
        envelope = np.hanning(voiced) * rng.uniform(0.4, 1.0)
        signal[t_cursor:t_cursor + voiced] = chunk * envelope
        t_cursor += voiced
    peak = np.max(np.abs(signal)) or 1.0
    return (signal / peak * 12000.0).astype(np.int16)


class ConcealingDecoder:
    """G.711 decoder with interpolation/extrapolation concealment."""

    #: per-frame energy decay while extrapolating (PLC standard behaviour)
    ATTENUATION = 0.7

    def decode_call(self, frames: List[Optional[bytes]]) -> np.ndarray:
        """Decode a call; ``None`` entries are missing frames.

        Returns the concealed PCM signal (int16).
        """
        n = len(frames)
        out = np.zeros(n * SAMPLES_PER_FRAME, dtype=float)
        decoded: List[Optional[np.ndarray]] = [
            G711Codec.decode(f).astype(float) if f is not None else None
            for f in frames]
        last_good: Optional[np.ndarray] = None
        gap_age = 0
        for i in range(n):
            sl = slice(i * SAMPLES_PER_FRAME, (i + 1) * SAMPLES_PER_FRAME)
            if decoded[i] is not None:
                out[sl] = decoded[i]
                last_good = decoded[i]
                gap_age = 0
                continue
            nxt = decoded[i + 1] if i + 1 < n else None
            if gap_age == 0 and last_good is not None and nxt is not None:
                # Interpolate an isolated gap: crossfade neighbours.
                ramp = np.linspace(0.0, 1.0, SAMPLES_PER_FRAME)
                out[sl] = last_good * (1.0 - ramp) + nxt * ramp
            elif last_good is not None:
                # Extrapolate: repeat with energy decay.
                out[sl] = last_good * (self.ATTENUATION ** (gap_age + 1))
            # else: leading silence stays silent
            gap_age += 1
        return np.clip(out, -32768, 32767).astype(np.int16)


def segmental_snr_db(reference: np.ndarray, degraded: np.ndarray,
                     segment_samples: int = SAMPLES_PER_FRAME) -> float:
    """Mean per-segment SNR over active segments, clamped to [-10, 35]."""
    n = min(len(reference), len(degraded))
    ref = reference[:n].astype(float)
    deg = degraded[:n].astype(float)
    snrs = []
    for start in range(0, n - segment_samples + 1, segment_samples):
        r = ref[start:start + segment_samples]
        d = deg[start:start + segment_samples]
        power = np.mean(r ** 2)
        if power < 1e3:       # silence segment: skip
            continue
        noise = np.mean((r - d) ** 2)
        snr = 10.0 * np.log10(power / max(noise, 1e-9))
        snrs.append(float(np.clip(snr, -10.0, 35.0)))
    if not snrs:
        return 35.0
    return float(np.mean(snrs))


def snr_to_mos(seg_snr_db: float) -> float:
    """A PESQ-flavoured logistic mapping from segmental SNR to MOS."""
    return float(1.0 + 3.5 / (1.0 + np.exp(-(seg_snr_db - 12.0) / 5.0)))


def score_call_audio(trace: LinkTrace, rng: np.random.Generator,
                     playout_delay_s: float = 0.100) -> float:
    """Full audio-path MOS for one call's network trace."""
    duration = len(trace) * 0.020
    reference = synthesize_speech(duration, rng)
    # Packetize, subject to the network + playout outcome, decode.
    n_frames = len(trace)
    usable = reference[:n_frames * SAMPLES_PER_FRAME]
    playout = PlayoutBuffer(playout_delay_s).replay(trace)
    frames: List[Optional[bytes]] = []
    for i in range(n_frames):
        chunk = usable[i * SAMPLES_PER_FRAME:(i + 1) * SAMPLES_PER_FRAME]
        if playout.played[i]:
            frames.append(G711Codec.encode(chunk))
        else:
            frames.append(None)
    degraded = ConcealingDecoder().decode_call(frames)
    # Compare against the codec's own clean output, so the score isolates
    # *network* damage from mu-law quantization noise.
    clean = ConcealingDecoder().decode_call(
        [G711Codec.encode(usable[i * SAMPLES_PER_FRAME:
                                 (i + 1) * SAMPLES_PER_FRAME])
         for i in range(n_frames)])
    return snr_to_mos(segmental_snr_db(clean, degraded))
