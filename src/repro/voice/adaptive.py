"""Adaptive playout buffering.

The fixed 100 ms playout schedule in :mod:`repro.voice.playout` mirrors
the paper's MaxTolerableDelay accounting.  Real receivers instead *adapt*
the playout point to the observed delay process (the classic
Ramjee/Kurose autoregressive estimator): track the delay mean and
variation with EWMAs and play each frame at

    playout_i = send_i + d_i + beta * v_i

clamped to a configurable maximum.  Adaptation trades a little extra
mouth-to-ear delay on jittery paths for far fewer late losses — and is
the natural companion to DiversiFi, whose recovered packets arrive with
up to ~90 ms of extra delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import LinkTrace
from repro.voice.playout import PlayoutResult


@dataclass(frozen=True)
class AdaptivePlayoutConfig:
    """Estimator parameters (classic values)."""

    alpha: float = 0.998          # delay-mean EWMA factor
    beta: float = 4.0             # safety multiple of delay variation
    initial_delay_s: float = 0.060
    min_delay_s: float = 0.020
    max_delay_s: float = 0.200


class AdaptivePlayoutBuffer:
    """EWMA-adaptive playout schedule."""

    def __init__(self, config: AdaptivePlayoutConfig =
                 AdaptivePlayoutConfig()):
        if not 0.0 < config.alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        self.config = config

    def replay(self, trace: LinkTrace) -> PlayoutResult:
        """Replay a trace; late = missed the *adaptive* playout point."""
        config = self.config
        d_hat = config.initial_delay_s
        v_hat = 0.010
        played = np.zeros(len(trace), dtype=bool)
        network_losses = 0
        late_losses = 0
        self._playout_delays = np.zeros(len(trace))
        arrivals = trace.arrival_times
        for i in range(len(trace)):
            playout_delay = float(np.clip(
                d_hat + config.beta * v_hat,
                config.min_delay_s, config.max_delay_s))
            self._playout_delays[i] = playout_delay
            if not trace.delivered[i]:
                network_losses += 1
                continue
            delay = arrivals[i] - trace.send_times[i]
            if delay <= playout_delay + 1e-12:
                played[i] = True
            else:
                late_losses += 1
            # Update the estimators from every *arrived* packet (late
            # ones carry the most information about where to sit).
            d_hat = (config.alpha * d_hat
                     + (1.0 - config.alpha) * delay)
            v_hat = (config.alpha * v_hat
                     + (1.0 - config.alpha) * abs(delay - d_hat))
        return PlayoutResult(played=played, network_losses=network_losses,
                             late_losses=late_losses)

    @property
    def mean_playout_delay_s(self) -> float:
        """Average buffering delay of the last replay."""
        delays = getattr(self, "_playout_delays", None)
        if delays is None or delays.size == 0:
            return 0.0
        return float(delays.mean())
