"""Loss concealment accounting.

A G.711 decoder conceals missing frames: an isolated missing frame between
two received ones can be **interpolated** (mild artifact); consecutive
missing frames past the first must be **extrapolated** from stale history
(energy-attenuated repetition — strong artifact, and the reason burst
losses matter so much).  The paper estimates call quality from "the degree
of interpolation and extrapolation of voice samples"; this module produces
exactly those degrees from the playout pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.voice.g711 import SAMPLES_PER_FRAME
from repro.voice.playout import PlayoutResult


@dataclass
class ConcealmentAccounting:
    """Sample-level concealment totals for one call."""

    n_frames: int
    played_frames: int
    interpolated_frames: int
    extrapolated_frames: int

    @property
    def interpolated_samples(self) -> int:
        return self.interpolated_frames * SAMPLES_PER_FRAME

    @property
    def extrapolated_samples(self) -> int:
        return self.extrapolated_frames * SAMPLES_PER_FRAME

    @property
    def concealment_fraction(self) -> float:
        """Fraction of frames needing any concealment."""
        if self.n_frames == 0:
            return 0.0
        return (self.interpolated_frames
                + self.extrapolated_frames) / self.n_frames

    @property
    def extrapolation_fraction(self) -> float:
        """Fraction of frames needing the harsh (extrapolated) kind."""
        if self.n_frames == 0:
            return 0.0
        return self.extrapolated_frames / self.n_frames


def account_concealment(result: PlayoutResult) -> ConcealmentAccounting:
    """Classify every missing frame as interpolated or extrapolated.

    Rule (matching common PLC implementations): the *first* frame of a loss
    run whose successor frame is available is interpolated; every other
    missing frame — later frames of a burst, or a first frame with no good
    successor — is extrapolated.
    """
    played = np.asarray(result.played, dtype=bool)
    n = played.size
    interpolated = 0
    extrapolated = 0
    i = 0
    while i < n:
        if played[i]:
            i += 1
            continue
        run_start = i
        while i < n and not played[i]:
            i += 1
        run_len = i - run_start
        successor_ok = i < n  # a played frame follows the run
        if run_len == 1 and successor_ok and run_start > 0:
            interpolated += 1
        else:
            # Long bursts: even the first frame ends up extrapolated in
            # practice because interpolation needs both neighbours fresh.
            extrapolated += run_len
    return ConcealmentAccounting(
        n_frames=n,
        played_frames=int(played.sum()),
        interpolated_frames=interpolated,
        extrapolated_frames=extrapolated)
