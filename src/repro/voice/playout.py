"""Receiver playout buffer.

Interactive audio plays each 20 ms frame at a fixed offset (the playout
delay) after it was captured.  A packet that arrives after its playout
instant is useless — a *late loss*.  The buffer model converts a network
trace (per-packet arrival times) into the per-frame available/missing
pattern the concealment and quality stages consume.

The playout delay defaults to the paper's 100 ms MaxTolerableDelay budget
for the access hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import LinkTrace


@dataclass
class PlayoutResult:
    """Per-frame playout availability for one call."""

    #: True where the frame was on time for its playout instant
    played: np.ndarray
    #: count of frames lost in the network
    network_losses: int
    #: count of frames that arrived but too late to play
    late_losses: int

    @property
    def n_frames(self) -> int:
        return int(self.played.size)

    @property
    def effective_loss_rate(self) -> float:
        """Fraction of frames missing at playout (network + late)."""
        if self.played.size == 0:
            return 0.0
        return float(np.mean(~self.played))


class PlayoutBuffer:
    """Fixed-delay playout schedule."""

    def __init__(self, playout_delay_s: float = 0.100):
        if playout_delay_s <= 0:
            raise ValueError("playout delay must be positive")
        self.playout_delay_s = playout_delay_s

    def replay(self, trace: LinkTrace) -> PlayoutResult:
        """Replay a trace against the playout schedule."""
        deadlines = trace.send_times + self.playout_delay_s
        arrivals = trace.arrival_times
        played = np.zeros(len(trace), dtype=bool)
        network_losses = 0
        late_losses = 0
        for i in range(len(trace)):
            if not trace.delivered[i]:
                network_losses += 1
                continue
            if arrivals[i] <= deadlines[i] + 1e-12:
                played[i] = True
            else:
                late_losses += 1
        return PlayoutResult(played=played, network_losses=network_losses,
                             late_losses=late_losses)
