"""Receiver playout buffer.

Interactive audio plays each 20 ms frame at a fixed offset (the playout
delay) after it was captured.  A packet that arrives after its playout
instant is useless — a *late loss*.  The buffer model converts a network
trace (per-packet arrival times) into the per-frame available/missing
pattern the concealment and quality stages consume.

The playout delay defaults to the paper's 100 ms MaxTolerableDelay budget
for the access hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.packet import LinkTrace
from repro.obs.registry import LabelValue, MetricsRegistry
from repro.obs.runtime import active_registry


@dataclass
class PlayoutResult:
    """Per-frame playout availability for one call."""

    #: True where the frame was on time for its playout instant
    played: np.ndarray
    #: count of frames lost in the network
    network_losses: int
    #: count of frames that arrived but too late to play
    late_losses: int

    @property
    def n_frames(self) -> int:
        return int(self.played.size)

    @property
    def effective_loss_rate(self) -> float:
        """Fraction of frames missing at playout (network + late)."""
        if self.played.size == 0:
            return 0.0
        return float(np.mean(~self.played))


class PlayoutBuffer:
    """Fixed-delay playout schedule."""

    def __init__(self, playout_delay_s: float = 0.100,
                 metrics: Optional[MetricsRegistry] = None,
                 metric_labels: Optional[Dict[str, LabelValue]] = None):
        if playout_delay_s <= 0:
            raise ValueError("playout delay must be positive")
        self.playout_delay_s = playout_delay_s
        self._metrics = metrics if metrics is not None \
            else active_registry()
        self._metric_labels: Dict[str, LabelValue] = \
            dict(metric_labels or {})

    def replay(self, trace: LinkTrace) -> PlayoutResult:
        """Replay a trace against the playout schedule."""
        deadlines = trace.send_times + self.playout_delay_s
        arrivals = trace.arrival_times
        played = np.zeros(len(trace), dtype=bool)
        network_losses = 0
        late_losses = 0
        margin_hist = None
        if self._metrics is not None:
            margin_hist = self._metrics.histogram(
                "playout.margin_s", **self._metric_labels)
        for i in range(len(trace)):
            if not trace.delivered[i]:
                network_losses += 1
                continue
            if arrivals[i] <= deadlines[i] + 1e-12:
                played[i] = True
                if margin_hist is not None:
                    margin_hist.observe(
                        float(deadlines[i] - arrivals[i]))
            else:
                late_losses += 1
        if self._metrics is not None:
            labels = self._metric_labels
            self._metrics.counter("playout.frames",
                                  **labels).inc(len(trace))
            self._metrics.counter("playout.network_losses",
                                  **labels).inc(network_losses)
            self._metrics.counter("playout.late_losses",
                                  **labels).inc(late_losses)
            # Every missing frame at its playout instant is concealed.
            self._metrics.counter(
                "playout.concealment_events",
                **labels).inc(network_losses + late_losses)
        return PlayoutResult(played=played, network_losses=network_losses,
                             late_losses=late_losses)
