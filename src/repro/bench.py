"""Benchmark harness: the perf trajectory baseline (``make bench``).

Runs a small fixed scenario matrix through :mod:`repro.runner` twice per
subsystem — once cache-cold (fresh content-addressed cache, every spec
executes) and once cache-warm (same cache directory, every spec must
hit) — and emits ``BENCH_runner.json`` at the repo root with
sessions/sec per subsystem.  Wall time is measured with
:class:`repro.obs.SpanTracker` spans bound to the process clock, so the
span histograms land in the embedded metrics blob alongside the rates.

All wall-clock reads here are telemetry: they describe how fast the
simulator ran, and never feed back into simulated behaviour (the repo's
sanctioned-telemetry convention).

Usage::

    PYTHONPATH=src python -m repro.bench            # writes BENCH_runner.json
    PYTHONPATH=src python -m repro.bench --output x.json --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, SpanTracker, to_canonical_json
from repro.runner import RunSpec, RunnerConfig, run_batch

SCHEMA = "repro-bench/1"
DEFAULT_OUTPUT = "BENCH_runner.json"


@dataclass(frozen=True)
class BenchEntry:
    """One subsystem's fixed workload: a task and its seed range.

    ``sessions_per_seed`` is the number of simulated sessions one spec
    covers — 1 for event tasks, the block ``count`` for batch tasks,
    where a single spec renders a whole population block.  Throughput is
    reported in sessions (not specs) per second so event and batch rows
    are directly comparable.
    """

    name: str
    task: str
    n_seeds: int
    seed0: int = 0
    task_config: Optional[Mapping[str, Any]] = None
    sessions_per_seed: int = 1


#: the fixed matrix — small on purpose: the numbers are a trajectory
#: baseline, not a load test.  One entry per subsystem the roadmap's
#: perf work targets (wifi channel+session sim, paired TCP sessions,
#: switch micro-benchmark, middlebox retrieval path, the QoE control
#: plane head-to-head, and the two batch-backend phases: render-only
#: and the full render+reduce pipeline).  The controller row counts 3
#: sessions per seed — one per strategy.  The batch rows sweep a 1000-session population in one
#: block so their sessions/s divides directly against ``wifi_session``
#: for the batch-vs-event speedup.
DEFAULT_MATRIX: Tuple[BenchEntry, ...] = (
    BenchEntry("wifi_session",
               "repro.experiments.section6:office_run_metrics", 4),
    BenchEntry("wifi_tcp",
               "repro.experiments.section6:tcp_throughput_metrics", 2),
    BenchEntry("net_switch",
               "repro.experiments.section6:switch_delay_metrics", 8),
    BenchEntry("net_middlebox",
               "repro.experiments.section6:mbox_retrieval_metrics", 8),
    BenchEntry("controller_sweep",
               "repro.experiments.controlplane:controller_run_metrics", 2,
               task_config={
                   "root_seed": 0, "scenario": "mix", "n_paths": 3,
                   "profile": {"name": "g711", "packet_size_bytes": 160,
                               "inter_packet_spacing_s": 0.020,
                               "duration_s": 20.0,
                               "max_tolerable_delay_s": 0.100},
                   "controller": {
                       "poll_interval_s": 0.5, "ewma_alpha": 0.4,
                       "reroute_margin_mos": 0.12, "probes_per_poll": 4,
                       "probe_size_bytes": 64, "hedge_start_loss": 0.02,
                       "hedge_stop_loss": 0.005,
                       "extra_one_way_delay_s": 0.05,
                       "rule_priority": 10}},
               sessions_per_seed=3),
    BenchEntry("batch_render",
               "repro.batch.driver:render_block_metrics", 1,
               task_config={"count": 500, "root_seed": 0},
               sessions_per_seed=500),
    BenchEntry("batch_strategies",
               "repro.batch.driver:population_block_metrics", 1,
               task_config={"count": 1000, "root_seed": 0},
               sessions_per_seed=1000),
    # The Section 3 population studies: the scalar per-call loop as the
    # baseline (one spec = one 20k-call provider year) against the
    # vectorized pass-1 block task (one spec = one full 16384-call
    # block) — the pair whose ratio is the population speedup.  The
    # nettest row is one protocol block of full trace simulations.
    BenchEntry("provider_scalar",
               "repro.experiments.section3:table1_metrics", 1,
               task_config={"n_calls": 20_000},
               sessions_per_seed=20_000),
    BenchEntry("provider_population",
               "repro.studies.population:provider_pass1_metrics", 1,
               task_config={"count": 16_384, "root_seed": 0},
               sessions_per_seed=16_384),
    BenchEntry("nettest_population",
               "repro.studies.population:nettest_block_metrics", 1,
               task_config={"count": 64, "root_seed": 0, "scale": 1.0},
               sessions_per_seed=64),
)


def _scaled(matrix: Sequence[BenchEntry], scale: float
            ) -> List[BenchEntry]:
    """Scale every entry's workload.

    Event entries scale their seed count; batch entries (one spec per
    block) scale the block ``count`` instead, keeping one spec.
    """
    if scale == 1.0:
        return list(matrix)
    scaled: List[BenchEntry] = []
    for e in matrix:
        config = dict(e.task_config) if e.task_config else None
        per_seed = e.sessions_per_seed
        if config is not None and "count" in config:
            config["count"] = max(1, int(round(config["count"] * scale)))
            per_seed = config["count"]
            n_seeds = e.n_seeds
        else:
            n_seeds = max(1, int(round(e.n_seeds * scale)))
        scaled.append(BenchEntry(e.name, e.task, n_seeds, e.seed0,
                                 config, per_seed))
    return scaled


def _specs(entry: BenchEntry) -> List[RunSpec]:
    config = dict(entry.task_config or {})
    return [RunSpec.build(entry.task, seed, config)
            for seed in range(entry.seed0, entry.seed0 + entry.n_seeds)]


def _phase(entry: BenchEntry, tracker: SpanTracker, cache_dir: Path,
           phase: str) -> Dict[str, Any]:
    """One timed pass over the entry's specs.

    ``cold`` bypasses cache reads (but still writes, priming the warm
    pass); ``warm`` reads the cache populated by the cold pass.
    """
    specs = _specs(entry)
    config = RunnerConfig(cache_dir=cache_dir, no_cache=(phase == "cold"),
                          memo=False)
    with tracker.span(f"bench.{entry.name}", phase=phase) as span:
        batch = run_batch(specs, config=config)
    duration = span.end()
    sessions = len(specs) * entry.sessions_per_seed
    return {
        "sessions": sessions,
        "wall_s": round(duration, 6),
        "sessions_per_s": round(sessions / duration, 3)
        if duration > 0 else None,
        "executed": batch.stats.executed,
        "cache_hits": batch.stats.cache_hits,
        "digest": batch.digest,
    }


def run_bench(matrix: Optional[Sequence[BenchEntry]] = None,
              scale: float = 1.0,
              cache_dir: Optional[Path] = None) -> Dict[str, Any]:
    """Execute the matrix and return the ``BENCH_runner.json`` payload."""
    entries = _scaled(matrix if matrix is not None else DEFAULT_MATRIX,
                      scale)
    registry = MetricsRegistry()
    tracker = SpanTracker(clock=time.perf_counter, registry=registry,
                          source="bench")

    owns_cache = cache_dir is None
    cache_root = Path(tempfile.mkdtemp(prefix="repro-bench-")) \
        if owns_cache else Path(cache_dir)
    try:
        subsystems: Dict[str, Any] = {}
        for entry in entries:
            subsystems[entry.name] = {
                "task": entry.task,
                "cache_cold": _phase(entry, tracker, cache_root, "cold"),
                "cache_warm": _phase(entry, tracker, cache_root, "warm"),
            }
    finally:
        if owns_cache:
            shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "generated_by": "make bench (repro.bench)",
        "python": platform.python_version(),
        "platform": platform.system().lower(),
        "matrix": {e.name: e.n_seeds for e in entries},
        "subsystems": subsystems,
        "spans": json.loads(to_canonical_json(registry)),
    }


def write_bench(path: Path,
                matrix: Optional[Sequence[BenchEntry]] = None,
                scale: float = 1.0) -> Dict[str, Any]:
    """Run the matrix and write the payload to ``path`` as sorted JSON."""
    payload = run_bench(matrix=matrix, scale=scale)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``make bench`` / ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Run the fixed benchmark matrix and emit "
                    "BENCH_runner.json.")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="output path (default: %(default)s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale every entry's seed count "
                             "(default: 1.0)")
    args = parser.parse_args(argv)

    payload = write_bench(Path(args.output), scale=args.scale)
    for name, result in sorted(payload["subsystems"].items()):
        cold = result["cache_cold"]
        warm = result["cache_warm"]
        print(f"{name:16s} cold {cold['sessions_per_s']:>10} /s   "
              f"warm {warm['sessions_per_s']:>10} /s   "
              f"({cold['sessions']} sessions)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
