"""ASCII renderers that print the same rows/series the paper reports.

Every benchmark harness funnels its results through these so the output is
directly comparable with the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for r, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(row))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_cdf_series(title: str,
                      series: Dict[str, Sequence[Tuple[float, float]]],
                      x_label: str = "loss %") -> str:
    """Key percentile read-outs of several CDFs (as the paper quotes)."""
    lines = [title, "=" * len(title),
             f"{'series':24s}  {'p50':>8s}  {'p75':>8s}  "
             f"{'p90':>8s}  {'p99':>8s}   ({x_label})"]
    for name, points in series.items():
        xs = [x for x, _ in points]
        fs = [f for _, f in points]
        lines.append(
            f"{name:24s}  {_quantile(xs, fs, 0.50):8.2f}  "
            f"{_quantile(xs, fs, 0.75):8.2f}  "
            f"{_quantile(xs, fs, 0.90):8.2f}  "
            f"{_quantile(xs, fs, 0.99):8.2f}")
    return "\n".join(lines)


def render_histogram(title: str, buckets: Dict[str, float],
                     unit: str = "avg packets") -> str:
    """A labelled bar list (Figure 5/9 style)."""
    lines = [title, "=" * len(title)]
    peak = max(buckets.values()) if buckets else 0.0
    for label, value in buckets.items():
        bar = "#" * int(round(30 * value / peak)) if peak > 0 else ""
        lines.append(f"{label:>6s}  {value:8.2f} {unit:12s} {bar}")
    return "\n".join(lines)


def _quantile(xs: List[float], fs: List[float], q: float) -> float:
    for x, f in zip(xs, fs):
        if f >= q:
            return x
    return xs[-1] if xs else float("nan")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
