"""Metrics and statistics used by every experiment.

* :mod:`repro.analysis.windows` — worst 5-second-window loss, the paper's
  headline network metric (Section 4's "worst 5-second period").
* :mod:`repro.analysis.bursts` — loss burst-length distributions
  (Figures 5 and 9).
* :mod:`repro.analysis.correlation` — auto/cross-correlation of the loss
  process (Figure 4).
* :mod:`repro.analysis.cdf` — empirical CDFs and percentile helpers.
* :mod:`repro.analysis.report` — ASCII table/series renderers that print
  the same rows the paper reports.
"""

from repro.analysis.bursts import burst_histogram, burst_lengths, burst_stats
from repro.analysis.cdf import EmpiricalCdf, percentile
from repro.analysis.correlation import (
    loss_autocorrelation,
    loss_crosscorrelation,
)
from repro.analysis.fitting import GilbertFit, fit_gilbert
from repro.analysis.summary import (
    bootstrap_interval,
    improvement_factor_interval,
    paired_difference_interval,
    permutation_pvalue,
)
from repro.analysis.windows import (
    window_loss_rates,
    worst_window_loss,
)

__all__ = [
    "EmpiricalCdf",
    "GilbertFit",
    "bootstrap_interval",
    "burst_histogram",
    "burst_lengths",
    "burst_stats",
    "fit_gilbert",
    "improvement_factor_interval",
    "loss_autocorrelation",
    "loss_crosscorrelation",
    "paired_difference_interval",
    "percentile",
    "permutation_pvalue",
    "window_loss_rates",
    "worst_window_loss",
]
