"""Windowed loss metrics.

The paper divides each simulated call into 5-second periods and reports the
loss rate of the *worst* period, citing evidence that the worst degradation
in a short call dominates user-perceived quality [38].  Windows are aligned
to the stream's send times (a 2-minute, 20 ms-spaced call has 24 windows of
250 packets).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.core.packet import LinkTrace


def _loss_array(trace: Union[LinkTrace, np.ndarray]) -> np.ndarray:
    if isinstance(trace, LinkTrace):
        return trace.loss_indicator
    return np.asarray(trace, dtype=float)


def window_loss_rates(trace: Union[LinkTrace, np.ndarray],
                      window_s: float = 5.0,
                      inter_packet_spacing_s: float = 0.020) -> np.ndarray:
    """Per-window loss rates.

    ``trace`` may be a :class:`LinkTrace` or a 0/1 loss-indicator array.
    Windows are contiguous, non-overlapping blocks of
    ``window_s / inter_packet_spacing_s`` packets; a trailing partial
    window is included if it holds at least one packet.
    """
    losses = _loss_array(trace)
    if losses.size == 0:
        return np.array([])
    per_window = max(int(round(window_s / inter_packet_spacing_s)), 1)
    rates: List[float] = []
    for start in range(0, len(losses), per_window):
        block = losses[start:start + per_window]
        rates.append(float(block.mean()))
    return np.asarray(rates)


def worst_window_loss(trace: Union[LinkTrace, np.ndarray],
                      window_s: float = 5.0,
                      inter_packet_spacing_s: float = 0.020) -> float:
    """Loss rate (fraction) of the worst window — the Figure 2/8 metric."""
    rates = window_loss_rates(trace, window_s, inter_packet_spacing_s)
    if rates.size == 0:
        return 0.0
    return float(rates.max())
