"""Windowed loss metrics.

The paper divides each simulated call into 5-second periods and reports the
loss rate of the *worst* period, citing evidence that the worst degradation
in a short call dominates user-perceived quality [38].  Windows are aligned
to the stream's send times (a 2-minute, 20 ms-spaced call has 24 windows of
250 packets).

Every window in this module is **half-open**: window ``i`` covers
``[i * window_s, (i + 1) * window_s)``, so a packet landing exactly on a
boundary belongs to the *later* window and adjacent windows tile the
call without double-counting — the same ``[start, end)`` convention as
:meth:`repro.sim.tracing.EventLog.between` and the
:class:`repro.obs.registry.Histogram` buckets.  (Index-block slicing in
:func:`window_loss_rates` has always tiled; the time-based
:func:`assign_windows` makes the convention explicit for irregular
timestamps.)
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.core.packet import LinkTrace


def _loss_array(trace: Union[LinkTrace, np.ndarray]) -> np.ndarray:
    if isinstance(trace, LinkTrace):
        return trace.loss_indicator
    return np.asarray(trace, dtype=float)


def window_loss_rates(trace: Union[LinkTrace, np.ndarray],
                      window_s: float = 5.0,
                      inter_packet_spacing_s: float = 0.020) -> np.ndarray:
    """Per-window loss rates.

    ``trace`` may be a :class:`LinkTrace` or a 0/1 loss-indicator array.
    Windows are contiguous, non-overlapping blocks of
    ``window_s / inter_packet_spacing_s`` packets; a trailing partial
    window is included if it holds at least one packet.
    """
    losses = _loss_array(trace)
    if losses.size == 0:
        return np.array([])
    per_window = max(int(round(window_s / inter_packet_spacing_s)), 1)
    rates: List[float] = []
    for start in range(0, len(losses), per_window):
        block = losses[start:start + per_window]
        rates.append(float(block.mean()))
    return np.asarray(rates)


def assign_windows(times: np.ndarray, window_s: float = 5.0,
                   start_time: float = 0.0) -> np.ndarray:
    """Half-open window index for each timestamp.

    A timestamp ``t`` lands in window ``floor((t - start_time) /
    window_s)``: window ``i`` covers ``[start + i*w, start + (i+1)*w)``,
    so a packet exactly on a boundary belongs to the later window and
    no timestamp is ever counted in two adjacent windows.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s!r}")
    times = np.asarray(times, dtype=float)
    if np.any(times < start_time):
        raise ValueError("timestamps precede start_time")
    return np.floor((times - start_time) / window_s).astype(int)


def window_loss_rates_timed(times: np.ndarray,
                            losses: Union[LinkTrace, np.ndarray],
                            window_s: float = 5.0,
                            start_time: float = 0.0) -> np.ndarray:
    """Per-window loss rates with windows cut by *timestamp*.

    Unlike :func:`window_loss_rates` (fixed packet-count blocks), this
    handles irregular send times: packets are binned by
    :func:`assign_windows`, empty interior windows report a loss rate
    of 0.0, and the observation period ends at the last timestamp's
    window.
    """
    loss = _loss_array(losses)
    times = np.asarray(times, dtype=float)
    if times.shape != loss.shape:
        raise ValueError(
            f"times {times.shape} and losses {loss.shape} differ")
    if times.size == 0:
        return np.array([])
    ids = assign_windows(times, window_s, start_time)
    n_windows = int(ids.max()) + 1
    lost = np.bincount(ids, weights=loss, minlength=n_windows)
    total = np.bincount(ids, minlength=n_windows)
    rates = np.zeros(n_windows)
    nonempty = total > 0
    rates[nonempty] = lost[nonempty] / total[nonempty]
    return rates


def worst_window_loss(trace: Union[LinkTrace, np.ndarray],
                      window_s: float = 5.0,
                      inter_packet_spacing_s: float = 0.020) -> float:
    """Loss rate (fraction) of the worst window — the Figure 2/8 metric."""
    rates = window_loss_rates(trace, window_s, inter_packet_spacing_s)
    if rates.size == 0:
        return 0.0
    return float(rates.max())
