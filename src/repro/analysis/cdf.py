"""Empirical CDFs and percentile helpers for figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values`` (linear interpolation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


class EmpiricalCdf:
    """An empirical distribution built from samples.

    Mirrors how the paper plots "fraction of data streams" against a
    per-stream metric (e.g. worst-5s loss percentage).
    """

    def __init__(self, samples: Iterable[float]):
        self._sorted = np.sort(np.asarray(list(samples), dtype=float))
        if self._sorted.size == 0:
            raise ValueError("empty sample set")

    def __len__(self) -> int:
        return int(self._sorted.size)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self._sorted, x, side="right")
                     / self._sorted.size)

    def quantile(self, q: float) -> float:
        """Inverse CDF at q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile argument outside [0, 1]")
        return float(np.percentile(self._sorted, q * 100.0))

    def series(self, points: int = 100) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs for plotting/printing."""
        n = self._sorted.size
        fractions = np.arange(1, n + 1) / n
        if n <= points:
            return list(zip(self._sorted.tolist(), fractions.tolist()))
        idx = np.linspace(0, n - 1, points).astype(int)
        return list(zip(self._sorted[idx].tolist(), fractions[idx].tolist()))

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    @property
    def median(self) -> float:
        return self.quantile(0.5)
