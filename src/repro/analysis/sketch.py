"""Mergeable streaming aggregators for whole-population studies.

The paper's Table 1 rests on a *year* of provider ratings and Table 2 on
a 274-user deployment; reproducing them at 10^6-10^7 calls means the
per-block runner tasks can never ship (or hold) the raw call lists.
Each task instead reduces its block to a handful of *mergeable* sketches
and the driver folds the per-block payloads together **in spec order**
— the same order for serial, ``--jobs N`` and warm-cache executions, so
the merged statistics (and therefore the batch digest and any rendered
table) stay byte-identical across scheduling and caching modes.

The aggregators:

* :class:`LabeledCounts` — *exact* labeled counters: per ``(subset,
  category)`` call totals and poor-call totals.  PCR, the Table 1
  deltas and the Wilson confidence bounds are all pure functions of
  these integers, so at any population size the table values equal the
  scalar path's to the last bit.
* :class:`GridCdf` — a fixed-grid CDF/quantile sketch: integer bin
  counts over ``[lo, hi)`` plus min/max and out-of-range tallies.
  Quantiles interpolate inside one bin, so the error is bounded by the
  bin width; merging is integer addition (exact, order-free).
* :class:`MomentSketch` — streaming mean/variance via Welford's
  recurrence, merged with the Chan parallel-axis formula.  Floating
  point makes the merge order-*sensitive*, which is exactly why the
  driver merges in spec order.
* :func:`wilson_interval` — the score-interval bounds reported next to
  every population PCR ("confidence intervals that actually tighten at
  scale", ROADMAP item 1).

Every sketch serializes to a plain-JSON payload (``to_payload`` /
``from_payload``) with sorted, canonical key order, so the payloads can
travel through the content-addressed runner cache unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "GridCdf",
    "LabeledCounts",
    "MomentSketch",
    "SketchError",
    "wilson_interval",
]


class SketchError(ValueError):
    """Incompatible sketches were merged or a payload failed to parse."""


# ---------------------------------------------------------------------------
# exact labeled counters

@dataclass
class LabeledCounts:
    """Exact ``label -> (n, poor)`` counters.

    Labels are tuples of strings (e.g. ``("PC", "EE")`` for the Table 1
    PC row's EE column).  Merging adds counts; it is exact and
    order-free, but the repo-wide contract is to merge in spec order
    anyway so every aggregator obeys one rule.
    """

    counts: Dict[Tuple[str, ...], Tuple[int, int]] = field(
        default_factory=dict)

    def observe(self, label: Tuple[str, ...], n: int, poor: int) -> None:
        if n < 0 or poor < 0 or poor > n:
            raise SketchError(
                f"invalid counts for {label!r}: n={n} poor={poor}")
        old_n, old_poor = self.counts.get(label, (0, 0))
        self.counts[label] = (old_n + int(n), old_poor + int(poor))

    def merge(self, other: "LabeledCounts") -> "LabeledCounts":
        for label, (n, poor) in sorted(other.counts.items()):
            self.observe(label, n, poor)
        return self

    def n(self, label: Tuple[str, ...]) -> int:
        return self.counts.get(label, (0, 0))[0]

    def poor(self, label: Tuple[str, ...]) -> int:
        return self.counts.get(label, (0, 0))[1]

    def pcr(self, label: Tuple[str, ...]) -> float:
        """Poor-call rate for ``label`` — ``poor / n`` exactly as
        ``float(np.mean([...]))`` computes it on the scalar path
        (integer counts are exact in float64 up to 2**53)."""
        n, poor = self.counts.get(label, (0, 0))
        if n == 0:
            return float("nan")
        return poor / n

    def wilson(self, label: Tuple[str, ...],
               z: float = 1.96) -> Tuple[float, float]:
        n, poor = self.counts.get(label, (0, 0))
        return wilson_interval(poor, n, z=z)

    def to_payload(self) -> List[List[Any]]:
        """``[[label..., n, poor], ...]`` sorted by label (byte-stable)."""
        return [[*label, n, poor]
                for label, (n, poor) in sorted(self.counts.items())]

    @classmethod
    def from_payload(cls, payload: Iterable[Iterable[Any]]
                     ) -> "LabeledCounts":
        out = cls()
        for row in payload:
            entries = list(row)
            if len(entries) < 3:
                raise SketchError(f"malformed counter row: {entries!r}")
            label = tuple(str(part) for part in entries[:-2])
            out.observe(label, int(entries[-2]), int(entries[-1]))
        return out


# ---------------------------------------------------------------------------
# fixed-grid CDF / quantile sketch

@dataclass
class GridCdf:
    """Histogram sketch on a fixed grid ``[lo, hi)`` with ``bins`` cells.

    Values below ``lo`` / at-or-above ``hi`` land in dedicated under-
    and overflow tallies; min/max are tracked exactly.  Quantiles are
    linearly interpolated within the containing cell, so the absolute
    error of :meth:`quantile` is at most one bin width for any value
    inside the grid (pinned by ``tests/test_sketch.py``).
    """

    lo: float
    hi: float
    bins: int
    bucket_counts: List[int] = field(default_factory=list)
    below: int = 0
    above: int = 0
    count: int = 0
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    def __post_init__(self) -> None:
        if not (self.hi > self.lo) or self.bins < 1:
            raise SketchError(
                f"invalid grid [{self.lo}, {self.hi}) x {self.bins}")
        if not self.bucket_counts:
            self.bucket_counts = [0] * self.bins
        if len(self.bucket_counts) != self.bins:
            raise SketchError("bucket_counts does not match bins")

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / self.bins

    def observe_array(self, values: "np.ndarray") -> None:
        data = np.asarray(values, dtype=float).ravel()
        if data.size == 0:
            return
        self.count += int(data.size)
        lo_v = float(data.min())
        hi_v = float(data.max())
        self.min_value = lo_v if self.min_value is None \
            else min(self.min_value, lo_v)
        self.max_value = hi_v if self.max_value is None \
            else max(self.max_value, hi_v)
        idx = np.floor((data - self.lo) / self.bin_width).astype(np.int64)
        self.below += int(np.count_nonzero(idx < 0))
        self.above += int(np.count_nonzero(idx >= self.bins))
        inside = idx[(idx >= 0) & (idx < self.bins)]
        binned = np.bincount(inside, minlength=self.bins)
        for i in np.nonzero(binned)[0]:
            self.bucket_counts[int(i)] += int(binned[i])

    def merge(self, other: "GridCdf") -> "GridCdf":
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi,
                                                self.bins):
            raise SketchError(
                f"grid mismatch: [{self.lo},{self.hi})x{self.bins} vs "
                f"[{other.lo},{other.hi})x{other.bins}")
        self.bucket_counts = [a + b for a, b in
                              zip(self.bucket_counts,
                                  other.bucket_counts)]
        self.below += other.below
        self.above += other.above
        self.count += other.count
        for bound in (other.min_value,):
            if bound is not None:
                self.min_value = bound if self.min_value is None \
                    else min(self.min_value, bound)
        for bound in (other.max_value,):
            if bound is not None:
                self.max_value = bound if self.max_value is None \
                    else max(self.max_value, bound)
        return self

    def cdf(self, x: float) -> float:
        """Fraction of observed values ``<= x``, at grid resolution
        (values below ``lo`` are only resolvable as "below the grid",
        so for ``x < lo`` the sketch answers 0)."""
        if self.count == 0:
            return float("nan")
        if x < self.lo:
            return 0.0
        idx = int(math.floor((x - self.lo) / self.bin_width))
        covered = self.below + sum(
            self.bucket_counts[:min(idx + 1, self.bins)])
        if idx >= self.bins:
            covered += self.above
        return covered / self.count

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (abs error <= one bin width in-grid)."""
        if not 0.0 <= q <= 1.0:
            raise SketchError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        covered = float(self.below)
        if target <= covered:
            return self.min_value if self.min_value is not None \
                else self.lo
        for i, bucket in enumerate(self.bucket_counts):
            if bucket and covered + bucket >= target:
                frac = (target - covered) / bucket
                return self.lo + (i + frac) * self.bin_width
            covered += bucket
        return self.max_value if self.max_value is not None else self.hi

    def to_payload(self) -> Dict[str, Any]:
        return {
            "above": self.above,
            "below": self.below,
            "bins": self.bins,
            "counts": list(self.bucket_counts),
            "count": self.count,
            "hi": self.hi,
            "lo": self.lo,
            "max": self.max_value,
            "min": self.min_value,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "GridCdf":
        try:
            return cls(lo=float(payload["lo"]), hi=float(payload["hi"]),
                       bins=int(payload["bins"]),
                       bucket_counts=[int(c) for c in payload["counts"]],
                       below=int(payload["below"]),
                       above=int(payload["above"]),
                       count=int(payload["count"]),
                       min_value=None if payload["min"] is None
                       else float(payload["min"]),
                       max_value=None if payload["max"] is None
                       else float(payload["max"]))
        except (KeyError, TypeError) as exc:
            raise SketchError(f"malformed GridCdf payload: {exc}") from exc


# ---------------------------------------------------------------------------
# streaming moments

@dataclass
class MomentSketch:
    """Count / mean / M2 via Welford, merged with Chan's formula.

    The merge is floating point and therefore order-sensitive; callers
    must fold sketches in spec order (the repo's determinism contract)
    so serial, parallel and warm-cache merges are byte-identical.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def observe_array(self, values: "np.ndarray") -> None:
        data = np.asarray(values, dtype=float).ravel()
        if data.size == 0:
            return
        other = MomentSketch(
            count=int(data.size),
            mean=float(np.mean(data)),
            m2=float(np.sum((data - np.mean(data)) ** 2)))
        self.merge(other)

    def merge(self, other: "MomentSketch") -> "MomentSketch":
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self.m2 = (other.count, other.mean,
                                              other.m2)
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = (self.m2 + other.m2
                   + delta * delta * self.count * other.count / total)
        self.mean = self.mean + delta * other.count / total
        self.count = total
        return self

    @property
    def variance(self) -> float:
        if self.count < 2:
            return float("nan")
        return self.m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else variance

    def to_payload(self) -> Dict[str, Any]:
        return {"count": self.count, "m2": self.m2, "mean": self.mean}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MomentSketch":
        try:
            return cls(count=int(payload["count"]),
                       mean=float(payload["mean"]),
                       m2=float(payload["m2"]))
        except (KeyError, TypeError) as exc:
            raise SketchError(
                f"malformed MomentSketch payload: {exc}") from exc


# ---------------------------------------------------------------------------
# confidence bounds

def wilson_interval(successes: int, n: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because population PCRs sit
    near 0.1 where the Wald interval undercovers; at n = 0 the interval
    is the uninformative ``(0, 1)``.
    """
    if n < 0 or successes < 0 or successes > n:
        raise SketchError(f"invalid proportion: {successes}/{n}")
    if n == 0:
        return (0.0, 1.0)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n
                                   + z2 / (4.0 * n * n))
    return (max(center - half, 0.0), min(center + half, 1.0))
