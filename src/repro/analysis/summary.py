"""Statistical comparison helpers for experiment results.

Reproduction claims live or die on whether differences are real; these
utilities provide the nonparametric machinery the benchmark assertions
lean on informally:

* bootstrap confidence intervals for means/quantiles of per-run metrics;
* paired-difference bootstrap (the Section 4 strategy comparisons are
  paired by construction — same channel realization per run);
* a permutation test for "strategy A beats strategy B".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.sim.random import RandomRouter


def _resampling_rng(rng: Optional[np.random.Generator], seed: int,
                    stream: str) -> np.random.Generator:
    """The generator used for resampling draws.

    Callers may inject their own ``rng`` (typically a
    ``RandomRouter.stream(...)``); otherwise one is derived from ``seed``
    through a router so the draws live on a named stream like every other
    stochastic component, rather than a raw ``np.random.default_rng``.
    """
    if rng is not None:
        return rng
    return RandomRouter(seed).stream(stream)


@dataclass(frozen=True)
class Interval:
    """A bootstrap interval for a statistic."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:   # pragma: no cover - convenience
        return (f"{self.point:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}]"
                f"@{self.confidence:.0%}")


def bootstrap_interval(samples: Sequence[float],
                       statistic: Callable[[np.ndarray], float] = np.mean,
                       confidence: float = 0.95,
                       n_resamples: int = 2000,
                       seed: int = 0,
                       rng: Optional[np.random.Generator] = None) -> Interval:
    """Percentile-bootstrap CI for ``statistic`` of ``samples``."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    rng = _resampling_rng(rng, seed, "analysis.bootstrap")
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        stats[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return Interval(point=float(statistic(data)),
                    low=float(np.quantile(stats, alpha)),
                    high=float(np.quantile(stats, 1.0 - alpha)),
                    confidence=confidence)


def paired_difference_interval(a: Sequence[float], b: Sequence[float],
                               confidence: float = 0.95,
                               n_resamples: int = 2000,
                               seed: int = 0,
                               rng: Optional[np.random.Generator] = None
                               ) -> Interval:
    """Bootstrap CI for mean(a - b) over paired per-run metrics."""
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    return bootstrap_interval(a - b, confidence=confidence,
                              n_resamples=n_resamples, seed=seed, rng=rng)


def permutation_pvalue(a: Sequence[float], b: Sequence[float],
                       n_permutations: int = 5000,
                       seed: int = 0,
                       rng: Optional[np.random.Generator] = None) -> float:
    """One-sided paired sign-flip test for mean(a) < mean(b).

    Returns the probability, under random sign flips of the paired
    differences, of seeing a mean difference at least as negative as
    observed.  Small p => strategy A genuinely scores lower than B.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    diffs = a - b
    observed = diffs.mean()
    rng = _resampling_rng(rng, seed, "analysis.permutation")
    count = 0
    for _ in range(n_permutations):
        signs = rng.choice((-1.0, 1.0), size=diffs.size)
        if (diffs * signs).mean() <= observed:
            count += 1
    return (count + 1) / (n_permutations + 1)


def improvement_factor_interval(baseline: Sequence[float],
                                treatment: Sequence[float],
                                confidence: float = 0.95,
                                n_resamples: int = 2000,
                                seed: int = 0,
                                rng: Optional[np.random.Generator] = None
                                ) -> Interval:
    """Bootstrap CI for mean(baseline)/mean(treatment) — the "2.24x"
    style headline numbers (PCR cut factors)."""
    base = np.asarray(list(baseline), dtype=float)
    treat = np.asarray(list(treatment), dtype=float)
    if base.size == 0 or treat.size == 0:
        raise ValueError("no samples")
    rng = _resampling_rng(rng, seed, "analysis.improvement")
    ratios = []
    for _ in range(n_resamples):
        rb = base[rng.integers(0, base.size, size=base.size)]
        rt = treat[rng.integers(0, treat.size, size=treat.size)]
        denominator = max(rt.mean(), 1e-12)
        ratios.append(rb.mean() / denominator)
    ratios = np.asarray(ratios)
    alpha = (1.0 - confidence) / 2.0
    point = base.mean() / max(treat.mean(), 1e-12)
    return Interval(point=float(point),
                    low=float(np.quantile(ratios, alpha)),
                    high=float(np.quantile(ratios, 1.0 - alpha)),
                    confidence=confidence)
