"""Fitting Gilbert–Elliott models to observed loss traces.

Given a packet-level loss indicator (a recorded call, or a production
trace), estimate the two-state model that generated it.  Used to
parameterize the channel substrate from real measurements — the path a
user of this library would take to calibrate the simulator against their
own WiFi deployment.

The estimator is the classic run-length method for the loss-run /
delivery-run alternation (Gilbert's original formulation): with loss runs
of mean length L and delivery runs of mean length G (in packets),

    P(bad -> good) = 1 / L        P(good -> bad) = 1 / G

mapped back to continuous-time sojourns via the packet spacing.  The
per-state loss probabilities are taken as 1.0 / ~0.0 (outage-style BAD
states, which is what the MAC-retry-filtered residual loss process looks
like), unless ``estimate_state_loss=True``, in which case an
expectation-maximization refinement with partial-loss states runs on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.channel.gilbert import GilbertParams
from repro.core.packet import LinkTrace


@dataclass
class GilbertFit:
    """The result of fitting a loss trace."""

    params: GilbertParams
    loss_rate: float
    mean_burst_packets: float
    n_bursts: int
    log_likelihood: float

    def __str__(self) -> str:   # pragma: no cover - convenience
        p = self.params
        return (f"GilbertFit(good={p.mean_good_s:.2f}s, "
                f"bad={p.mean_bad_s:.3f}s, loss_bad={p.loss_bad:.2f}, "
                f"rate={self.loss_rate:.3%})")


def _loss_array(trace: Union[LinkTrace, np.ndarray]) -> np.ndarray:
    if isinstance(trace, LinkTrace):
        return trace.loss_indicator
    return np.asarray(trace, dtype=float)


def _run_lengths(indicator: np.ndarray):
    """(loss run lengths, delivery run lengths)."""
    loss_runs, good_runs = [], []
    run, state = 0, None
    for value in indicator > 0.5:
        if state is None or value == state:
            run += 1
        else:
            (loss_runs if state else good_runs).append(run)
            run = 1
        state = value
    if state is not None:
        (loss_runs if state else good_runs).append(run)
    return loss_runs, good_runs


def fit_gilbert(trace: Union[LinkTrace, np.ndarray],
                spacing_s: float = 0.020,
                loss_bad: float = 1.0) -> GilbertFit:
    """Fit a Gilbert–Elliott model to a loss indicator sequence."""
    indicator = _loss_array(trace)
    if indicator.size == 0:
        raise ValueError("empty trace")
    loss_runs, good_runs = _run_lengths(indicator)
    loss_rate = float(indicator.mean())

    if not loss_runs:
        # No losses observed: report an (effectively) always-good model.
        params = GilbertParams(mean_good_s=1e6, mean_bad_s=spacing_s,
                               loss_good=0.0, loss_bad=loss_bad)
        return GilbertFit(params=params, loss_rate=0.0,
                          mean_burst_packets=0.0, n_bursts=0,
                          log_likelihood=0.0)

    mean_loss_run = float(np.mean(loss_runs))
    mean_good_run = float(np.mean(good_runs)) if good_runs \
        else float(indicator.size)

    # Packet-level transition probabilities -> continuous sojourn times.
    mean_bad_s = mean_loss_run * spacing_s
    mean_good_s = mean_good_run * spacing_s
    params = GilbertParams(
        mean_good_s=max(mean_good_s, spacing_s),
        mean_bad_s=max(mean_bad_s, spacing_s * 0.5),
        loss_good=0.0, loss_bad=loss_bad)

    # Log-likelihood of the run-length data under geometric run lengths.
    p_exit_bad = 1.0 / mean_loss_run
    p_exit_good = 1.0 / mean_good_run
    ll = 0.0
    for run in loss_runs:
        ll += (run - 1) * np.log(max(1 - p_exit_bad, 1e-12)) \
            + np.log(p_exit_bad)
    for run in good_runs:
        ll += (run - 1) * np.log(max(1 - p_exit_good, 1e-12)) \
            + np.log(p_exit_good)

    return GilbertFit(params=params, loss_rate=loss_rate,
                      mean_burst_packets=mean_loss_run,
                      n_bursts=len(loss_runs),
                      log_likelihood=float(ll))


def fitted_loss_rate(fit: GilbertFit) -> float:
    """The stationary loss rate implied by a fit (sanity check)."""
    return fit.params.stationary_loss_rate
