"""Loss burst statistics.

Burst losses are the real enemy of interactive audio: concealment can paper
over an isolated 20 ms gap, but consecutive losses produce audible
artifacts.  Figures 5 and 9 plot the distribution of burst lengths and the
split between isolated and bursty losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

import numpy as np

from repro.core.packet import LinkTrace


def _loss_array(trace: Union[LinkTrace, np.ndarray]) -> np.ndarray:
    if isinstance(trace, LinkTrace):
        return trace.loss_indicator
    return np.asarray(trace, dtype=float)


def burst_lengths(trace: Union[LinkTrace, np.ndarray]) -> List[int]:
    """Lengths of maximal runs of consecutive losses."""
    losses = _loss_array(trace) > 0.5
    lengths: List[int] = []
    run = 0
    for lost in losses:
        if lost:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return lengths


def burst_histogram(traces, max_bucket: int = 10) -> Dict[str, float]:
    """Average per-call count of bursts by length (Figure 5/9 bars).

    Buckets "1".."{max_bucket}" plus ">{max_bucket}".  ``traces`` is a
    sequence of calls; counts are averaged across them.
    """
    buckets = {str(i): 0.0 for i in range(1, max_bucket + 1)}
    buckets[f">{max_bucket}"] = 0.0
    n_calls = 0
    for trace in traces:
        n_calls += 1
        for length in burst_lengths(trace):
            key = str(length) if length <= max_bucket else f">{max_bucket}"
            buckets[key] += length  # packets lost in bursts of this length
    if n_calls:
        for key in buckets:
            buckets[key] /= n_calls
    return buckets


@dataclass
class BurstStats:
    """Per-call averages of total vs bursty losses (paper Section 4.2/6.2)."""

    mean_lost: float
    mean_lost_in_bursts: float

    @property
    def bursty_fraction(self) -> float:
        if self.mean_lost == 0:
            return 0.0
        return self.mean_lost_in_bursts / self.mean_lost


def burst_stats(traces) -> BurstStats:
    """Average packets lost per call, and the share in bursts of >= 2."""
    total, bursty, n_calls = 0.0, 0.0, 0
    for trace in traces:
        n_calls += 1
        for length in burst_lengths(trace):
            total += length
            if length >= 2:
                bursty += length
    if n_calls == 0:
        return BurstStats(0.0, 0.0)
    return BurstStats(total / n_calls, bursty / n_calls)
