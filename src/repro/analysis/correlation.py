"""Auto- and cross-correlation of the packet-loss process (Figure 4).

The paper's key statistical argument: within one link, the loss indicator
is positively autocorrelated out to lags of 20 packets (400 ms at 20 ms
spacing), while the cross-correlation between two links' loss processes is
much smaller — so replication across links recovers what retransmission
within a link cannot.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.packet import LinkTrace


def _loss_array(trace: Union[LinkTrace, np.ndarray]) -> np.ndarray:
    if isinstance(trace, LinkTrace):
        return trace.loss_indicator
    return np.asarray(trace, dtype=float)


def _corr_at_lag(x: np.ndarray, y: np.ndarray, lag: int) -> float:
    """Pearson correlation of x[t] and y[t+lag] (NaN-safe -> 0.0)."""
    if lag > 0:
        a, b = x[:-lag], y[lag:]
    elif lag < 0:
        a, b = x[-lag:], y[:lag]
    else:
        a, b = x, y
    if len(a) < 2:
        return 0.0
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def loss_autocorrelation(trace: Union[LinkTrace, np.ndarray],
                         max_lag: int = 20) -> np.ndarray:
    """Autocorrelation of the loss indicator at lags 1..max_lag."""
    x = _loss_array(trace)
    return np.array([_corr_at_lag(x, x, lag)
                     for lag in range(1, max_lag + 1)])


def loss_crosscorrelation(trace_a: Union[LinkTrace, np.ndarray],
                          trace_b: Union[LinkTrace, np.ndarray],
                          max_lag: int = 20) -> np.ndarray:
    """Cross-correlation of two links' loss processes at lags 1..max_lag."""
    x = _loss_array(trace_a)
    y = _loss_array(trace_b)
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    return np.array([_corr_at_lag(x, y, lag)
                     for lag in range(1, max_lag + 1)])


def mean_correlation_series(pairs: Sequence, max_lag: int = 20,
                            cross: bool = False) -> np.ndarray:
    """Average correlation curves over many calls.

    ``pairs`` is a sequence of (trace_a, trace_b); with ``cross=False``
    the autocorrelation of ``trace_a`` is averaged, with ``cross=True``
    the cross-correlation of the pair.  Calls whose loss process is
    degenerate (no losses) contribute zeros, mirroring how an all-delivered
    call carries no correlation information.
    """
    curves = []
    for trace_a, trace_b in pairs:
        if cross:
            curves.append(loss_crosscorrelation(trace_a, trace_b, max_lag))
        else:
            curves.append(loss_autocorrelation(trace_a, max_lag))
    if not curves:
        return np.zeros(max_lag)
    return np.mean(np.vstack(curves), axis=0)
