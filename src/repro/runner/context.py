"""The active runner configuration.

Drivers call :func:`repro.runner.map_task` without threading execution
options through every signature; the CLI (or a test, or a notebook)
installs a :class:`RunnerConfig` around the call instead::

    with runner_context(jobs=4, cache_dir="~/.cache/repro"):
        experiments.run_figure2a(n_runs=458)

The default configuration is serial, memo-only (no disk), so library
callers and the test suite see exactly the old single-process behaviour
unless they opt in.
"""

from __future__ import annotations

import contextlib
import dataclasses
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

#: progress hook: called with a :class:`ProgressEvent` after every run
ProgressHook = Callable[["ProgressEvent"], None]

#: batch hook: called with each completed ``BatchResult`` (telemetry)
BatchHook = Callable[[Any], None]


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """One completed run, as reported to progress hooks."""

    task: str
    seed: int
    key: str
    cached: bool
    wall_time_s: float
    completed: int
    total: int
    cache_hits: int


@dataclasses.dataclass(frozen=True)
class RunnerConfig:
    """Execution options for :func:`repro.runner.run_batch`.

    ``jobs=1`` (the default) executes in-process; ``jobs>1`` fans out
    over a spawn-context process pool.  ``cache_dir`` enables the on-disk
    content-addressed cache; ``no_cache`` bypasses reads (results are
    still written so the next run is warm).  ``memo`` controls the
    in-process payload memo.  ``timeout_s`` bounds each run; ``retries``
    bounds pool-crash retries before the serial fallback.
    """

    jobs: int = 1
    cache_dir: Optional[Path] = None
    no_cache: bool = False
    memo: bool = True
    timeout_s: Optional[float] = None
    retries: int = 2
    progress: Optional[ProgressHook] = None
    on_batch: Optional[BatchHook] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")


_ACTIVE = RunnerConfig()


def active_config() -> RunnerConfig:
    """The configuration :func:`repro.runner.run_batch` defaults to."""
    return _ACTIVE


def configure(**overrides: Any) -> RunnerConfig:
    """Replace fields of the active configuration; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    if "cache_dir" in overrides and overrides["cache_dir"] is not None:
        overrides["cache_dir"] = _as_path(overrides["cache_dir"])
    _ACTIVE = dataclasses.replace(_ACTIVE, **overrides)
    return previous


def _as_path(value: Union[str, Path]) -> Path:
    return Path(value).expanduser()


@contextlib.contextmanager
def runner_context(**overrides: Any) -> Iterator[RunnerConfig]:
    """Scoped :func:`configure`: restores the previous config on exit."""
    global _ACTIVE
    previous = configure(**overrides)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
