"""The runner job model: specs, results, canonical JSON.

A :class:`RunSpec` names one independent seeded simulation run: a *task*
(an importable ``"module:function"`` entry point), the per-run ``seed``,
a JSON-able ``config`` mapping (the task's keyword arguments), and the
*code fingerprint* of the ``repro`` package sources.  The spec's
:attr:`~RunSpec.key` is a SHA-256 over all four, so it is stable across
processes and machines and changes whenever the code or any input does —
the property the content-addressed cache rests on.

Payloads travel as *canonical JSON* (sorted keys, compact separators):
two equal payloads always serialize to the same bytes, so digests and
cache entries are byte-stable regardless of which worker produced them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, List, Mapping, Optional, Tuple

from repro.obs.export import EMPTY_METRICS_JSON, merge_metrics_json
from repro.obs.registry import MetricsRegistry


def _canonical_default(obj: Any) -> Any:
    """JSON fallback for the numpy scalar/array types tasks tend to leak."""
    # Local import keeps the job model importable without numpy at the
    # spec/key layer (workers that never touch arrays don't pay for it).
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj)!r}")


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to byte-stable canonical JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_canonical_default)


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One independent seeded run, identified by a content-addressed key.

    ``config_json`` is the canonical-JSON form of the task's keyword
    arguments; use :meth:`build` rather than the raw constructor so the
    canonicalization (and therefore the key) is always consistent.
    """

    task: str
    seed: int
    config_json: str
    fingerprint: str

    @classmethod
    def build(cls, task: str, seed: int,
              config: Optional[Mapping[str, Any]] = None,
              fingerprint: Optional[str] = None) -> "RunSpec":
        """Construct a spec, canonicalizing ``config`` and defaulting the
        fingerprint to the current :func:`~repro.runner.fingerprint.code_fingerprint`."""
        if ":" not in task:
            raise ValueError(
                f"task {task!r} is not a 'module:function' entry point")
        if fingerprint is None:
            from repro.runner.fingerprint import code_fingerprint
            fingerprint = code_fingerprint()
        return cls(task=task, seed=int(seed),
                   config_json=canonical_json(dict(config or {})),
                   fingerprint=fingerprint)

    @property
    def config(self) -> Mapping[str, Any]:
        """The task keyword arguments (a fresh dict on every access)."""
        loaded: Mapping[str, Any] = json.loads(self.config_json)
        return loaded

    @property
    def key(self) -> str:
        """The content-addressed cache key (hex SHA-256)."""
        record = (f"{self.task}\n{self.seed}\n{self.config_json}\n"
                  f"{self.fingerprint}")
        return hashlib.sha256(record.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class RunResult:
    """The outcome of one spec: the parsed payload plus provenance."""

    spec: RunSpec
    payload_json: str
    wall_time_s: float
    cached: bool = False
    attempts: int = 1
    worker: str = "serial"
    #: canonical-JSON export of the run's metrics registry.  Cached runs
    #: replay the original run's metrics verbatim, so the blob (and
    #: therefore the batch digest) is identical whether the run executed
    #: or hit.
    metrics_json: str = EMPTY_METRICS_JSON
    #: wall seconds the cache lookup itself took, for hits only.  Kept
    #: separate from ``wall_time_s`` (the original simulation time is
    #: *not* replayed — a hit did no simulating) and never cached.
    hit_wall_time_s: float = 0.0

    @property
    def payload(self) -> Any:
        """The task's return value (a fresh parse on every access, so
        callers can never mutate a cached copy in place)."""
        return json.loads(self.payload_json)

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics (a fresh registry on every access)."""
        return merge_metrics_json([self.metrics_json])


def batch_digest(results: Tuple[RunResult, ...]) -> str:
    """SHA-256 of the merged, seed-ordered result sequence.

    The digest folds in ``(spec key, payload, metrics)`` triples *in
    spec order*, so it is identical for serial, parallel and warm-cache
    executions of the same batch — the determinism contract the
    sanitizer asserts.  Folding the metrics blob means nondeterministic
    *instrumentation* (a wall-clock read, hash-ordered labels) breaks
    the digest just as loudly as a nondeterministic payload.
    """
    digest = hashlib.sha256()
    for result in results:
        digest.update(result.spec.key.encode("ascii"))
        digest.update(b"|")
        digest.update(result.payload_json.encode("utf-8"))
        digest.update(b"|")
        digest.update(result.metrics_json.encode("utf-8"))
        digest.update(b"\n")
    return f"{digest.hexdigest()}#{len(results)}"


@dataclasses.dataclass
class BatchResult:
    """Everything one batch produced, in spec order."""

    results: Tuple[RunResult, ...]
    digest: str
    stats: "BatchStats"

    @property
    def payloads(self) -> List[Any]:
        return [result.payload for result in self.results]

    def merged_metrics(self) -> MetricsRegistry:
        """All runs' metrics merged **in spec order** — the only order
        that keeps the merged export byte-identical across execution
        modes (counters are commutative, gauge last-write is not)."""
        return merge_metrics_json(
            [result.metrics_json for result in self.results])


@dataclasses.dataclass
class BatchStats:
    """Batch telemetry surfaced by the CLI and progress hooks."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    retries: int = 0
    jobs: int = 1
    pool_used: bool = False
    wall_time_s: float = 0.0
    run_wall_times_s: List[float] = dataclasses.field(default_factory=list)
    #: cache-lookup latencies for the hits (telemetry; see
    #: ``RunResult.hit_wall_time_s``)
    hit_wall_times_s: List[float] = dataclasses.field(default_factory=list)

    @property
    def simulated_runs(self) -> int:
        """Runs that actually executed a simulation (cache misses)."""
        return self.executed

    def summary(self) -> str:
        """One-line rendering for status footers."""
        mode = f"{self.jobs} worker(s)" if self.pool_used else "serial"
        return (f"{self.total} run(s), {self.executed} executed, "
                f"{self.cache_hits + self.memo_hits} cache hit(s), {mode}")
