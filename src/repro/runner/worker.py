"""Worker-side execution of one spec.

This module is the *only* code a pool worker runs: resolve the task
entry point, call it with ``(seed, **config)``, canonicalize the payload.
It is deliberately tiny and free of pool state so the same function
serves the in-process serial path — serial and parallel execution are
the same computation by construction.

Worker code draws randomness exclusively through the task's own
:mod:`repro.sim.random` streams (seeded from the spec), never from
module-level ``random``/``numpy.random`` — reprolint's DET001/DET004
enforce this statically.
"""

from __future__ import annotations

import importlib
import json
import time
from typing import Any, Callable, Tuple

from repro.obs.export import to_canonical_json
from repro.obs.runtime import collecting
from repro.runner.spec import canonical_json


class TaskResolutionError(RuntimeError):
    """The spec's task string did not resolve to a callable."""


def resolve_task(entry: str) -> Callable[..., Any]:
    """Import ``"module:function"`` and return the callable."""
    module_name, sep, func_name = entry.partition(":")
    if not sep or not module_name or not func_name:
        raise TaskResolutionError(
            f"task {entry!r} is not a 'module:function' entry point")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise TaskResolutionError(f"cannot import {module_name!r}: {exc}") \
            from exc
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise TaskResolutionError(
            f"{module_name!r} has no callable {func_name!r}")
    return fn


def execute_spec(task: str, config_json: str,
                 seed: int) -> Tuple[str, str, float]:
    """Run one spec; returns ``(payload JSON, metrics JSON, wall s)``.

    The task runs inside a fresh :func:`repro.obs.runtime.collecting`
    scope, so every instrumented component it touches reports into a
    per-run registry; the registry's canonical-JSON export travels with
    the payload (and into the cache), keeping the metrics as
    reproducible as the results themselves.

    The wall time is telemetry only (per-run progress lines); it never
    feeds back into simulated behaviour, hence the sanctioned clock read.
    """
    fn = resolve_task(task)
    config = json.loads(config_json)
    start = time.perf_counter()   # reprolint: disable=DET002
    with collecting() as registry:
        payload = fn(seed, **config)
    elapsed = time.perf_counter() - start   # reprolint: disable=DET002
    return canonical_json(payload), to_canonical_json(registry), elapsed
