"""Content-addressed result caching.

Two layers:

* :class:`ResultCache` — the on-disk store.  One JSON file per spec key
  under ``<root>/<key[:2]>/<key>.json``; writes go through a temp file in
  the same directory and an atomic ``os.replace`` so concurrent writers
  (two ``--jobs`` invocations racing on the same artifact) can never
  leave a torn entry — the last complete write wins and both are valid.
  Anything unreadable (truncated JSON, schema drift, a key mismatch from
  a hand-edited file) is treated as a miss: the entry is deleted and the
  run recomputed.
* an in-process memo — spec key -> canonical payload JSON.  This is what
  lets ``python -m repro all`` share one wild dataset across Figures
  2a/2b/2c/4/5 the way the old ``lru_cache`` did, without any disk
  configuration.  Payloads are stored as JSON text and re-parsed on every
  hit, so callers can never mutate the cached copy.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.runner.spec import RunSpec, canonical_json

#: cache entry schema version (bump to invalidate the whole store).
#: v2: entries carry the run's metrics blob and no longer embed
#: ``wall_time_s`` — a wall-clock field made two runs of the same spec
#: produce different cache bytes, and replaying it as a hit's "wall
#: time" misreported hits as costing the original simulation time.
CACHE_VERSION = 2

_TEMP_COUNTER = itertools.count()

#: process-local memo: spec key -> (payload JSON, metrics JSON)
_MEMO: Dict[str, Tuple[str, str]] = {}


def memo_get(key: str) -> Optional[Tuple[str, str]]:
    return _MEMO.get(key)


def memo_put(key: str, payload_json: str, metrics_json: str) -> None:
    _MEMO[key] = (payload_json, metrics_json)


def clear_memo() -> None:
    """Drop the in-process memo (tests; long-lived servers)."""
    _MEMO.clear()


class ResultCache:
    """The on-disk content-addressed store."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where an entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[Tuple[str, str]]:
        """``(payload JSON, metrics JSON)`` for ``spec``, or ``None``.

        A corrupted or mismatched entry is deleted and reported as a
        miss so the run is recomputed and the entry rewritten.
        """
        path = self.path_for(spec.key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
            if (not isinstance(entry, dict)
                    or entry.get("version") != CACHE_VERSION
                    or entry.get("key") != spec.key
                    or "payload" not in entry
                    or "metrics" not in entry):
                raise ValueError("cache entry schema mismatch")
            payload_json = canonical_json(entry["payload"])
            metrics_json = canonical_json(entry["metrics"])
        except (ValueError, TypeError):
            # Any parse/shape failure means the entry is corrupt; the
            # recovery is to delete it and recompute the run.
            self._discard(path)
            return None
        return payload_json, metrics_json

    def put(self, spec: RunSpec, payload_json: str,
            metrics_json: str) -> None:
        """Write an entry atomically (temp file + ``os.replace``).

        The entry is a pure function of the spec and the run's outputs —
        no wall-clock or host-specific fields — so two machines
        computing the same spec write byte-identical cache files.
        """
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "key": spec.key,
            "task": spec.task,
            "seed": spec.seed,
            "config": json.loads(spec.config_json),
            "fingerprint": spec.fingerprint,
            "metrics": json.loads(metrics_json),
            "payload": json.loads(payload_json),
        }
        # Unique-per-writer temp name: concurrent writers never share a
        # temp file, and os.replace makes the publish atomic on POSIX.
        temp = path.parent / (
            f".{spec.key}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp")
        temp.write_text(canonical_json(entry), encoding="utf-8")
        os.replace(temp, path)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
