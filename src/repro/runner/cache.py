"""Content-addressed result caching.

Two layers:

* :class:`ResultCache` — the on-disk store.  One JSON file per spec key
  under ``<root>/<key[:2]>/<key>.json``; writes go through a temp file in
  the same directory and an atomic ``os.replace`` so concurrent writers
  (two ``--jobs`` invocations racing on the same artifact) can never
  leave a torn entry — the last complete write wins and both are valid.
  Anything unreadable (truncated JSON, schema drift, a key mismatch from
  a hand-edited file) is treated as a miss: the entry is deleted and the
  run recomputed.  :meth:`ResultCache.prune` bounds the store's total
  size by unlinking least-recently-used entries; every hit refreshes the
  entry's timestamps explicitly, so the LRU order survives ``noatime``
  and ``relatime`` mounts.
* an in-process memo — spec key -> canonical payload JSON.  This is what
  lets ``python -m repro all`` share one wild dataset across Figures
  2a/2b/2c/4/5 the way the old ``lru_cache`` did, without any disk
  configuration.  Payloads are stored as JSON text and re-parsed on every
  hit, so callers can never mutate the cached copy.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.runner.spec import RunSpec, canonical_json

#: cache entry schema version (bump to invalidate the whole store).
#: v2: entries carry the run's metrics blob and no longer embed
#: ``wall_time_s`` — a wall-clock field made two runs of the same spec
#: produce different cache bytes, and replaying it as a hit's "wall
#: time" misreported hits as costing the original simulation time.
CACHE_VERSION = 2

_TEMP_COUNTER = itertools.count()

#: process-local memo: spec key -> (payload JSON, metrics JSON)
_MEMO: Dict[str, Tuple[str, str]] = {}


def memo_get(key: str) -> Optional[Tuple[str, str]]:
    return _MEMO.get(key)


def memo_put(key: str, payload_json: str, metrics_json: str) -> None:
    _MEMO[key] = (payload_json, metrics_json)


def clear_memo() -> None:
    """Drop the in-process memo (tests; long-lived servers)."""
    _MEMO.clear()


class ResultCache:
    """The on-disk content-addressed store."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where an entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[Tuple[str, str]]:
        """``(payload JSON, metrics JSON)`` for ``spec``, or ``None``.

        A corrupted or mismatched entry is deleted and reported as a
        miss so the run is recomputed and the entry rewritten.
        """
        path = self.path_for(spec.key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
            if (not isinstance(entry, dict)
                    or entry.get("version") != CACHE_VERSION
                    or entry.get("key") != spec.key
                    or "payload" not in entry
                    or "metrics" not in entry):
                raise ValueError("cache entry schema mismatch")
            payload_json = canonical_json(entry["payload"])
            metrics_json = canonical_json(entry["metrics"])
        except (ValueError, TypeError):
            # Any parse/shape failure means the entry is corrupt; the
            # recovery is to delete it and recompute the run.
            self._discard(path)
            return None
        self._touch(path)
        return payload_json, metrics_json

    def put(self, spec: RunSpec, payload_json: str,
            metrics_json: str) -> None:
        """Write an entry atomically (temp file + ``os.replace``).

        The entry is a pure function of the spec and the run's outputs —
        no wall-clock or host-specific fields — so two machines
        computing the same spec write byte-identical cache files.
        """
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "key": spec.key,
            "task": spec.task,
            "seed": spec.seed,
            "config": json.loads(spec.config_json),
            "fingerprint": spec.fingerprint,
            "metrics": json.loads(metrics_json),
            "payload": json.loads(payload_json),
        }
        # Unique-per-writer temp name: concurrent writers never share a
        # temp file, and os.replace makes the publish atomic on POSIX.
        temp = path.parent / (
            f".{spec.key}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp")
        temp.write_text(canonical_json(entry), encoding="utf-8")
        os.replace(temp, path)

    def entries(self) -> Iterator[Path]:
        """Every entry file currently in the store (racy by nature)."""
        return self.root.glob("??/*.json")

    def size_bytes(self) -> int:
        """Total bytes of all readable entries right now."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing deleters
                continue
        return total

    def prune(self, max_bytes: int) -> int:
        """Unlink least-recently-used entries until the store fits in
        ``max_bytes``; returns the number of entries removed.

        Eviction order is oldest access first (atime, then mtime, then
        file name as a deterministic tie-break).  Each eviction is a
        single atomic ``unlink``, so a concurrent reader either wins the
        race and parses a complete entry, or loses it and sees a plain
        cache miss — never a torn read.  Entries that vanish or resist
        deletion mid-prune (a racing pruner) are simply skipped.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        survey = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing deleters
                continue
            survey.append((stat.st_atime, stat.st_mtime, path.name,
                           path, stat.st_size))
            total += stat.st_size
        removed = 0
        for _, _, _, path, size in sorted(survey):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deleters
                continue
            total -= size
            removed += 1
        self._sweep_empty_shards()
        return removed

    def _sweep_empty_shards(self) -> None:
        """Drop fan-out directories emptied by pruning (best-effort:
        ``rmdir`` refuses non-empty directories, so a racing writer's
        shard survives)."""
        for shard in self.root.glob("??"):
            if not shard.is_dir():
                continue
            try:
                shard.rmdir()
            except OSError:
                pass

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's timestamps after a hit (LRU bookkeeping;
        losing the race to a pruner is just a future miss)."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - racing deleters
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
