"""Batch execution: serial, process-pool, and cached.

:func:`run_batch` takes an ordered sequence of
:class:`~repro.runner.spec.RunSpec` and returns one
:class:`~repro.runner.spec.RunResult` per spec **in spec order**,
regardless of which worker finished first, whether a result came from
the cache, or whether the pool crashed halfway through and the remainder
ran serially.  The merged order is what makes the batch digest — and
therefore every derived figure — identical across execution modes.

Execution strategy per batch:

1. every spec is looked up in the in-process memo and then the on-disk
   cache (unless ``no_cache``);
2. the misses run on a ``concurrent.futures`` process pool with the
   **spawn** start context when ``jobs > 1`` and more than one miss
   remains (fork would inherit sanitizer digests and any lazily created
   RNG state — reprolint DET004 bans it project-wide);
3. a crashed pool (``BrokenProcessPool``) is rebuilt and the unfinished
   specs resubmitted up to ``retries`` times, after which the remainder
   falls back to in-process serial execution — the batch always
   completes with the same results, just slower;
4. a run exceeding ``timeout_s`` aborts the batch with
   :class:`RunTimeoutError` (a stuck simulation is a bug, not a retry
   candidate — the same spec would stick again).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.export import from_canonical_json, to_canonical_json
from repro.runner import cache as cache_mod
from repro.runner.cache import ResultCache
from repro.runner.context import ProgressEvent, RunnerConfig, active_config
from repro.runner.spec import (
    BatchResult,
    BatchStats,
    RunResult,
    RunSpec,
    batch_digest,
    canonical_json,
)
from repro.runner.worker import execute_spec
from repro.sim.sanitize import SanitizerError, sanitizer_enabled


class RunnerError(RuntimeError):
    """Base class for batch execution failures."""


class RunTimeoutError(RunnerError):
    """A run exceeded the configured per-run timeout."""

    def __init__(self, spec: RunSpec, timeout_s: float):
        super().__init__(
            f"run {spec.task} seed={spec.seed} exceeded {timeout_s:.1f}s")
        self.spec = spec
        self.timeout_s = timeout_s


class MergeOrderError(SanitizerError):
    """The merged results do not line up with the submitted specs."""


def run_batch(specs: Sequence[RunSpec],
              config: Optional[RunnerConfig] = None) -> BatchResult:
    """Execute ``specs`` and return results merged in spec order."""
    if config is None:
        config = active_config()
    sanitize = sanitizer_enabled()
    stats = BatchStats(total=len(specs), jobs=config.jobs)
    # Batch wall time is telemetry only (progress lines, CLI footer); it
    # never feeds back into simulated behaviour.
    batch_start = time.perf_counter()   # reprolint: disable=DET002

    disk: Optional[ResultCache] = None
    if config.cache_dir is not None:
        disk = ResultCache(config.cache_dir)

    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec]] = []
    for index, spec in enumerate(specs):
        hit = _lookup(spec, config, disk, stats)
        if hit is not None:
            results[index] = hit
            _emit_progress(config, stats, hit,
                           completed=sum(r is not None for r in results))
        else:
            pending.append((index, spec))

    if pending:
        use_pool = config.jobs > 1 and len(pending) > 1
        if use_pool:
            pending = _run_pool(pending, results, config, disk, stats)
        # Serial path: everything left over (jobs=1, a single miss, or
        # the pool gave up after bounded retries).
        for index, spec in pending:
            payload_json, metrics_json, wall = execute_spec(
                spec.task, spec.config_json, spec.seed)
            result = RunResult(spec=spec, payload_json=payload_json,
                               wall_time_s=wall, worker="serial",
                               metrics_json=metrics_json)
            _record(index, result, results, config, disk, stats)

    merged = _merge(specs, results, sanitize)
    stats.wall_time_s = time.perf_counter() - batch_start   # reprolint: disable=DET002
    batch = BatchResult(results=merged, digest=batch_digest(merged),
                        stats=stats)
    if config.on_batch is not None:
        config.on_batch(batch)
    return batch


def map_configs(task: str,
                items: Sequence[Tuple[int, Mapping[str, Any]]],
                config: Optional[RunnerConfig] = None) -> List[Any]:
    """Run ``task`` once per ``(seed, task_config)`` item; payloads in
    item order."""
    specs = [RunSpec.build(task, seed, task_config)
             for seed, task_config in items]
    return run_batch(specs, config=config).payloads


def map_task(task: str, seeds: Iterable[int],
             task_config: Optional[Mapping[str, Any]] = None,
             config: Optional[RunnerConfig] = None) -> List[Any]:
    """Run ``task`` once per seed with a shared config; payloads in seed
    order.  This is the API the experiment drivers are built on."""
    shared: Mapping[str, Any] = dict(task_config or {})
    return map_configs(task, [(seed, shared) for seed in seeds],
                       config=config)


# ------------------------------------------------------------------ internal

def _lookup(spec: RunSpec, config: RunnerConfig,
            disk: Optional[ResultCache],
            stats: BatchStats) -> Optional[RunResult]:
    if config.no_cache:
        return None
    if config.memo:
        memoized = cache_mod.memo_get(spec.key)
        if memoized is not None:
            stats.memo_hits += 1
            payload_json, metrics_json = memoized
            return RunResult(spec=spec, payload_json=payload_json,
                             wall_time_s=0.0, cached=True, worker="memo",
                             metrics_json=metrics_json)
    if disk is not None:
        # Hit latency is reported on its own field: a hit's wall_time_s
        # stays 0.0 because no simulation ran (replaying the original
        # run's elapsed time — or charging the lookup to it — would
        # corrupt the executed-run timing statistics).
        lookup_start = time.perf_counter()   # reprolint: disable=DET002
        hit = disk.get(spec)
        lookup_s = time.perf_counter() - lookup_start   # reprolint: disable=DET002
        if hit is not None:
            stats.cache_hits += 1
            stats.hit_wall_times_s.append(lookup_s)
            payload_json, metrics_json = hit
            if config.memo:
                cache_mod.memo_put(spec.key, payload_json, metrics_json)
            return RunResult(spec=spec, payload_json=payload_json,
                             wall_time_s=0.0, cached=True, worker="disk",
                             metrics_json=metrics_json,
                             hit_wall_time_s=lookup_s)
    return None


def _record(index: int, result: RunResult,
            results: List[Optional[RunResult]], config: RunnerConfig,
            disk: Optional[ResultCache], stats: BatchStats) -> None:
    results[index] = result
    stats.executed += 1
    stats.run_wall_times_s.append(result.wall_time_s)
    if config.memo:
        cache_mod.memo_put(result.spec.key, result.payload_json,
                           result.metrics_json)
    if disk is not None:
        disk.put(result.spec, result.payload_json, result.metrics_json)
    _emit_progress(config, stats, result,
                   completed=sum(r is not None for r in results))


def _emit_progress(config: RunnerConfig, stats: BatchStats,
                   result: RunResult, completed: int) -> None:
    if config.progress is None:
        return
    config.progress(ProgressEvent(
        task=result.spec.task, seed=result.spec.seed, key=result.spec.key,
        cached=result.cached, wall_time_s=result.wall_time_s,
        completed=completed, total=stats.total,
        cache_hits=stats.cache_hits + stats.memo_hits))


def _run_pool(pending: List[Tuple[int, RunSpec]],
              results: List[Optional[RunResult]],
              config: RunnerConfig, disk: Optional[ResultCache],
              stats: BatchStats) -> List[Tuple[int, RunSpec]]:
    """Execute ``pending`` on a spawn pool.

    Returns the specs that still need the serial fallback (empty on the
    happy path).  Pool crashes are retried up to ``config.retries``
    times; pool *creation* failures (sandboxed platforms without working
    multiprocessing) fall back immediately.
    """
    import multiprocessing

    remaining = list(pending)
    attempt = 0
    while remaining:
        try:
            context = multiprocessing.get_context("spawn")
            pool = ProcessPoolExecutor(
                max_workers=min(config.jobs, len(remaining)),
                mp_context=context)
        except (OSError, ValueError):
            return remaining   # pool unavailable: serial fallback
        stats.pool_used = True
        futures: Dict[int, "Future[Tuple[str, str, float]]"] = {}
        try:
            for index, spec in remaining:
                futures[index] = pool.submit(
                    execute_spec, spec.task, spec.config_json, spec.seed)
            for index, spec in list(remaining):
                try:
                    payload_json, metrics_json, wall = futures[index].result(
                        timeout=config.timeout_s)
                except FutureTimeoutError:
                    _abandon(pool, futures)
                    assert config.timeout_s is not None
                    raise RunTimeoutError(spec, config.timeout_s) from None
                result = RunResult(
                    spec=spec, payload_json=payload_json, wall_time_s=wall,
                    attempts=attempt + 1, worker="pool",
                    metrics_json=metrics_json)
                _record(index, result, results, config, disk, stats)
                remaining.remove((index, spec))
        except BrokenProcessPool:
            attempt += 1
            stats.retries += 1
            if attempt > config.retries:
                return remaining   # bounded retries exhausted: go serial
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    return []


def _abandon(pool: ProcessPoolExecutor,
             futures: Dict[int, "Future[Tuple[str, str, float]]"]) -> None:
    for future in futures.values():
        future.cancel()
    pool.shutdown(wait=False, cancel_futures=True)


def _merge(specs: Sequence[RunSpec],
           results: Sequence[Optional[RunResult]],
           sanitize: bool) -> Tuple[RunResult, ...]:
    """Assemble results in spec order, asserting the determinism
    contract under ``REPRO_SANITIZE=1``."""
    merged: List[RunResult] = []
    for index, (spec, result) in enumerate(zip(specs, results)):
        if result is None:   # pragma: no cover - internal invariant
            raise MergeOrderError(f"spec #{index} produced no result")
        if sanitize:
            if result.spec.key != spec.key:
                raise MergeOrderError(
                    f"result #{index} carries key {result.spec.key[:12]}… "
                    f"but spec #{index} expects {spec.key[:12]}…; the "
                    "merge lost seed order")
            round_trip = canonical_json(result.payload)
            if round_trip != result.payload_json:
                raise MergeOrderError(
                    f"payload for {spec.task} seed={spec.seed} is not "
                    "canonical-JSON stable; digests would differ between "
                    "fresh and cached executions")
            metrics_round_trip = to_canonical_json(
                from_canonical_json(result.metrics_json))
            if metrics_round_trip != result.metrics_json:
                raise MergeOrderError(
                    f"metrics for {spec.task} seed={spec.seed} are not "
                    "canonical-JSON stable; exported metrics would "
                    "differ between fresh and cached executions")
        merged.append(result)
    return tuple(merged)
