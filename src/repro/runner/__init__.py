"""Parallel experiment execution with a content-addressed result cache.

The paper's artifacts are batches of *independent seeded simulation
runs* — exactly the embarrassing parallelism DiversiFi itself exploits
across links.  This package executes such batches:

* :class:`~repro.runner.spec.RunSpec` / :class:`~repro.runner.spec.RunResult`
  — the job model.  A spec's key is a SHA-256 of (task entry point,
  config, seed, code fingerprint), so results are content-addressed and
  a source change invalidates every stale entry automatically.
* :func:`~repro.runner.executor.run_batch` /
  :func:`~repro.runner.executor.map_task` — execution.  Serial in
  process by default; a spawn-context process pool when the active
  :class:`~repro.runner.context.RunnerConfig` asks for ``jobs > 1``,
  with bounded retry of crashed pools and graceful serial fallback.
* :class:`~repro.runner.cache.ResultCache` — the on-disk store
  (atomic-rename writes, corruption treated as a miss).
* :func:`~repro.runner.context.runner_context` — how the CLI's
  ``--jobs/--cache-dir/--no-cache`` flags reach the drivers.

Determinism contract: results are merged in spec (seed) order and the
batch digest is computed over that merged sequence, so serial, parallel
and warm-cache executions of the same batch produce identical digests —
asserted under ``REPRO_SANITIZE=1``.
"""

from repro.runner.cache import ResultCache, clear_memo
from repro.runner.context import (
    ProgressEvent,
    RunnerConfig,
    active_config,
    configure,
    runner_context,
)
from repro.runner.executor import (
    MergeOrderError,
    RunnerError,
    RunTimeoutError,
    map_configs,
    map_task,
    run_batch,
)
from repro.runner.fingerprint import code_fingerprint
from repro.runner.spec import (
    BatchResult,
    BatchStats,
    RunResult,
    RunSpec,
    batch_digest,
    canonical_json,
)

__all__ = [
    "BatchResult",
    "BatchStats",
    "MergeOrderError",
    "ProgressEvent",
    "ResultCache",
    "RunnerConfig",
    "RunnerError",
    "RunResult",
    "RunSpec",
    "RunTimeoutError",
    "active_config",
    "batch_digest",
    "canonical_json",
    "clear_memo",
    "code_fingerprint",
    "configure",
    "map_configs",
    "map_task",
    "run_batch",
    "runner_context",
]
