"""Code fingerprinting for cache invalidation.

The fingerprint is a SHA-256 over every ``.py`` file under the installed
``repro`` package (relative path + contents, sorted), so *any* source
change — a calibration constant, a strategy tweak, a scheduler fix —
produces a different fingerprint and therefore different cache keys.
Stale results can never be served for new code.

The walk costs a few milliseconds and is cached per process; workers
never recompute it because the parent embeds the fingerprint in each
:class:`~repro.runner.spec.RunSpec`.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path
from typing import Optional


def _package_root() -> Path:
    import repro
    module_file = repro.__file__
    if module_file is None:  # pragma: no cover - namespace-package guard
        raise RuntimeError("repro package has no __file__; cannot fingerprint")
    return Path(module_file).resolve().parent


@lru_cache(maxsize=4)
def _fingerprint_of(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        digest.update(relative.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def code_fingerprint(root: Optional[Path] = None) -> str:
    """Fingerprint of the ``repro`` sources (or any directory tree)."""
    return _fingerprint_of((root or _package_root()).resolve())
