"""Cloud-gaming stream model: frames, packetization, stall metrics.

The paper's introduction motivates DiversiFi with cloud gaming (OnLive,
PlayStation Now) alongside VoIP: interactive games need round trips
under ~100 ms [25], and a rendered frame is only useful if *all* of its
packets arrive before its display deadline.

This module models the downlink video of such a service:

* 60 fps frames; periodic large I-frames and smaller P-frames (sizes
  drawn lognormal around configurable means);
* frames packetized into MTU-sized packets at a paced spacing;
* frame-level scoring of a packet-level :class:`LinkTrace`: a frame
  renders iff every one of its packets arrived within the frame
  deadline; consecutive failed frames form a *stall*.

The packet grid this produces is compatible with the stream-profile
machinery, so the Section 4 strategies apply unchanged and the results
can be read in the currency gamers care about: stalls per minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.packet import LinkTrace


@dataclass(frozen=True)
class GameStreamProfile:
    """A cloud-gaming video stream."""

    fps: float = 60.0
    duration_s: float = 60.0
    #: group-of-pictures length: one I-frame every ``gop`` frames
    gop: int = 30
    mean_p_frame_bytes: int = 8_000     # ~4 Mbps at 60 fps
    mean_i_frame_bytes: int = 40_000
    mtu_bytes: int = 1200
    #: a frame must be complete this long after its capture instant
    frame_deadline_s: float = 0.050

    @property
    def n_frames(self) -> int:
        return int(round(self.duration_s * self.fps))

    @property
    def frame_interval_s(self) -> float:
        return 1.0 / self.fps


@dataclass
class PacketizedGameStream:
    """The packet schedule of one game-stream realization."""

    profile: GameStreamProfile
    #: per-packet send times
    send_times: np.ndarray
    #: per-packet owning frame index
    frame_of_packet: np.ndarray
    #: per-frame capture instants
    frame_times: np.ndarray

    @property
    def n_packets(self) -> int:
        return int(self.send_times.size)

    @property
    def bitrate_bps(self) -> float:
        return (self.n_packets * self.profile.mtu_bytes * 8
                / self.profile.duration_s)


def packetize_game_stream(profile: GameStreamProfile,
                          rng: np.random.Generator
                          ) -> PacketizedGameStream:
    """Draw frame sizes and lay the packets on the wire.

    Packets of a frame are paced evenly across the frame interval
    (sender-side pacing, standard for game streaming to avoid bursts).
    """
    send_times: List[float] = []
    frame_of_packet: List[int] = []
    frame_times = np.arange(profile.n_frames) * profile.frame_interval_s
    for f in range(profile.n_frames):
        is_iframe = (f % profile.gop) == 0
        mean = (profile.mean_i_frame_bytes if is_iframe
                else profile.mean_p_frame_bytes)
        size = max(int(rng.lognormal(np.log(mean), 0.25)), 200)
        n_packets = max((size + profile.mtu_bytes - 1)
                        // profile.mtu_bytes, 1)
        pacing = profile.frame_interval_s / (n_packets + 1)
        for p in range(n_packets):
            send_times.append(float(frame_times[f]) + (p + 1) * pacing)
            frame_of_packet.append(f)
    return PacketizedGameStream(
        profile=profile,
        send_times=np.asarray(send_times),
        frame_of_packet=np.asarray(frame_of_packet, dtype=int),
        frame_times=frame_times)


@dataclass
class GameSessionScore:
    """Frame-level outcome of one game session."""

    n_frames: int
    failed_frames: int
    stalls: List[int]            # lengths (in frames) of stall runs
    duration_s: float

    @property
    def frame_failure_rate(self) -> float:
        if self.n_frames == 0:
            return 0.0
        return self.failed_frames / self.n_frames

    @property
    def stalls_per_minute(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.stalls) / (self.duration_s / 60.0)

    @property
    def longest_stall_ms(self) -> float:
        if not self.stalls:
            return 0.0
        return max(self.stalls) * 1000.0 / 60.0


def score_game_session(stream: PacketizedGameStream,
                       trace: LinkTrace) -> GameSessionScore:
    """Score a packet trace at frame granularity.

    ``trace`` must cover the stream's packets (same ordering).  A frame
    fails if any of its packets is lost or arrives after the frame
    deadline; >= 2 consecutive failed frames form a stall.
    """
    if len(trace) != stream.n_packets:
        raise ValueError("trace does not match the packet schedule")
    profile = stream.profile
    deadlines = (stream.frame_times[stream.frame_of_packet]
                 + profile.frame_deadline_s)
    arrivals = trace.arrival_times
    on_time = trace.delivered & (arrivals <= deadlines + 1e-12)

    frame_ok = np.ones(profile.n_frames, dtype=bool)
    bad_frames = np.unique(stream.frame_of_packet[~on_time])
    frame_ok[bad_frames] = False

    stalls: List[int] = []
    run = 0
    for ok in frame_ok:
        if not ok:
            run += 1
        else:
            if run >= 2:
                stalls.append(run)
            run = 0
    if run >= 2:
        stalls.append(run)
    return GameSessionScore(
        n_frames=profile.n_frames,
        failed_frames=int((~frame_ok).sum()),
        stalls=stalls,
        duration_s=profile.duration_s)


def transmit_game_stream(stream: PacketizedGameStream, link) -> LinkTrace:
    """Send the packet schedule over one link, in time order."""
    n = stream.n_packets
    delivered = np.zeros(n, dtype=bool)
    delays = np.full(n, np.nan)
    for i in range(n):
        record = link.transmit(i, float(stream.send_times[i]),
                               stream.profile.mtu_bytes)
        delivered[i] = record.delivered
        if record.delivered:
            delays[i] = record.delay
    return LinkTrace(getattr(link, "name", "game"), stream.send_times,
                     delivered, delays)
