"""RTP header handling and payload-type profiles.

DiversiFi's initialization (Section 5.2.1) learns the stream rate, packet
size and deadlines *without application changes* by reading the RTP payload
type and looking up the static profile table of RFC 3551.  This module
implements the header fields the system needs, real serialization included
(so tests can round-trip bytes), and the profile lookup that yields a
:class:`~repro.core.config.StreamProfile`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.config import StreamProfile

_RTP_VERSION = 2
_HEADER_FMT = "!BBHII"  # V/P/X/CC, M/PT, seq, timestamp, SSRC
HEADER_BYTES = struct.calcsize(_HEADER_FMT)


@dataclass(frozen=True)
class RtpHeader:
    """The fixed 12-byte RTP header (RFC 3550), no CSRC list."""

    payload_type: int
    sequence_number: int
    timestamp: int
    ssrc: int
    marker: bool = False

    def pack(self) -> bytes:
        """Serialize to wire format."""
        if not 0 <= self.payload_type <= 127:
            raise ValueError("payload type must fit in 7 bits")
        if not 0 <= self.sequence_number <= 0xFFFF:
            raise ValueError("sequence number must fit in 16 bits")
        byte0 = _RTP_VERSION << 6
        byte1 = (int(self.marker) << 7) | self.payload_type
        return struct.pack(_HEADER_FMT, byte0, byte1,
                           self.sequence_number,
                           self.timestamp & 0xFFFFFFFF,
                           self.ssrc & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, data: bytes) -> "RtpHeader":
        """Parse the fixed header from wire format."""
        if len(data) < HEADER_BYTES:
            raise ValueError("short RTP header")
        byte0, byte1, seq, ts, ssrc = struct.unpack(
            _HEADER_FMT, data[:HEADER_BYTES])
        version = byte0 >> 6
        if version != _RTP_VERSION:
            raise ValueError(f"unsupported RTP version {version}")
        return cls(payload_type=byte1 & 0x7F,
                   sequence_number=seq, timestamp=ts, ssrc=ssrc,
                   marker=bool(byte1 >> 7))


#: RFC 3551 static audio payload types -> stream profiles.  Packet sizes
#: include the codec frame only (the paper's 160-byte G.711 payload).
RTP_PROFILES = {
    0: StreamProfile(name="PCMU/G711u", packet_size_bytes=160,
                     inter_packet_spacing_s=0.020),
    8: StreamProfile(name="PCMA/G711a", packet_size_bytes=160,
                     inter_packet_spacing_s=0.020),
    9: StreamProfile(name="G722", packet_size_bytes=160,
                     inter_packet_spacing_s=0.020),
    4: StreamProfile(name="G723", packet_size_bytes=24,
                     inter_packet_spacing_s=0.030),
    18: StreamProfile(name="G729", packet_size_bytes=20,
                      inter_packet_spacing_s=0.020),
}


def profile_for_payload_type(payload_type: int) -> StreamProfile:
    """The DiversiFi initialization lookup (Section 5.2.1)."""
    try:
        return RTP_PROFILES[payload_type]
    except KeyError:
        raise KeyError(
            f"no static RTP profile for payload type {payload_type}; "
            "dynamic types need out-of-band signalling") from None
