"""RTCP receiver reports (RFC 3550): the feedback channel.

DiversiFi's initialization reads RTP headers; its natural feedback path
for sender-side policies (source replication on/off, FEC adaptation) is
RTCP.  This module implements the receiver-side statistics exactly as
RFC 3550 defines them:

* cumulative packets lost and loss fraction since the last report;
* the interarrival **jitter** estimator
  ``J += (|D(i-1, i)| - J) / 16``;
* extended highest sequence number received.

Reports are emitted at the standard ~5 s interval (randomized ±50% per
the RFC to avoid synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ReceiverReport:
    """One RTCP RR block (the fields senders act on)."""

    timestamp: float
    fraction_lost: float        # since the previous report, 0..1
    cumulative_lost: int
    extended_highest_seq: int
    interarrival_jitter_s: float


class RtcpReceiver:
    """Tracks reception statistics and emits periodic receiver reports."""

    REPORT_INTERVAL_S = 5.0

    def __init__(self, sim: Simulator,
                 on_report: Optional[Callable[[ReceiverReport], None]]
                 = None,
                 rng: Optional[np.random.Generator] = None,
                 clock_rate_hz: int = 8000):
        self.sim = sim
        self.on_report = on_report
        self._rng = rng
        self.clock_rate_hz = clock_rate_hz
        self.reports: List[ReceiverReport] = []

        self._highest_seq = -1
        self._received = 0
        self._expected_prior = 0
        self._received_prior = 0
        self._jitter_s = 0.0
        self._last_transit: Optional[float] = None
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic report timer."""
        if self._started:
            raise RuntimeError("RTCP receiver already started")
        self._started = True
        self.sim.call_in(self._next_interval(), self._emit_report)

    def _next_interval(self) -> float:
        if self._rng is None:
            return self.REPORT_INTERVAL_S
        # RFC 3550: uniform on [0.5, 1.5] x the deterministic interval.
        return float(self._rng.uniform(0.5, 1.5)
                     * self.REPORT_INTERVAL_S)

    # ------------------------------------------------------------------

    def on_packet(self, seq: int, rtp_timestamp_s: float,
                  arrival_time: float) -> None:
        """Feed one received RTP packet into the statistics."""
        self._received += 1
        self._highest_seq = max(self._highest_seq, seq)
        transit = arrival_time - rtp_timestamp_s
        if self._last_transit is not None:
            d = abs(transit - self._last_transit)
            self._jitter_s += (d - self._jitter_s) / 16.0
        self._last_transit = transit

    @property
    def interarrival_jitter_s(self) -> float:
        return self._jitter_s

    def _emit_report(self) -> None:
        expected = self._highest_seq + 1
        expected_interval = expected - self._expected_prior
        received_interval = self._received - self._received_prior
        lost_interval = max(expected_interval - received_interval, 0)
        fraction = (lost_interval / expected_interval
                    if expected_interval > 0 else 0.0)
        report = ReceiverReport(
            timestamp=self.sim.now,
            fraction_lost=float(fraction),
            cumulative_lost=max(expected - self._received, 0),
            extended_highest_seq=self._highest_seq,
            interarrival_jitter_s=self._jitter_s)
        self.reports.append(report)
        self._expected_prior = expected
        self._received_prior = self._received
        if self.on_report is not None:
            self.on_report(report)
        self.sim.call_in(self._next_interval(), self._emit_report)
