"""The VoIP stream source: a G.711-like CBR sender.

Emits one packet per inter-packet spacing to each attached sink.  With two
sinks this is source replication (the paper's AP-mode deployment, where
the sender-side library duplicates the stream to the secondary link's IP
address); with one sink plus an SDN switch downstream it is the
middlebox-mode deployment.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.config import StreamProfile
from repro.core.packet import Packet
from repro.sim.engine import Simulator


class VoipSender:
    """CBR real-time sender on the event engine."""

    def __init__(self, sim: Simulator, profile: StreamProfile,
                 flow_id: str = "rt0", start_time: float = 0.0):
        self.sim = sim
        self.profile = profile
        self.flow_id = flow_id
        self.start_time = start_time
        self._sinks: List[Callable[[Packet], None]] = []
        self.sent = 0

    def attach(self, sink: Callable[[Packet], None],
               link: str = "") -> None:
        """Add a delivery target; each packet is copied to every sink."""
        self._sinks.append((sink, link))

    def start(self) -> None:
        """Schedule the whole stream."""
        if not self._sinks:
            raise RuntimeError("no sinks attached to VoipSender")
        spacing = self.profile.inter_packet_spacing_s
        for seq in range(self.profile.n_packets):
            self.sim.call_at(self.start_time + seq * spacing,
                             self._emit, seq)

    def _emit(self, seq: int) -> None:
        self.sent += 1
        for i, (sink, link) in enumerate(self._sinks):
            packet = Packet(
                seq=seq, send_time=self.sim.now,
                size_bytes=self.profile.packet_size_bytes,
                flow_id=self.flow_id, link=link, is_duplicate=(i > 0))
            sink(packet)
