"""A Reno-style TCP source: the competing iperf flow of Figure 10.

The model captures what matters for the coexistence experiment: an
ACK-clocked window protocol whose throughput tracks the availability of
the client's default (DEF) link.  When the DiversiFi NIC is off-channel
(switched to the secondary), the AP cannot deliver to the client, the ACK
clock stalls, and throughput dips — the effect the paper measures at an
average of 2.5%.

Mechanics implemented: slow start, congestion avoidance, fast retransmit
on 3 duplicate ACKs (with window halving), retransmission timeout with
window collapse, a finite tail-drop bottleneck queue at the AP, and
residual wireless loss.  Retransmission is go-back-N from the last
cumulative ACK, which is accurate enough at this queue depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Simulator


@dataclass
class TcpStats:
    """Outcome of one TCP run."""

    bytes_acked: int = 0
    segments_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    queue_drops: int = 0
    wireless_drops: int = 0
    duration_s: float = 0.0

    @property
    def throughput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_acked * 8.0 / self.duration_s

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6


class TcpReno:
    """A greedy Reno sender over the client's DEF WiFi link."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 capacity_bps: float = 4.6e6,
                 base_rtt_s: float = 0.020,
                 mss_bytes: int = 1460,
                 queue_limit: int = 64,
                 duration_s: float = 120.0,
                 radio_present=lambda: True,
                 wireless_loss_prob=0.002,
                 rto_s: float = 0.200):
        self.sim = sim
        self._rng = rng
        self.capacity_bps = capacity_bps
        self.base_rtt_s = base_rtt_s
        self.mss = mss_bytes
        self.queue_limit = queue_limit
        self.duration_s = duration_s
        self.radio_present = radio_present
        self.wireless_loss_prob = wireless_loss_prob
        self.rto_s = rto_s
        self.stats = TcpStats(duration_s=duration_s)

        self._cwnd = 2.0            # segments
        self._ssthresh = 64.0
        self._next_seq = 0          # next new segment to queue
        self._snd_una = 0           # lowest unacked
        self._dup_acks = 0
        self._queue: deque = deque()
        self._serving = False
        self._end_time = 0.0
        self._last_ack_time = 0.0
        self._rto_event = None
        self._started = False
        self._in_recovery_until = -1

    # ------------------------------------------------------------------

    @property
    def cwnd_segments(self) -> float:
        return self._cwnd

    def start(self, start_time: float = 0.0) -> None:
        if self._started:
            raise RuntimeError("TCP source already started")
        self._started = True
        self._end_time = start_time + self.duration_s
        self.sim.call_at(start_time, self._pump)
        self._arm_rto()

    # ------------------------------------------------------------------
    # sending

    def _in_flight(self) -> int:
        return self._next_seq - self._snd_una

    def _pump(self) -> None:
        """Queue new segments while the window allows."""
        if self.sim.now >= self._end_time:
            return
        while (self._in_flight() < int(self._cwnd)
               and len(self._queue) < self.queue_limit):
            self._queue.append(self._next_seq)
            self._next_seq += 1
            self.stats.segments_sent += 1
        if (self._in_flight() < int(self._cwnd)
                and len(self._queue) >= self.queue_limit):
            # Window wants more than the queue can hold: tail drop.  The
            # sender notices via dup-acks later; model by capping.
            self.stats.queue_drops += 1
        self._kick_service()

    def _kick_service(self) -> None:
        if not self._serving and self._queue:
            self._serving = True
            self.sim.call_in(0.0, self._serve)

    def _serve(self) -> None:
        if not self._queue:
            self._serving = False
            return
        if self.sim.now >= self._end_time:
            self._serving = False
            return
        if not self.radio_present():
            # Client off-channel: the AP holds the frame; poll again soon.
            self.sim.call_in(0.001, self._serve)
            return
        seq = self._queue.popleft()
        service_s = self.mss * 8.0 / self.capacity_bps
        self.sim.call_in(service_s, self._delivered, seq)
        self.sim.call_in(service_s, self._serve)

    def _loss_prob_now(self) -> float:
        if callable(self.wireless_loss_prob):
            return float(self.wireless_loss_prob())
        return float(self.wireless_loss_prob)

    def _delivered(self, seq: int) -> None:
        if self._rng.random() < self._loss_prob_now():
            self.stats.wireless_drops += 1
            return  # receiver never sees it; dup-acks will follow
        self.sim.call_in(self.base_rtt_s / 2.0, self._ack_arrives, seq)

    # ------------------------------------------------------------------
    # ACK processing

    def _ack_arrives(self, seq: int) -> None:
        self._last_ack_time = self.sim.now
        if seq < self._snd_una:
            return  # stale
        if seq == self._snd_una:
            cumulative_new = True
        else:
            # Out-of-order delivery relative to snd_una: receiver acks
            # cumulatively; a gap means duplicate ACKs.
            cumulative_new = False

        if cumulative_new:
            self._snd_una = seq + 1
            acked_bytes = self.mss
            self.stats.bytes_acked += acked_bytes
            self._dup_acks = 0
            if self._cwnd < self._ssthresh:
                self._cwnd += 1.0            # slow start
            else:
                self._cwnd += 1.0 / self._cwnd  # congestion avoidance
            self._arm_rto()
            self._pump()
        else:
            self._dup_acks += 1
            if (self._dup_acks >= 3
                    and self._snd_una > self._in_recovery_until):
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self.stats.retransmits += 1
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = self._ssthresh
        self._dup_acks = 0
        self._in_recovery_until = self._next_seq
        # Go-back-N: rewind and resend from the hole.
        self._next_seq = self._snd_una
        self._queue.clear()
        self._pump()

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.sim.now >= self._end_time:
            return
        self._rto_event = self.sim.call_in(self.rto_s, self._rto_fired)

    def _rto_fired(self) -> None:
        if self.sim.now >= self._end_time:
            return
        if self._in_flight() == 0 and not self._queue:
            # Idle (window fully acked): nothing to recover.
            self._pump()
            self._arm_rto()
            return
        self.stats.timeouts += 1
        self.stats.retransmits += 1
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = 2.0
        self._dup_acks = 0
        self._next_seq = self._snd_una
        self._queue.clear()
        self._pump()
        self._arm_rto()
