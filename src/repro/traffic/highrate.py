"""The high-bandwidth real-time source of Section 4.5.

A 5 Mbps stream of 1000-byte packets at 1.6 ms spacing — representative of
interactive video or cloud gaming.  Behaviour is identical to the VoIP
sender apart from the profile; kept as its own class so call sites say
what workload they run and so profile defaults stay with the workload.
"""

from __future__ import annotations

from repro.core.config import HIGH_RATE_PROFILE, StreamProfile
from repro.sim.engine import Simulator
from repro.traffic.voip import VoipSender


class HighRateSender(VoipSender):
    """5 Mbps interactive stream (video/gaming)."""

    def __init__(self, sim: Simulator,
                 profile: StreamProfile = HIGH_RATE_PROFILE,
                 flow_id: str = "hr0", start_time: float = 0.0):
        if profile.bitrate_bps < 1e6:
            raise ValueError(
                "HighRateSender expects a multi-Mbps profile; "
                f"got {profile.bitrate_bps / 1e6:.2f} Mbps")
        super().__init__(sim, profile, flow_id=flow_id,
                         start_time=start_time)
