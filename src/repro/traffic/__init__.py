"""Traffic substrate: RTP packetization, real-time stream sources, and the
Reno-style TCP source used as the competing flow in Figure 10."""

from repro.traffic.rtp import RTP_PROFILES, RtpHeader, profile_for_payload_type
from repro.traffic.rtcp import ReceiverReport, RtcpReceiver
from repro.traffic.voip import VoipSender
from repro.traffic.highrate import HighRateSender
from repro.traffic.gaming import (
    GameStreamProfile,
    packetize_game_stream,
    score_game_session,
    transmit_game_stream,
)
from repro.traffic.tcp import TcpReno, TcpStats

__all__ = [
    "GameStreamProfile",
    "HighRateSender",
    "RTP_PROFILES",
    "ReceiverReport",
    "RtcpReceiver",
    "RtpHeader",
    "TcpReno",
    "TcpStats",
    "VoipSender",
    "packetize_game_stream",
    "profile_for_payload_type",
    "score_game_session",
    "transmit_game_stream",
]
