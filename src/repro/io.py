"""Dataset persistence: save and load traces and experiment results.

Real deployments of this library record traces once (expensive) and
re-analyze many times.  Formats:

* ``LinkTrace`` / paired-run datasets -> ``.npz`` (numpy archive, compact
  and fast);
* experiment result summaries -> ``.json`` (human-diffable, feeds
  plotting scripts).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace
from repro.core.replication import PairedRun


def save_traces(path: Union[str, Path],
                traces: Sequence[LinkTrace]) -> None:
    """Write traces to an ``.npz`` archive."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {
        "names": np.array([t.name for t in traces], dtype=object)}
    for i, trace in enumerate(traces):
        arrays[f"send_{i}"] = trace.send_times
        arrays[f"delivered_{i}"] = trace.delivered
        arrays[f"delays_{i}"] = trace.delays
    np.savez_compressed(path, n_traces=len(traces),
                        **{k: v for k, v in arrays.items()
                           if k != "names"},
                        names=np.array([t.name for t in traces]))


def load_traces(path: Union[str, Path]) -> List[LinkTrace]:
    """Read traces back from :func:`save_traces` output."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        n = int(data["n_traces"])
        names = [str(name) for name in data["names"]]
        return [LinkTrace(names[i], data[f"send_{i}"],
                          data[f"delivered_{i}"], data[f"delays_{i}"])
                for i in range(n)]


def save_paired_runs(path: Union[str, Path],
                     runs: Sequence[PairedRun]) -> None:
    """Persist a Section 4 dataset (paired runs incl. offset copies)."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    meta = []
    for i, run in enumerate(runs):
        arrays[f"send_{i}"] = run.trace_a.send_times
        arrays[f"a_delivered_{i}"] = run.trace_a.delivered
        arrays[f"a_delays_{i}"] = run.trace_a.delays
        arrays[f"b_delivered_{i}"] = run.trace_b.delivered
        arrays[f"b_delays_{i}"] = run.trace_b.delays
        for j, (delta, trace) in enumerate(sorted(
                run.offset_traces.items())):
            arrays[f"off{j}_delivered_{i}"] = trace.delivered
            arrays[f"off{j}_delays_{i}"] = trace.delays
        meta.append({
            "scenario": run.scenario,
            "rssi_a": run.rssi_a_dbm,
            "rssi_b": run.rssi_b_dbm,
            "deltas": sorted(run.offset_traces),
            "spacing": run.profile.inter_packet_spacing_s,
            "duration": run.profile.duration_s,
            "packet_size": run.profile.packet_size_bytes,
        })
    np.savez_compressed(path, n_runs=len(runs),
                        meta=np.array(json.dumps(meta)), **arrays)


def load_paired_runs(path: Union[str, Path]) -> List[PairedRun]:
    """Read back :func:`save_paired_runs` output."""
    with np.load(Path(path), allow_pickle=False) as data:
        n = int(data["n_runs"])
        meta = json.loads(str(data["meta"]))
        runs = []
        for i in range(n):
            info = meta[i]
            profile = StreamProfile(
                packet_size_bytes=int(info["packet_size"]),
                inter_packet_spacing_s=float(info["spacing"]),
                duration_s=float(info["duration"]))
            send = data[f"send_{i}"]
            trace_a = LinkTrace("A", send, data[f"a_delivered_{i}"],
                                data[f"a_delays_{i}"])
            trace_b = LinkTrace("B", send, data[f"b_delivered_{i}"],
                                data[f"b_delays_{i}"])
            offsets = {}
            for j, delta in enumerate(info["deltas"]):
                offsets[float(delta)] = LinkTrace(
                    f"A+{delta}", send, data[f"off{j}_delivered_{i}"],
                    data[f"off{j}_delays_{i}"])
            runs.append(PairedRun(
                profile=profile, trace_a=trace_a, trace_b=trace_b,
                offset_traces=offsets, rssi_a_dbm=float(info["rssi_a"]),
                rssi_b_dbm=float(info["rssi_b"]),
                scenario=str(info["scenario"])))
        return runs


def save_result_json(path: Union[str, Path], result) -> None:
    """Serialize a driver result dataclass to JSON (numpy-tolerant)."""
    def default(obj):
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if dataclasses.is_dataclass(obj):
            return dataclasses.asdict(obj)
        raise TypeError(f"not JSON-serializable: {type(obj)!r}")

    payload = dataclasses.asdict(result) if dataclasses.is_dataclass(
        result) else result
    Path(path).write_text(json.dumps(payload, indent=2, default=default))


def load_result_json(path: Union[str, Path]) -> dict:
    """Read a result summary back as a plain dict."""
    return json.loads(Path(path).read_text())
