"""The span API: timed regions layered on :class:`EventLog`.

A span marks an interval of simulated time — a MAC retry burst, a
secondary-link visit, a PSM exchange::

    spans = SpanTracker(clock=lambda: sim.now, registry=registry,
                        event_log=log, source="client")
    with spans.span("client.secondary_visit", reason="recovery"):
        ...                      # body runs at simulated time

Event-driven code that cannot scope a ``with`` block begins a span and
ends it from a later callback::

    span = spans.span("client.secondary_visit", reason="keepalive")
    ...
    span.end()                   # in the return-to-primary handler

Each span records ``<name>.begin`` / ``<name>.end`` events into the
event log (when one is attached) and one observation into the
``<name>.duration_s`` histogram of the registry (when one is attached),
so both the timeline rendering and the aggregate metrics see the same
interval.  Span intervals are half-open ``[begin, end)`` like every
other interval in the repo.  Timestamps come exclusively from the
injected ``clock`` (simulated time), never from the host clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.obs.registry import (
    DURATION_BUCKETS_S,
    LabelValue,
    MetricsRegistry,
)
from repro.sim.tracing import EventLog


def _detail(labels: Mapping[str, LabelValue],
            extra: Optional[str] = None) -> str:
    parts = [f"{key}={labels[key]}" for key in sorted(labels)]
    if extra:
        parts.append(extra)
    return " ".join(parts)


class Span:
    """One open interval; close it with :meth:`end` (or ``with``)."""

    __slots__ = ("name", "labels", "begin_time", "end_time", "_tracker")

    def __init__(self, tracker: "SpanTracker", name: str,
                 begin_time: float,
                 labels: Dict[str, LabelValue]) -> None:
        self._tracker = tracker
        self.name = name
        self.labels = labels
        self.begin_time = begin_time
        self.end_time: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.end_time is not None

    def end(self) -> float:
        """Close the span at the tracker's current time; returns the
        duration.  Idempotent — a second call returns the recorded
        duration without re-observing."""
        if self.end_time is not None:
            return self.end_time - self.begin_time
        now = self._tracker.now()
        if now < self.begin_time:
            raise ValueError(
                f"span {self.name!r} would end at t={now!r} before its "
                f"begin t={self.begin_time!r}")
        self.end_time = now
        self._tracker._record_end(self)
        return now - self.begin_time

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> None:
        self.end()


class SimulatedClock:
    """A span clock advanced explicitly in simulated units.

    Runner tasks must not observe wall-clock time (metrics travel with
    cached results, so any nondeterminism would poison digests); batch-
    style drivers instead advance this clock by the simulated quantity
    each phase covered — seconds of rendered traffic, calls generated —
    and bind it as a :class:`SpanTracker`'s clock.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance a clock by {dt!r}")
        self._now += dt

    def __call__(self) -> float:
        return self._now


class SpanTracker:
    """Factory for spans bound to one clock, registry and event log."""

    def __init__(self, clock: Callable[[], float],
                 registry: Optional[MetricsRegistry] = None,
                 event_log: Optional[EventLog] = None,
                 source: str = "span",
                 buckets: Sequence[float] = DURATION_BUCKETS_S) -> None:
        self._clock = clock
        self._registry = registry
        self._event_log = event_log
        self._source = source
        self._buckets = tuple(buckets)

    def now(self) -> float:
        return self._clock()

    def span(self, name: str, **labels: LabelValue) -> Span:
        """Begin a span named ``name`` at the current simulated time."""
        begin = self.now()
        span = Span(self, name, begin, dict(labels))
        if self._event_log is not None:
            self._event_log.record(begin, self._source, f"{name}.begin",
                                   _detail(span.labels))
        return span

    def _record_end(self, span: Span) -> None:
        assert span.end_time is not None
        duration = span.end_time - span.begin_time
        if self._event_log is not None:
            self._event_log.record(
                span.end_time, self._source, f"{span.name}.end",
                _detail(span.labels, extra=f"duration={duration:.6f}"))
        if self._registry is not None:
            self._registry.histogram(
                f"{span.name}.duration_s", bounds=self._buckets,
                **span.labels).observe(duration)
