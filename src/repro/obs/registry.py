"""The deterministic metrics registry.

A :class:`MetricsRegistry` holds named, labelled metric instruments:

* :class:`Counter` — a monotonically non-decreasing sum;
* :class:`Gauge` — a last-written value;
* :class:`TimeWeightedGauge` — a value integrated over *simulated* time,
  for duty-cycle style metrics (PSM wake ratio, replication on/off);
* :class:`Histogram` — fixed, half-open buckets ``[lo, hi)`` declared up
  front, plus count/sum/min/max.

Determinism contract: a registry is a pure function of the sequence of
instrument operations applied to it, and every read-out (:meth:`~
MetricsRegistry.snapshot`, the exporters in :mod:`repro.obs.export`)
iterates instruments in sorted ``(name, labels)`` order — never in
insertion or hash order.  Two runs of the same seeded simulation
therefore produce byte-identical exported metrics, and merging per-run
registries in spec order (:meth:`MetricsRegistry.merge`) is
order-deterministic too.  No instrument ever reads a wall clock; time
enters only through explicitly passed simulated timestamps.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type, Union

#: canonical label encoding: sorted (key, value) pairs
LabelItems = Tuple[Tuple[str, str], ...]

#: label values accepted by the instrument factories
LabelValue = Union[str, int, bool]

#: default span/duration buckets (seconds), log-spaced around the
#: paper's millisecond-scale switch latencies
DURATION_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 10.0)

#: default buckets for small non-negative counts (retries, queue depths)
COUNT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 8.0, 16.0, 64.0)

#: default buckets for rates/fractions in [0, 1]
RATIO_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5)


class MetricError(ValueError):
    """Inconsistent instrument use (kind clash, bucket mismatch...)."""


def _label_items(labels: Mapping[str, LabelValue]) -> LabelItems:
    items: List[Tuple[str, str]] = []
    for key in sorted(labels):
        value = labels[key]
        if isinstance(value, bool):
            rendered = "true" if value else "false"
        elif isinstance(value, (str, int)):
            rendered = str(value)
        else:
            raise MetricError(
                f"label {key}={value!r} is not str/int/bool; labels must "
                "be canonically renderable")
        items.append((key, rendered))
    return tuple(items)


def _number(value: float) -> Union[int, float]:
    """Canonical JSON number: integral floats export as ints."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class Counter:
    """A non-decreasing sum."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment {amount!r} is negative")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"value": _number(self.value)}

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "Counter":
        counter = cls()
        counter.value = float(data["value"])  # type: ignore[arg-type]
        return counter


class Gauge:
    """A last-written value (merge keeps the later write, in merge order)."""

    kind = "gauge"
    __slots__ = ("value", "writes")

    def __init__(self) -> None:
        self.value = 0.0
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.writes += 1

    def snapshot(self) -> Dict[str, object]:
        return {"value": _number(self.value), "writes": self.writes}

    def merge(self, other: "Gauge") -> None:
        if other.writes:
            self.value = other.value
        self.writes += other.writes

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "Gauge":
        gauge = cls()
        gauge.value = float(data["value"])  # type: ignore[arg-type]
        gauge.writes = int(data["writes"])  # type: ignore[arg-type]
        return gauge


class TimeWeightedGauge:
    """A value integrated over simulated time.

    ``set(t, v)`` charges the previous value for the interval since the
    previous ``set`` (half-open ``[prev_t, t)``); :meth:`close` charges
    the final value up to the end of the observation period.  The
    time-weighted mean is ``integral / duration`` — e.g. the PSM wake
    ratio when the value is a 0/1 awake indicator.
    """

    kind = "time_gauge"
    __slots__ = ("integral", "duration", "last_time", "last_value")

    def __init__(self) -> None:
        self.integral = 0.0
        self.duration = 0.0
        self.last_time: Optional[float] = None
        self.last_value = 0.0

    def set(self, time: float, value: float) -> None:
        self._advance(time)
        self.last_time = time
        self.last_value = float(value)

    def close(self, time: float) -> None:
        """Finalize the observation period at simulated ``time``."""
        self._advance(time)
        self.last_time = time

    def _advance(self, time: float) -> None:
        if self.last_time is not None:
            span = time - self.last_time
            if span < 0:
                raise MetricError(
                    f"time-weighted gauge observed t={time!r} before "
                    f"t={self.last_time!r}; simulated time is monotone")
            self.integral += self.last_value * span
            self.duration += span

    @property
    def mean(self) -> float:
        return self.integral / self.duration if self.duration > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"integral": _number(self.integral),
                "duration": _number(self.duration),
                "mean": _number(self.mean)}

    def merge(self, other: "TimeWeightedGauge") -> None:
        self.integral += other.integral
        self.duration += other.duration

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]
                      ) -> "TimeWeightedGauge":
        gauge = cls()
        gauge.integral = float(data["integral"])  # type: ignore[arg-type]
        gauge.duration = float(data["duration"])  # type: ignore[arg-type]
        return gauge


class Histogram:
    """Fixed-bucket histogram with half-open buckets.

    ``bounds`` are the strictly increasing upper bucket edges; bucket
    ``i`` counts observations in ``[bounds[i-1], bounds[i])`` and a final
    overflow bucket counts ``v >= bounds[-1]``.  A value equal to an edge
    lands in the *higher* bucket — the same ``[start, end)`` convention
    the interval bugfix established for windows and event slices, so a
    boundary observation is never counted twice.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise MetricError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram bounds {edges!r} must be strictly increasing")
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": [_number(b) for b in self.bounds],
            "counts": list(self.counts),
            "count": self.count,
            "sum": _number(self.total),
            "min": None if self.minimum is None else _number(self.minimum),
            "max": None if self.maximum is None else _number(self.maximum),
        }

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histograms with bounds {self.bounds!r} "
                f"and {other.bounds!r}")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        for extremum in (other.minimum,):
            if extremum is not None and (self.minimum is None
                                         or extremum < self.minimum):
                self.minimum = extremum
        for extremum in (other.maximum,):
            if extremum is not None and (self.maximum is None
                                         or extremum > self.maximum):
                self.maximum = extremum

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "Histogram":
        histogram = cls(data["bounds"])  # type: ignore[arg-type]
        counts = [int(c) for c in data["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(histogram.counts):
            raise MetricError("histogram snapshot counts/bounds mismatch")
        histogram.counts = counts
        histogram.count = int(data["count"])  # type: ignore[arg-type]
        histogram.total = float(data["sum"])  # type: ignore[arg-type]
        minimum = data.get("min")
        maximum = data.get("max")
        histogram.minimum = None if minimum is None else float(minimum)  # type: ignore[arg-type]
        histogram.maximum = None if maximum is None else float(maximum)  # type: ignore[arg-type]
        return histogram


Metric = Union[Counter, Gauge, TimeWeightedGauge, Histogram]

_KINDS: Dict[str, Type[Metric]] = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    TimeWeightedGauge.kind: TimeWeightedGauge,
    Histogram.kind: Histogram,
}


class MetricsRegistry:
    """Named, labelled instruments with deterministic read-out order."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        # An empty registry is still a registry; truthiness follows
        # identity, not content, so ``metrics or fallback`` never
        # silently replaces a registry that happens to be empty yet.
        return True

    # ------------------------------------------------------- factories

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        metric = self._get_or_create(name, _label_items(labels), Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        metric = self._get_or_create(name, _label_items(labels), Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def time_gauge(self, name: str,
                   **labels: LabelValue) -> TimeWeightedGauge:
        metric = self._get_or_create(name, _label_items(labels),
                                     TimeWeightedGauge)
        assert isinstance(metric, TimeWeightedGauge)
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DURATION_BUCKETS_S,
                  **labels: LabelValue) -> Histogram:
        key = (name, _label_items(labels))
        existing = self._metrics.get(key)
        if existing is None:
            histogram = Histogram(bounds)
            self._metrics[key] = histogram
            return histogram
        if not isinstance(existing, Histogram):
            raise MetricError(
                f"metric {name!r}{dict(key[1])!r} is a "
                f"{existing.kind}, not a histogram")
        if existing.bounds != tuple(float(b) for b in bounds):
            raise MetricError(
                f"histogram {name!r} re-declared with different bounds")
        return existing

    def _get_or_create(self, name: str, labels: LabelItems,
                       cls: Type[Metric]) -> Metric:
        if not name:
            raise MetricError("metric name must be non-empty")
        key = (name, labels)
        existing = self._metrics.get(key)
        if existing is None:
            metric: Metric = cls()
            self._metrics[key] = metric
            return metric
        if not isinstance(existing, cls):
            raise MetricError(
                f"metric {name!r}{dict(labels)!r} is a "
                f"{existing.kind}, not a {cls.kind}")
        return existing

    # --------------------------------------------------------- read-out

    def items(self) -> List[Tuple[str, LabelItems, Metric]]:
        """Instruments in sorted ``(name, labels)`` order."""
        return [(name, labels, self._metrics[(name, labels)])
                for name, labels in sorted(self._metrics)]

    def get(self, name: str,
            **labels: LabelValue) -> Optional[Metric]:
        return self._metrics.get((name, _label_items(labels)))

    def close_time_gauges(self, time: float) -> None:
        """Finalize every time-weighted gauge at simulated ``time``."""
        for _, _, metric in self.items():
            if isinstance(metric, TimeWeightedGauge):
                metric.close(time)

    def snapshot(self) -> Dict[str, object]:
        """The canonical plain-data form (sorted, JSON-able)."""
        entries: List[Dict[str, object]] = []
        for name, labels, metric in self.items():
            entry: Dict[str, object] = {
                "name": name,
                "kind": metric.kind,
                "labels": {key: value for key, value in labels},
            }
            entry.update(metric.snapshot())
            entries.append(entry)
        return {"metrics": entries}

    # ----------------------------------------------------------- merge

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (deterministic in call
        order: counters/histograms/time-gauges add, gauges last-write-
        wins).  Returns ``self`` for chaining."""
        for name, labels, metric in other.items():
            key = (name, labels)
            existing = self._metrics.get(key)
            if existing is None:
                # Deep-copy through the snapshot codec so later merges
                # never mutate the source registry's instruments.
                self._metrics[key] = _KINDS[metric.kind].from_snapshot(
                    metric.snapshot())
            elif type(existing) is not type(metric):
                raise MetricError(
                    f"merge kind clash for {name!r}: "
                    f"{existing.kind} vs {metric.kind}")
            else:
                existing.merge(metric)  # type: ignore[arg-type]
        return self

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        entries = data.get("metrics", [])
        if not isinstance(entries, list):
            raise MetricError("snapshot 'metrics' must be a list")
        for entry in entries:
            if not isinstance(entry, Mapping):
                raise MetricError(f"snapshot entry {entry!r} is not a map")
            kind = entry.get("kind")
            metric_cls = _KINDS.get(kind)  # type: ignore[arg-type]
            if metric_cls is None:
                raise MetricError(f"unknown metric kind {kind!r}")
            name = entry["name"]
            labels = entry.get("labels", {})
            if not isinstance(name, str) or not isinstance(labels, Mapping):
                raise MetricError(f"malformed snapshot entry {entry!r}")
            key = (name, _label_items(labels))
            if key in registry._metrics:
                raise MetricError(
                    f"duplicate snapshot entry for {name!r}{dict(key[1])!r}")
            registry._metrics[key] = metric_cls.from_snapshot(entry)
        return registry
