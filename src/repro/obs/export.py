"""Exporters: canonical JSON, CSV, and Prometheus text format.

All three are pure functions of a registry snapshot and iterate it in
the registry's sorted order, so each format is byte-stable: the same
simulated runs — serial, parallel or replayed from the result cache —
export the same bytes.  Canonical JSON (sorted keys, compact
separators) is the interchange format the runner caches and the CLI's
``--metrics-out`` writes; CSV and Prometheus are for spreadsheets and
scrape endpoints respectively.
"""

from __future__ import annotations

import io
import json
import re
from typing import List, Mapping, Optional, Tuple, Union

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelItems,
    MetricsRegistry,
    TimeWeightedGauge,
    _number,
)

#: characters legal in a Prometheus metric name
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def to_canonical_json(registry: MetricsRegistry) -> str:
    """Byte-stable canonical JSON for ``registry``."""
    return json.dumps(registry.snapshot(), sort_keys=True,
                      separators=(",", ":"))


def from_canonical_json(text: str) -> MetricsRegistry:
    """Inverse of :func:`to_canonical_json`."""
    return MetricsRegistry.from_snapshot(json.loads(text))


def merge_metrics_json(blobs: List[str]) -> MetricsRegistry:
    """Merge canonical-JSON metric blobs in sequence order."""
    merged = MetricsRegistry()
    for blob in blobs:
        merged.merge(from_canonical_json(blob))
    return merged


#: the canonical export of a registry with no instruments
EMPTY_METRICS_JSON = to_canonical_json(MetricsRegistry())


def _labels_cell(labels: LabelItems) -> str:
    return ";".join(f"{key}={value}" for key, value in labels)


def to_csv(registry: MetricsRegistry) -> str:
    """``name,kind,labels,field,value`` rows (header included)."""
    out = io.StringIO()
    out.write("name,kind,labels,field,value\r\n")
    for name, labels, metric in registry.items():
        prefix = f"{name},{metric.kind},{_labels_cell(labels)}"
        for field, value in sorted(metric.snapshot().items()):
            if isinstance(value, list):
                rendered = ";".join(str(v) for v in value)
            elif value is None:
                rendered = ""
            else:
                rendered = str(value)
            out.write(f"{prefix},{field},{rendered}\r\n")
    return out.getvalue()


def _prom_name(name: str) -> str:
    return _PROM_NAME_BAD.sub("_", name)


def _prom_labels(labels: LabelItems,
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(key, value) for key, value in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_PROM_LABEL_BAD.sub("_", key)}="{value}"'
        for key, value in pairs)
    return "{" + rendered + "}"


def _fmt(value: Union[int, float]) -> str:
    value = _number(value)
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for name, labels, metric in registry.items():
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom}{_prom_labels(labels)} "
                         f"{_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{_prom_labels(labels)} "
                         f"{_fmt(metric.value)}")
        elif isinstance(metric, TimeWeightedGauge):
            lines.append(f"# TYPE {prom}_mean gauge")
            lines.append(f"{prom}_mean{_prom_labels(labels)} "
                         f"{_fmt(metric.mean)}")
            lines.append(f"{prom}_seconds_total{_prom_labels(labels)} "
                         f"{_fmt(metric.duration)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                le = ("le", _fmt(bound))
                lines.append(f"{prom}_bucket{_prom_labels(labels, le)} "
                             f"{cumulative}")
            lines.append(
                f'{prom}_bucket{_prom_labels(labels, ("le", "+Inf"))} '
                f"{metric.count}")
            lines.append(f"{prom}_sum{_prom_labels(labels)} "
                         f"{_fmt(metric.total)}")
            lines.append(f"{prom}_count{_prom_labels(labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def record_trace_metrics(registry: MetricsRegistry, trace: object,
                         window_s: float = 5.0,
                         **labels: Union[str, int, bool]) -> None:
    """Record the standard per-trace metrics for one ``LinkTrace``.

    Populates loss counters, the burst-length histogram and the
    per-window loss-rate histogram — the per-link telemetry the paper's
    worst-window and burst-distribution evidence is built from.  The
    same instruments are produced whether the trace came from the exact
    :class:`~repro.channel.link.WifiLink` path or the vectorized
    :class:`~repro.channel.fast.FastLinkRenderer`, which is what the
    renderer-parity test compares.
    """
    # Local imports: analysis is a consumer of obs elsewhere; keep the
    # module import graph acyclic at import time.
    from repro.analysis.bursts import burst_lengths
    from repro.analysis.windows import window_loss_rates
    from repro.obs.registry import COUNT_BUCKETS, RATIO_BUCKETS

    loss = trace.loss_indicator  # type: ignore[attr-defined]
    n = int(loss.size)
    lost = int(loss.sum())
    registry.counter("trace.packets", **labels).inc(n)
    registry.counter("trace.lost", **labels).inc(lost)
    bursts = registry.histogram("trace.burst_len",
                                bounds=COUNT_BUCKETS, **labels)
    for length in burst_lengths(loss):
        bursts.observe(float(length))
    windows = registry.histogram("trace.window_loss_rate",
                                 bounds=RATIO_BUCKETS, **labels)
    send_times = trace.send_times  # type: ignore[attr-defined]
    if len(send_times) >= 2:
        spacing = float(send_times[1] - send_times[0])
    else:
        spacing = 0.020
    for rate in window_loss_rates(loss, window_s=window_s,
                                  inter_packet_spacing_s=spacing):
        windows.observe(float(rate))
