"""Deterministic observability: metrics, spans, exporters.

The paper's evaluation is built on per-window, per-link evidence —
worst 5-second windows, burst-length distributions, PSM wake/sleep duty
cycles — so the reproduction carries a first-class observability layer
instead of ad-hoc counters:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  time-weighted gauges and fixed-bucket histograms whose read-out order
  is sorted, never insertion- or hash-ordered;
* :class:`~repro.obs.spans.SpanTracker` — timed regions layered on
  :class:`~repro.sim.tracing.EventLog`, feeding duration histograms;
* :mod:`~repro.obs.export` — canonical JSON (the cacheable interchange
  blob), CSV and Prometheus text exporters, all byte-stable;
* :func:`~repro.obs.runtime.collecting` — the scope the parallel runner
  installs per task so every instrumented component reports into the
  run's own registry.

Determinism contract: metrics are a pure function of the simulated
event sequence.  Serial, ``--jobs N`` and warm-cache executions of the
same batch export byte-identical metrics (asserted under
``REPRO_SANITIZE=1`` and diffed in CI).
"""

from repro.obs.export import (
    EMPTY_METRICS_JSON,
    from_canonical_json,
    merge_metrics_json,
    record_trace_metrics,
    to_canonical_json,
    to_csv,
    to_prometheus,
)
from repro.obs.registry import (
    COUNT_BUCKETS,
    DURATION_BUCKETS_S,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeWeightedGauge,
)
from repro.obs.runtime import active_registry, collecting
from repro.obs.spans import SimulatedClock, Span, SpanTracker

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DURATION_BUCKETS_S",
    "EMPTY_METRICS_JSON",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "RATIO_BUCKETS",
    "SimulatedClock",
    "Span",
    "SpanTracker",
    "TimeWeightedGauge",
    "active_registry",
    "collecting",
    "from_canonical_json",
    "merge_metrics_json",
    "record_trace_metrics",
    "to_canonical_json",
    "to_csv",
    "to_prometheus",
]
