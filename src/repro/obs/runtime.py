"""The process-local active registry.

The runner's unit of work (:func:`repro.runner.worker.execute_spec`)
installs a fresh registry around each task invocation::

    with collecting() as registry:
        payload = task(seed, **config)
    metrics_json = to_canonical_json(registry)

Instrumented components (``run_session``, ``MacLayer``,
``PlayoutBuffer`` ...) default their ``metrics`` parameter to
:func:`active_registry`, so every simulation executed inside a runner
task is metered without threading a registry through each signature —
and code running outside any collection scope pays a single ``None``
check.  The installation is plain module state, not thread-local: tasks
execute single-threaded inside a worker process (the paralellism is
*between* processes), and the sanitizer-checked determinism contract
forbids in-process concurrency here anyway.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.registry import MetricsRegistry

_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry installed by the innermost :func:`collecting`."""
    return _ACTIVE


@contextlib.contextmanager
def collecting(registry: Optional[MetricsRegistry] = None
               ) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
