"""Channel scenario library: the "wild" conditions of the evaluation.

The paper's 458 in-the-wild calls cover offices, serviced apartments,
downtown areas and a conference, with challenging situations called out in
Section 4: a weak link, client mobility, microwave-oven interference, and
network congestion (Figure 6's impairment categories).  This module defines
those situations as parameterized channel configurations and samples runs
from a weighted mix.

Key modelling choices mirroring the paper's observations:

* **weak_link** — the client is far from both candidate APs; the secondary
  is even weaker (Figure 3's link A at ~4% / link B at ~15% loss).  Losses
  are Gilbert-bursty but mostly independent across links.
* **mobility** — a random-waypoint walk changes both distances and
  re-rolls shadowing; loss episodes are long but only weakly correlated
  across APs at different corners.
* **microwave** — one oven interferes with BOTH links because every
  available AP in its vicinity is on 2.4 GHz (the paper notes no 5 GHz
  links were available there); this shared fate is why cross-link gains
  little (only 1.2x) in this scenario.
* **congestion** — independent contention on each channel, bursty medium
  occupancy, big queueing jitter.
* **benign** — a healthy office link; most calls in the wild are fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.gilbert import GilbertParams
from repro.channel.interference import (
    CongestionProcess,
    MicrowaveOven,
)
from repro.channel.link import LinkConfig, WifiLink, paired_links
from repro.channel.mobility import (
    OFFICE_AP_PRIMARY,
    OFFICE_AP_SECONDARY,
    Position,
    RandomWaypointMobility,
    StaticPosition,
)
from repro.channel.pathloss import PathLossParams
from repro.core.config import StreamProfile
from repro.core.replication import PairedRun, render_paired_run
from repro.sim.random import RandomRouter
from repro.wifi.phy import PhyConfig


@dataclass(frozen=True)
class ScenarioSpec:
    """A named impairment scenario and its sampling weight."""

    name: str
    weight: float


#: The wild mix: mostly benign, with each impairment well represented.
WILD_MIX: Sequence[ScenarioSpec] = (
    ScenarioSpec("benign", 0.34),
    ScenarioSpec("weak_link", 0.22),
    ScenarioSpec("mobility", 0.18),
    ScenarioSpec("congestion", 0.18),
    ScenarioSpec("microwave", 0.08),
)


def _phy(mimo_branches: int) -> PhyConfig:
    return PhyConfig(n_spatial_branches=mimo_branches)


def _gilbert(rng: np.random.Generator,
             mean_bad_lo: float = 0.08, mean_bad_hi: float = 0.5,
             loss_bad_lo: float = 0.35, loss_bad_hi: float = 0.9,
             mean_good_lo: float = 4.0,
             mean_good_hi: float = 40.0) -> GilbertParams:
    """Draw per-run Gilbert parameters from a scenario's range."""
    return GilbertParams(
        mean_good_s=float(rng.uniform(mean_good_lo, mean_good_hi)),
        mean_bad_s=float(rng.uniform(mean_bad_lo, mean_bad_hi)),
        loss_good=float(rng.uniform(0.0, 0.004)),
        loss_bad=float(rng.uniform(loss_bad_lo, loss_bad_hi)))


#: Mobility models accepted by :class:`WifiLink` (duck-typed:
#: ``position_at(time)`` + ``is_moving``).
MobilityModel = Union[StaticPosition, RandomWaypointMobility]


@dataclass(frozen=True)
class InterferenceSpec:
    """A deferred interference source: kind + stream + drawn parameters.

    The scenario's *parameters* are drawn eagerly (on
    ``scenario.params``, in the scenario's canonical order) but the
    stateful process object is only constructed on demand, so both the
    event backend (which needs the live object) and the batch backend
    (which renders the process as arrays straight from ``stream``) see
    the same realization: the process's own draws are the first draws
    of its named stream either way.
    """

    kind: str                              # "oven" | "congestion"
    stream: str                            # RandomRouter stream name
    params: Tuple[Tuple[str, float], ...]  # constructor kwargs, ordered

    def params_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def build(self, rng_router: RandomRouter
              ) -> Union[MicrowaveOven, CongestionProcess]:
        """Construct the live process for the event backend."""
        if self.kind == "oven":
            return MicrowaveOven(rng_router.stream(self.stream),
                                 **self.params_dict())
        if self.kind == "congestion":
            return CongestionProcess(rng_router.stream(self.stream),
                                     **self.params_dict())
        raise ValueError(f"unknown interference kind {self.kind!r}")


@dataclass(frozen=True)
class ScenarioSetup:
    """Everything :func:`build_scenario` draws before links exist.

    The shared parameter layer between the event and batch backends:
    identical per-(seed, index) realizations require that both backends
    consume ``scenario.params`` / ``scenario.mobility`` / the
    interference streams in exactly the order recorded here.
    """

    name: str
    config_a: LinkConfig
    config_b: LinkConfig
    mobility: MobilityModel
    shared_interference: Optional[InterferenceSpec] = None
    interference_a: Optional[InterferenceSpec] = None
    interference_b: Optional[InterferenceSpec] = None


def scenario_setup(name: str, rng_router: RandomRouter,
                   mimo_branches: int = 1) -> ScenarioSetup:
    """Draw one run's scenario parameters (shared event/batch layer)."""
    rng = rng_router.stream("scenario.params")
    phy = _phy(mimo_branches)

    if name == "benign":
        client = StaticPosition(Position(
            float(rng.uniform(4.0, 14.0)), float(rng.uniform(2.0, 10.0))))
        config_a = LinkConfig(
            name="A", channel=1, ap_position=OFFICE_AP_PRIMARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.05, mean_bad_hi=0.15,
                             loss_bad_lo=0.2, loss_bad_hi=0.5,
                             mean_good_lo=20.0, mean_good_hi=80.0),
            phy=phy, rician_k_db=8.0)
        config_b = LinkConfig(
            name="B", channel=11, ap_position=OFFICE_AP_SECONDARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.05, mean_bad_hi=0.2,
                             loss_bad_lo=0.2, loss_bad_hi=0.6,
                             mean_good_lo=15.0, mean_good_hi=60.0),
            phy=phy, rician_k_db=6.0)
        return ScenarioSetup(name, config_a, config_b, client)

    if name == "weak_link":
        # Far corner of a large space: both links weak, B weaker.  Outage
        # episodes are long (hundreds of ms to seconds) — long enough that
        # a 100 ms temporal offset rarely escapes them — and shadowing
        # drifts as people and doors move.
        client = StaticPosition(Position(
            float(rng.uniform(22.0, 30.0)), float(rng.uniform(10.0, 15.0))))
        exponent = float(rng.uniform(3.4, 3.9))
        config_a = LinkConfig(
            name="A", channel=6, ap_position=Position(0.0, 0.0),
            pathloss=PathLossParams(exponent=exponent,
                                    shadowing_sigma_db=5.0),
            gilbert=_gilbert(rng, mean_bad_lo=0.3, mean_bad_hi=1.2,
                             loss_bad_lo=0.85, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=80.0),
            phy=phy, environment_drift=True, shadowing_update_s=2.0)
        config_b = LinkConfig(
            name="B", channel=11, ap_position=Position(-6.0, -4.0),
            pathloss=PathLossParams(exponent=exponent,
                                    shadowing_sigma_db=5.0),
            gilbert=_gilbert(rng, mean_bad_lo=0.4, mean_bad_hi=1.5,
                             loss_bad_lo=0.85, loss_bad_hi=1.0,
                             mean_good_lo=10.0, mean_good_hi=40.0),
            phy=phy, environment_drift=True, shadowing_update_s=2.0)
        return ScenarioSetup(name, config_a, config_b, client)

    if name == "mobility":
        # A walk across a large floor: a link can die completely when the
        # client rounds a corner away from its AP — the non-stationarity
        # that defeats trial-and-settle selection.
        walk = RandomWaypointMobility(
            rng_router.stream("scenario.mobility"),
            floor=(60.0, 25.0),
            speed_range=(0.6, 1.8), pause_s=3.0)
        config_a = LinkConfig(
            name="A", channel=1, ap_position=Position(2.0, 2.0),
            pathloss=PathLossParams(exponent=3.6, shadowing_sigma_db=6.0),
            gilbert=_gilbert(rng, mean_bad_lo=0.2, mean_bad_hi=0.8,
                             loss_bad_lo=0.8, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=60.0),
            phy=phy, shadowing_update_s=0.5)
        config_b = LinkConfig(
            name="B", channel=11, ap_position=Position(58.0, 23.0),
            pathloss=PathLossParams(exponent=3.6, shadowing_sigma_db=6.0),
            gilbert=_gilbert(rng, mean_bad_lo=0.2, mean_bad_hi=0.8,
                             loss_bad_lo=0.8, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=60.0),
            phy=phy, shadowing_update_s=0.5)
        return ScenarioSetup(name, config_a, config_b, walk)

    if name == "congestion":
        # Heavy co-channel contention: long busy spells inflate queueing
        # delay (late losses) and hidden-terminal collisions produce
        # outage-grade loss runs on the busy channel.
        client = StaticPosition(Position(
            float(rng.uniform(6.0, 20.0)), float(rng.uniform(3.0, 12.0))))
        heavy = InterferenceSpec("congestion", "scenario.congestion.a", (
            ("mean_busy_s", float(rng.uniform(1.0, 5.0))),
            ("mean_idle_s", float(rng.uniform(2.0, 8.0))),
            ("busy_delay_s", float(rng.uniform(0.020, 0.060))),
            ("collision_prob", float(rng.uniform(0.3, 0.6)))))
        light = InterferenceSpec("congestion", "scenario.congestion.b", (
            ("mean_busy_s", float(rng.uniform(0.3, 1.5))),
            ("mean_idle_s", float(rng.uniform(3.0, 8.0))),
            ("busy_delay_s", float(rng.uniform(0.005, 0.020))),
            ("collision_prob", float(rng.uniform(0.15, 0.35)))))
        config_a = LinkConfig(
            name="A", channel=1, ap_position=OFFICE_AP_PRIMARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.3, mean_bad_hi=1.0,
                             loss_bad_lo=0.8, loss_bad_hi=1.0,
                             mean_good_lo=15.0, mean_good_hi=50.0),
            phy=phy)
        config_b = LinkConfig(
            name="B", channel=11, ap_position=OFFICE_AP_SECONDARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.1, mean_bad_hi=0.5,
                             loss_bad_lo=0.7, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=80.0),
            phy=phy)
        return ScenarioSetup(name, config_a, config_b, client,
                             interference_a=heavy, interference_b=light)

    if name == "microwave":
        # Shared-fate interference: every nearby AP is on 2.4 GHz (the
        # paper notes no 5 GHz links were available near the oven), so
        # cross-link diversity gains little here.
        client = StaticPosition(Position(
            float(rng.uniform(8.0, 18.0)), float(rng.uniform(3.0, 12.0))))
        oven = InterferenceSpec("oven", "scenario.oven", (
            ("episode_rate_hz", 1.0 / float(rng.uniform(30.0, 90.0))),
            ("episode_duration_s", float(rng.uniform(20.0, 60.0))),
            ("duty_cycle", float(rng.uniform(0.5, 0.65))),
            ("penalty_db", float(rng.uniform(25.0, 35.0))),
            ("floor_penalty_db", float(rng.uniform(10.0, 18.0)))))
        config_a = LinkConfig(
            name="A", channel=6, ap_position=OFFICE_AP_PRIMARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.1, mean_bad_hi=0.5,
                             loss_bad_lo=0.7, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=60.0),
            phy=phy)
        config_b = LinkConfig(
            name="B", channel=9, ap_position=OFFICE_AP_SECONDARY,
            gilbert=_gilbert(rng, mean_bad_lo=0.1, mean_bad_hi=0.5,
                             loss_bad_lo=0.7, loss_bad_hi=1.0,
                             mean_good_lo=20.0, mean_good_hi=60.0),
            phy=phy)
        return ScenarioSetup(name, config_a, config_b, client,
                             shared_interference=oven)

    raise ValueError(f"unknown scenario {name!r}")


def _build_interference(spec: Optional[InterferenceSpec],
                        rng_router: RandomRouter) -> Any:
    return None if spec is None else spec.build(rng_router)


def build_scenario(name: str, rng_router: RandomRouter,
                   mimo_branches: int = 1) -> Tuple[WifiLink, WifiLink]:
    """Instantiate the two candidate links for one run of ``name``."""
    setup = scenario_setup(name, rng_router, mimo_branches)
    return paired_links(
        setup.config_a, setup.config_b, rng_router,
        mobility=setup.mobility,
        shared_interference=_build_interference(
            setup.shared_interference, rng_router),
        interference_a=_build_interference(
            setup.interference_a, rng_router),
        interference_b=_build_interference(
            setup.interference_b, rng_router))


def sample_scenario_name(rng, mix: Sequence[ScenarioSpec] = WILD_MIX) -> str:
    """Draw a scenario name from the weighted mix."""
    weights = [s.weight for s in mix]
    total = sum(weights)
    roll = rng.random() * total
    acc = 0.0
    for spec in mix:
        acc += spec.weight
        if roll <= acc:
            return spec.name
    return mix[-1].name


def generate_wild_run(index: int, profile: StreamProfile,
                      seed: int = 0,
                      temporal_deltas: Sequence[float] = (),
                      mimo_branches: int = 1,
                      mix: Sequence[ScenarioSpec] = WILD_MIX,
                      scenario: Optional[str] = None) -> PairedRun:
    """Run ``index`` of the Section 4 dataset, independently renderable.

    Each run's randomness derives only from ``(seed, index)`` — the
    forked router never consumes parent state — so run ``index`` of a
    batch is bit-identical whether rendered alone, serially in a loop,
    or on a pool worker (the :mod:`repro.runner` unit of work).
    """
    root = RandomRouter(seed)
    run_router = root.fork(f"wild-run-{index}")
    name = scenario or sample_scenario_name(
        run_router.stream("scenario.pick"), mix)
    link_a, link_b = build_scenario(name, run_router, mimo_branches)
    return render_paired_run(link_a, link_b, profile,
                             temporal_deltas=temporal_deltas,
                             scenario=name)


def generate_wild_runs(n_runs: int, profile: StreamProfile,
                       seed: int = 0,
                       temporal_deltas: Sequence[float] = (),
                       mimo_branches: int = 1,
                       mix: Sequence[ScenarioSpec] = WILD_MIX,
                       scenario: Optional[str] = None) -> List[PairedRun]:
    """The Section 4 dataset: ``n_runs`` calls over the wild mix.

    ``scenario`` pins every run to one impairment (Figure 6 breakdown);
    otherwise each run draws from ``mix``.
    """
    return [generate_wild_run(idx, profile, seed=seed,
                              temporal_deltas=temporal_deltas,
                              mimo_branches=mimo_branches,
                              mix=mix, scenario=scenario)
            for idx in range(n_runs)]


def build_office_pair(rng_router: RandomRouter,
                      mimo_branches: int = 1,
                      wired_delay_in_link: bool = False
                      ) -> Tuple[WifiLink, WifiLink]:
    """The Section 6 testbed: two APs at diagonal ends of a 30 m x 15 m
    office (channels 1 and 11), client at a random location.

    The *stronger* link (closer AP) is returned first as the primary.
    Per-run Gilbert draws and light contention reproduce the observed
    office statistics: the primary averages ~2% loss with an occasional
    bad 5-second window, the secondary is markedly worse.

    ``wired_delay_in_link`` keeps the 4 ms wired component inside the link
    (trace mode); the event-driven controller models wiring explicitly and
    passes False.
    """
    rng = rng_router.stream("office.params")
    client_pos = Position(float(rng.uniform(1.0, 29.0)),
                          float(rng.uniform(1.0, 14.0)))
    client = StaticPosition(client_pos)
    base_delay = 0.004 if wired_delay_in_link else 0.0
    phy = _phy(mimo_branches)
    pathloss = PathLossParams(exponent=3.3, shadowing_sigma_db=4.5)

    def office_link(name, channel, ap_pos, congestion_stream):
        # Gilbert BAD states are near-outages (loss survives the MAC retry
        # burst); their prevalence scales with distance from the AP, which
        # is what makes the far (secondary) link markedly worse — exactly
        # the office asymmetry of Section 6.1.
        distance = client_pos.distance_to(ap_pos)
        frac = min(distance / 33.5, 1.0)  # 0 near .. 1 at far corner
        # Outage prevalence is lognormal across runs (most locations are
        # fine, a few are bad) with a median that grows with distance.
        median_bad_frac = 0.006 * (1.0 + 4.0 * frac)
        bad_frac = float(np.exp(rng.normal(np.log(median_bad_frac), 1.0)))
        bad_frac = min(bad_frac, 0.35)
        mean_bad = float(rng.uniform(0.08, 0.12 + 1.1 * frac))
        mean_good = mean_bad * (1.0 - bad_frac) / max(bad_frac, 1e-4)
        loss_bad = float(rng.uniform(0.88, 1.0))
        contention = CongestionProcess(
            rng_router.stream(congestion_stream),
            mean_busy_s=0.3, mean_idle_s=4.0, busy_delay_s=0.008,
            collision_prob=0.25)
        config = LinkConfig(
            name=name, channel=channel, ap_position=ap_pos,
            pathloss=pathloss,
            gilbert=GilbertParams(
                mean_good_s=mean_good, mean_bad_s=mean_bad,
                loss_good=float(rng.uniform(0.0, 0.003)),
                loss_bad=loss_bad),
            phy=phy, base_delay_s=base_delay)
        return config, contention

    config_1, cont_1 = office_link("ap1", 1, OFFICE_AP_PRIMARY,
                                   "office.congestion.a")
    config_2, cont_2 = office_link("ap2", 11, OFFICE_AP_SECONDARY,
                                   "office.congestion.b")
    link_1, link_2 = paired_links(config_1, config_2, rng_router,
                                  mobility=client,
                                  interference_a=cont_1,
                                  interference_b=cont_2)
    # Primary = stronger (closer) link, per the paper's setup.
    if (client_pos.distance_to(OFFICE_AP_PRIMARY)
            <= client_pos.distance_to(OFFICE_AP_SECONDARY)):
        return link_1, link_2
    return link_2, link_1


def scenario_counts(runs: Sequence[PairedRun]) -> Dict[str, int]:
    """How many runs each scenario contributed (observability)."""
    counts: Dict[str, int] = {}
    for run in runs:
        counts[run.scenario] = counts.get(run.scenario, 0) + 1
    return counts


# --------------------------------------------------------------------------
# Multipath scenarios (the control-plane evaluation's N-path topologies)
# --------------------------------------------------------------------------

#: The control-plane mix: mostly plain offices, with the two conditions
#: that differentiate the strategies (shared-fate interference, mobility)
#: well represented.
MULTIPATH_MIX: Sequence[ScenarioSpec] = (
    ScenarioSpec("mp_office", 0.5),
    ScenarioSpec("mp_oven", 0.25),
    ScenarioSpec("mp_walk", 0.25),
)

#: AP placements for the multipath scenarios: spread across a 40 m x 16 m
#: floor so client position induces a real RSSI ordering.
_MP_AP_POSITIONS: Tuple[Position, ...] = (
    Position(2.0, 2.0),
    Position(38.0, 2.0),
    Position(2.0, 14.0),
    Position(38.0, 14.0),
)


def _mp_gilbert(rng: np.random.Generator, frac_scale: float
                ) -> GilbertParams:
    """Distance-scaled bursty outages for one multipath AP.

    ``frac_scale`` in [0, 1] grows with client-AP distance: far APs
    spend a larger fraction of time in near-outage BAD states.
    """
    median_bad_frac = 0.008 * (1.0 + 5.0 * frac_scale)
    bad_frac = float(np.exp(rng.normal(np.log(median_bad_frac), 0.9)))
    bad_frac = min(bad_frac, 0.4)
    mean_bad = float(rng.uniform(0.1, 0.2 + 1.0 * frac_scale))
    mean_good = mean_bad * (1.0 - bad_frac) / max(bad_frac, 1e-4)
    return GilbertParams(
        mean_good_s=mean_good, mean_bad_s=mean_bad,
        loss_good=float(rng.uniform(0.0, 0.003)),
        loss_bad=float(rng.uniform(0.85, 1.0)))


def build_multipath_links(name: str, rng_router: RandomRouter,
                          n_paths: int = 3,
                          mimo_branches: int = 1) -> List[WifiLink]:
    """Instantiate the ``n_paths`` candidate links for one control-plane
    run of scenario ``name``.

    Links are returned in AP order (``mp0`` .. ``mp{n-1}``); the
    topology builder preserves that order, and the controller ranks by
    RSSI itself.  All randomness flows through named streams of
    ``rng_router`` (``scenario.mp.params`` for the eager parameter draws,
    per-link streams keyed by config name after that), so a run is
    reproducible from its router alone.

    * ``mp_office`` — static client at a random spot on the floor; each
      AP's outage prevalence scales with its distance; light independent
      contention everywhere.
    * ``mp_oven`` — same office, but the first two APs are 2.4 GHz
      neighbors of a microwave oven (shared fate); the rest are 5 GHz.
    * ``mp_walk`` — a random-waypoint walk across the floor; whichever
      AP the client rounds away from dies, so the best path keeps
      changing.
    """
    if not 2 <= n_paths <= len(_MP_AP_POSITIONS):
        raise ValueError(
            f"n_paths must be in [2, {len(_MP_AP_POSITIONS)}]")
    if name not in {spec.name for spec in MULTIPATH_MIX}:
        raise ValueError(f"unknown multipath scenario {name!r}")
    rng = rng_router.stream("scenario.mp.params")
    phy = _phy(mimo_branches)
    pathloss = PathLossParams(exponent=3.3, shadowing_sigma_db=4.5)

    mobility: MobilityModel
    if name == "mp_walk":
        mobility = RandomWaypointMobility(
            rng_router.stream("scenario.mp.mobility"),
            floor=(40.0, 16.0), speed_range=(0.6, 1.8), pause_s=3.0)
        anchor = Position(20.0, 8.0)  # distance scaling uses the center
    else:
        client_pos = Position(float(rng.uniform(2.0, 38.0)),
                              float(rng.uniform(2.0, 14.0)))
        mobility = StaticPosition(client_pos)
        anchor = client_pos

    oven: Optional[MicrowaveOven] = None
    if name == "mp_oven":
        oven = MicrowaveOven(
            rng_router.stream("scenario.mp.oven"),
            episode_rate_hz=1.0 / float(rng.uniform(30.0, 90.0)),
            episode_duration_s=float(rng.uniform(20.0, 60.0)),
            duty_cycle=float(rng.uniform(0.5, 0.65)),
            penalty_db=float(rng.uniform(25.0, 35.0)),
            floor_penalty_db=float(rng.uniform(10.0, 18.0)))

    links: List[WifiLink] = []
    for i in range(n_paths):
        ap_pos = _MP_AP_POSITIONS[i]
        frac = min(anchor.distance_to(ap_pos) / 43.0, 1.0)
        on_24ghz = name == "mp_oven" and i < 2
        contention = CongestionProcess(
            rng_router.stream(f"scenario.mp.congestion.{i}"),
            mean_busy_s=float(rng.uniform(0.2, 0.6)),
            mean_idle_s=float(rng.uniform(3.0, 8.0)),
            busy_delay_s=float(rng.uniform(0.004, 0.012)),
            collision_prob=float(rng.uniform(0.1, 0.3)))
        config = LinkConfig(
            name=f"mp{i}",
            channel=(1 + 5 * i) if on_24ghz else 36 + 4 * i,
            band="2.4GHz" if on_24ghz else "5GHz",
            ap_position=ap_pos, pathloss=pathloss,
            gilbert=_mp_gilbert(rng, frac),
            phy=phy,
            shadowing_update_s=0.5 if name == "mp_walk" else 1.0)
        links.append(WifiLink(
            config, rng_router, mobility=mobility,
            interference=oven if on_24ghz else contention))
    return links
