"""Wired-side network substrate and the QoE-driven control plane.

Data plane:

* :mod:`repro.net.wan` — WAN path model (base delay + jitter + loss).
* :mod:`repro.net.lan` — enterprise LAN forwarding (switch fabric).
* :mod:`repro.net.sdn` — an SDN-capable switch with match-action rules,
  including the packet-replication action DiversiFi installs (Section
  5.2.3, [12]).
* :mod:`repro.net.middlebox` — the Click-style buffering middlebox of the
  "Unmodified AP" architecture (Section 5.3.2), with the start/stop
  retrieval protocol and the load-dependent latency of Section 6.4.

Control plane:

* :mod:`repro.net.topology` — multi-switch N-path topology graphs
  (server -> core -> edge_i -> ap_i -> client), event-driven.
* :mod:`repro.net.netmetrics` — per-port counters, rolling EWMA link
  metrics and the E-model QoE scorer the controller decides on.
* :mod:`repro.net.controller` — the periodic QoE controller driving
  per-flow rerouting, hedging with middlebox duplicate suppression, and
  RAIL-style always-on replication.
"""

from repro.net.controller import (
    CONTROLLER_MODES,
    ControllerConfig,
    ControllerStats,
    QoeController,
)
from repro.net.lan import LanSegment
from repro.net.middlebox import Middlebox, MiddleboxStats
from repro.net.netmetrics import (
    PortSample,
    PortStats,
    PortStatsReader,
    RollingLinkMetrics,
    link_mos,
)
from repro.net.sdn import FlowMatch, MatchAction, SdnSwitch
from repro.net.topology import (
    ClientCapture,
    RadioPort,
    StreamSource,
    Topology,
    TopologyPath,
    WiredHop,
    build_npath_topology,
)
from repro.net.wan import WanPath

__all__ = [
    "CONTROLLER_MODES",
    "ClientCapture",
    "ControllerConfig",
    "ControllerStats",
    "FlowMatch",
    "LanSegment",
    "MatchAction",
    "Middlebox",
    "MiddleboxStats",
    "PortSample",
    "PortStats",
    "PortStatsReader",
    "QoeController",
    "RadioPort",
    "RollingLinkMetrics",
    "SdnSwitch",
    "StreamSource",
    "Topology",
    "TopologyPath",
    "WanPath",
    "WiredHop",
    "build_npath_topology",
    "link_mos",
]
