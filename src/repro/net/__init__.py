"""Wired-side network substrate.

* :mod:`repro.net.wan` — WAN path model (base delay + jitter + loss).
* :mod:`repro.net.lan` — enterprise LAN forwarding (switch fabric).
* :mod:`repro.net.sdn` — an SDN-capable switch with match-action rules,
  including the packet-replication action DiversiFi installs (Section
  5.2.3, [12]).
* :mod:`repro.net.middlebox` — the Click-style buffering middlebox of the
  "Unmodified AP" architecture (Section 5.3.2), with the start/stop
  retrieval protocol and the load-dependent latency of Section 6.4.
"""

from repro.net.lan import LanSegment
from repro.net.middlebox import Middlebox, MiddleboxStats
from repro.net.sdn import FlowMatch, MatchAction, SdnSwitch
from repro.net.wan import WanPath

__all__ = [
    "FlowMatch",
    "LanSegment",
    "MatchAction",
    "Middlebox",
    "MiddleboxStats",
    "SdnSwitch",
    "WanPath",
]
