"""WAN path model.

A WAN path imposes a base propagation delay, lognormal jitter, and light
random loss.  Used by the NetTest study (calls between clients across 22
countries, directly or through cloud relays) and to position the WiFi hop's
contribution inside realistic end-to-end conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.packet import Packet
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class WanPathParams:
    """Delay/jitter/loss of one WAN direction."""

    base_delay_s: float = 0.040
    jitter_scale_s: float = 0.003
    loss_prob: float = 0.001
    #: heavier tail during overload (relay scenario): probability that a
    #: packet hits a congested queue and the extra delay it then suffers
    overload_prob: float = 0.0
    overload_delay_s: float = 0.150


class WanPath:
    """Forwards packets with stochastic delay; drops with ``loss_prob``.

    In event mode attach a ``deliver(packet)`` sink and call :meth:`send`;
    in trace mode call :meth:`sample_delay` / :meth:`sample_loss` directly.
    """

    def __init__(self, params: WanPathParams, rng: np.random.Generator,
                 sim: Optional[Simulator] = None,
                 sink: Optional[Callable[[Packet], None]] = None):
        self.params = params
        self._rng = rng
        self._sim = sim
        self._sink = sink
        self.forwarded = 0
        self.dropped = 0

    def sample_loss(self) -> bool:
        """True if the packet is lost on this path."""
        return bool(self._rng.random() < self.params.loss_prob)

    def sample_delay(self) -> float:
        """One packet's one-way delay on this path."""
        jitter = float(self._rng.lognormal(mean=0.0, sigma=1.0)
                       * self.params.jitter_scale_s)
        delay = self.params.base_delay_s + jitter
        if (self.params.overload_prob > 0.0
                and self._rng.random() < self.params.overload_prob):
            delay += float(self._rng.exponential(
                self.params.overload_delay_s))
        return delay

    def send(self, packet: Packet) -> None:
        """Event-mode forwarding to the attached sink."""
        if self._sim is None or self._sink is None:
            raise RuntimeError("WanPath not wired for event mode")
        if self.sample_loss():
            self.dropped += 1
            return
        self.forwarded += 1
        self._sim.call_in(self.sample_delay(), self._sink, packet)
