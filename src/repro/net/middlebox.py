"""The buffering middlebox of the "Unmodified AP" architecture.

A Click-style userspace forwarder (the paper's implementation: Click V2.1
on a quad-core i7): per-flow shallow head-drop buffers fed by the SDN
switch's replica stream.  The client, upon missing a packet on the primary
link, switches to the secondary AP and sends a **start** message; the
middlebox streams its buffered packets through the (stock, unmodified)
secondary AP until it receives **stop**.  This start-stop protocol is what
the paper's current implementation uses instead of precise per-sequence
selection, and is why the middlebox can still duplicate a few packets.

Drain semantics (the data-plane contract the control plane builds on):

* a **start** drains the buffer through the secondary AP at a light
  per-packet spacing, then streams live replicas;
* a **stop** arriving mid-drain cancels the in-flight forwards and puts
  the undelivered packets *back into the buffer* (head-dropping and
  counting if they no longer fit) — packets are forwarded, re-buffered
  or counted in ``buffer_drops``, never silently discarded;
* live replicas arriving while a drain is still pending are serialized
  *behind* it, so delivery to the secondary AP is sequence-monotone.

Service latency grows gently with the number of concurrent replicated
flows (Section 6.4: +1.1 ms at 1000 streams).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from repro.core.config import MiddleboxConfig
from repro.core.packet import Packet
from repro.sim.engine import Event, Simulator

#: per-packet spacing of a buffer drain (light serialization, well under
#: the 20 ms media spacing)
DRAIN_SPACING_S = 0.0002


@dataclass
class MiddleboxStats:
    """Counters for Table 3 / Section 6.4 accounting."""

    buffered: int = 0
    buffer_drops: int = 0
    forwarded: int = 0
    #: drained packets put back into the buffer by a mid-drain stop
    rebuffered: int = 0
    start_messages: int = 0
    stop_messages: int = 0
    retrieve_messages: int = 0


class _FlowBuffer:
    """Per-flow shallow head-drop buffer plus delivery state."""

    def __init__(self, depth: int):
        self.depth = depth
        self.queue: Deque[Packet] = deque()
        self.streaming = False
        #: forwards scheduled but not yet delivered, in delivery order
        self.pending: Deque[Tuple[Event, Packet]] = deque()
        #: absolute sim time of the last scheduled pending forward
        self.tail_time = 0.0


class Middlebox:
    """Buffering and start/stop retrieval for replicated real-time flows."""

    def __init__(self, sim: Simulator,
                 config: Optional[MiddleboxConfig] = None,
                 name: str = "mbox"):
        self.sim = sim
        # A fresh config per instance: a shared default-argument instance
        # would alias every default-constructed middlebox to one object
        # (the SER302-shaped stateful-default hazard).
        self.config = config if config is not None else MiddleboxConfig()
        self.name = name
        self.stats = MiddleboxStats()
        self._flows: Dict[str, _FlowBuffer] = {}
        self._sinks: Dict[str, Callable[[Packet], None]] = {}
        #: concurrent replicated streams registered (drives load latency)
        self.registered_streams = 0

    # ------------------------------------------------------------------
    # control plane

    def register_flow(self, flow_id: str,
                      sink: Callable[[Packet], None]) -> None:
        """Start replicating ``flow_id``; buffered copies go to ``sink``
        (the secondary AP's wired ingress) while streaming is on."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id!r} already registered")
        self._flows[flow_id] = _FlowBuffer(self.config.buffer_len)
        self._sinks[flow_id] = sink
        self.registered_streams += 1

    def deregister_flow(self, flow_id: str) -> None:
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            for event, _ in flow.pending:
                event.cancel()
            flow.pending.clear()
        self._sinks.pop(flow_id, None)
        self.registered_streams = max(self.registered_streams - 1, 0)

    def service_delay_s(self) -> float:
        """Current per-request latency: base + load-dependent component."""
        return (self.config.base_network_delay_s
                + self.config.base_queuing_delay_s
                + self.config.per_stream_delay_s * self.registered_streams)

    # ------------------------------------------------------------------
    # data plane

    def replica_arrival(self, packet: Packet) -> None:
        """A replica copy arrived from the SDN switch."""
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            return
        if flow.streaming:
            if flow.pending:
                # A drain is still in flight: serialize the live copy
                # behind it so delivery stays sequence-monotone (a live
                # forward overtaking still-scheduled buffered packets
                # would reorder the secondary AP's stream).
                self._schedule_forward(flow, packet, flow.tail_time
                                       + DRAIN_SPACING_S - self.sim.now)
                return
            # No drain pending: forward straight through.
            self._forward(packet)
            return
        if len(flow.queue) >= flow.depth:
            flow.queue.popleft()  # head drop
            self.stats.buffer_drops += 1
        flow.queue.append(packet)
        self.stats.buffered += 1

    def start(self, flow_id: str) -> None:
        """Client's start message: drain the buffer, then stream live."""
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"unknown flow {flow_id!r}")
        self.stats.start_messages += 1
        flow.streaming = True
        delay = self.service_delay_s()
        drained = list(flow.queue)
        flow.queue.clear()
        for i, packet in enumerate(drained):
            # Serialize the drain at a light per-packet spacing.
            self._schedule_forward(flow, packet,
                                   delay + i * DRAIN_SPACING_S)

    def retrieve(self, flow_id: str, seqs: Iterable[int]) -> int:
        """Explicit per-sequence selection (Section 5.2.5's 'in
        principle' mode): forward exactly the requested sequence numbers
        and nothing else.  Returns how many of them were found in the
        buffer (the rest were never replicated or already purged).

        Unlike :meth:`start`, this never duplicates: packets the client
        did not ask for stay buffered.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"unknown flow {flow_id!r}")
        self.stats.retrieve_messages += 1
        wanted = set(seqs)
        delay = self.service_delay_s()
        found = 0
        kept: Deque[Packet] = deque()
        for packet in flow.queue:
            if packet.seq in wanted:
                self.sim.call_in(delay + found * DRAIN_SPACING_S,
                                 self._forward, packet)
                found += 1
            else:
                kept.append(packet)
        flow.queue = kept
        return found

    def stop(self, flow_id: str) -> None:
        """Client's stop message: back to buffering.

        Packets still in flight from a pending drain are cancelled and
        put back into the buffer in order (head-dropping and counting
        any that no longer fit) — the old protocol let them fall on the
        floor uncounted.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"unknown flow {flow_id!r}")
        self.stats.stop_messages += 1
        flow.streaming = False
        if flow.pending:
            # Pending forwards are older than anything buffered since
            # (the buffer is only fed while not streaming), so they go
            # back at the head, in their original order.
            for event, packet in reversed(flow.pending):
                event.cancel()
                flow.queue.appendleft(packet)
                self.stats.rebuffered += 1
            flow.pending.clear()
            while len(flow.queue) > flow.depth:
                flow.queue.popleft()  # head drop
                self.stats.buffer_drops += 1

    # ------------------------------------------------------------------
    # internals

    def _schedule_forward(self, flow: _FlowBuffer, packet: Packet,
                          delay: float) -> None:
        """Queue one pending forward, keeping per-flow delivery FIFO."""
        time = self.sim.now + max(delay, 0.0)
        if flow.pending:
            time = max(time, flow.tail_time + DRAIN_SPACING_S)
        event = self.sim.call_at(time, self._deliver_pending, flow)
        flow.pending.append((event, packet))
        flow.tail_time = time

    def _deliver_pending(self, flow: _FlowBuffer) -> None:
        """Fire the oldest pending forward (events fire in FIFO order
        because :meth:`_schedule_forward` keeps times non-decreasing)."""
        if not flow.pending:
            return
        _, packet = flow.pending.popleft()
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        self.stats.forwarded += 1
        sink = self._sinks.get(packet.flow_id)
        if sink is not None:
            sink(packet)
