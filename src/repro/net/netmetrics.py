"""Per-port statistics and rolling link metrics for the control plane.

The controller's view of the network is the classic SDN one: it never
sees individual packets, only *port counters* polled on an interval
(loss, delay, queue depth — the stats OpenFlow ``port_stats`` replies
carry).  This module provides the two halves of that view:

* :class:`PortStats` — cumulative counters a data-plane element (the
  AP radio egress, a wired hop) increments as packets pass;
* :class:`RollingLinkMetrics` — the controller-side rolling estimate,
  fed with per-poll counter deltas and smoothed with an EWMA so one
  quiet interval does not erase the memory of a bad link.

The QoE scorer maps a link's rolling (loss, delay) into an E-model MOS
(:func:`link_mos`) — the same G.107 machinery :mod:`repro.voice.quality`
uses to score whole calls, so a controller decision threshold and a
call's final score speak the same units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.voice.quality import emodel_r_factor, r_to_mos


@dataclass
class PortStats:
    """Cumulative counters for one data-plane port.

    ``sent``/``delivered``/``delay_sum_s`` cover every transmission the
    port carried (data and probes alike — the controller estimates the
    *link*, not the flow); ``data_sent`` counts only flow packets, so
    bandwidth-cost accounting can exclude probe overhead.
    """

    sent: int = 0
    delivered: int = 0
    delay_sum_s: float = 0.0
    data_sent: int = 0
    queue_depth: int = 0

    def record(self, delivered: bool, delay_s: float,
               data: bool = True) -> None:
        """Account one transmission outcome."""
        self.sent += 1
        if data:
            self.data_sent += 1
        if delivered:
            self.delivered += 1
            self.delay_sum_s += delay_s

    def counters(self) -> Tuple[int, int, float]:
        """The cumulative (sent, delivered, delay_sum_s) triple."""
        return (self.sent, self.delivered, self.delay_sum_s)


@dataclass
class PortSample:
    """One poll's counter delta for a port (what the controller sees)."""

    sent: int
    delivered: int
    delay_sum_s: float
    queue_depth: int

    @property
    def loss_rate(self) -> float:
        """Window loss fraction (0.0 when the window carried nothing)."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.delivered / self.sent

    @property
    def mean_delay_s(self) -> float:
        """Window mean one-way delay over delivered packets."""
        if self.delivered == 0:
            return 0.0
        return self.delay_sum_s / self.delivered


class PortStatsReader:
    """Delta extraction for one port: cumulative counters -> per-poll
    :class:`PortSample`.  Keeps the last-read counters so every poll
    sees exactly the window since the previous one."""

    def __init__(self, stats: PortStats):
        self._stats = stats
        self._last: Tuple[int, int, float] = (0, 0, 0.0)

    def poll(self) -> PortSample:
        """The counter delta since the previous :meth:`poll`."""
        current = self._stats.counters()
        sent = current[0] - self._last[0]
        delivered = current[1] - self._last[1]
        delay_sum = current[2] - self._last[2]
        self._last = current
        return PortSample(sent=sent, delivered=delivered,
                          delay_sum_s=delay_sum,
                          queue_depth=self._stats.queue_depth)


@dataclass
class RollingLinkMetrics:
    """EWMA-smoothed rolling estimate of one link's loss and delay.

    ``alpha`` weights the newest window; an empty window (no packets
    carried, no probes answered) leaves the estimate untouched rather
    than pulling it toward zero — silence is not evidence of health.
    """

    alpha: float = 0.4
    loss_rate: float = 0.0
    mean_delay_s: float = 0.0
    queue_depth: int = 0
    samples: int = field(default=0)

    def update(self, sample: PortSample) -> None:
        """Fold one poll window into the rolling estimate."""
        self.queue_depth = sample.queue_depth
        if sample.sent == 0:
            return
        if self.samples == 0:
            self.loss_rate = sample.loss_rate
            self.mean_delay_s = sample.mean_delay_s
        else:
            self.loss_rate += self.alpha * (sample.loss_rate
                                            - self.loss_rate)
            if sample.delivered > 0:
                self.mean_delay_s += self.alpha * (sample.mean_delay_s
                                                   - self.mean_delay_s)
        self.samples += 1

    def mos(self, extra_one_way_delay_s: float = 0.05) -> float:
        """E-model MOS of this link's rolling state (see
        :func:`link_mos`)."""
        return link_mos(self.loss_rate,
                        self.mean_delay_s + extra_one_way_delay_s)


def link_mos(loss_rate: float, one_way_delay_s: float,
             mean_burst_len: float = 1.0) -> float:
    """E-model MOS for a link with the given rolling loss and delay.

    The same G.107 R-factor the voice pipeline scores calls with
    (:mod:`repro.voice.quality`), evaluated at the link's rolling loss
    and one-way delay; ``mean_burst_len`` defaults to random loss since
    poll counters carry no burst structure.
    """
    r = emodel_r_factor(loss_rate, one_way_delay_s, mean_burst_len)
    return r_to_mos(r)
