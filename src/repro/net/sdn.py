"""An SDN-capable switch with match-action rules.

DiversiFi's middlebox architecture (Figure 7(c)) has the client install a
match-action rule — via a controller API like [23] — that replicates its
real-time downlink flow: one copy to the client via the primary AP, one to
the middlebox.  The switch here implements a miniature OpenFlow-style
pipeline: ordered rules with flow matches and output/replicate actions,
plus counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.packet import Packet
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class FlowMatch:
    """Fields a rule can match on (None = wildcard)."""

    flow_id: Optional[str] = None

    def matches(self, packet: Packet) -> bool:
        return self.flow_id is None or packet.flow_id == self.flow_id


@dataclass
class MatchAction:
    """One rule: match -> output to one or more ports."""

    match: FlowMatch
    output_ports: List[str]
    priority: int = 0
    packets_matched: int = 0


class SdnSwitch:
    """Ordered match-action forwarding with per-rule counters."""

    def __init__(self, sim: Simulator, name: str = "sw0",
                 forwarding_delay_s: float = 0.0001):
        self.sim = sim
        self.name = name
        self.forwarding_delay_s = forwarding_delay_s
        self._ports: Dict[str, Callable[[Packet], None]] = {}
        self._rules: List[MatchAction] = []
        self.table_misses = 0

    def attach_port(self, port: str,
                    sink: Callable[[Packet], None]) -> None:
        """Connect a named output port to a sink callable."""
        self._ports[port] = sink

    def install_rule(self, rule: MatchAction) -> None:
        """Install a rule; higher priority wins, FIFO among equals."""
        for port in rule.output_ports:
            if port not in self._ports:
                raise ValueError(f"rule outputs to unknown port {port!r}")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)

    def remove_rules_for(self, flow_id: str) -> int:
        """Remove all rules matching exactly this flow id."""
        before = len(self._rules)
        self._rules = [r for r in self._rules
                       if r.match.flow_id != flow_id]
        return before - len(self._rules)

    def ingress(self, packet: Packet) -> None:
        """Process an arriving packet through the rule table.

        The replicate action emits a tagged copy per port; table misses are
        dropped (counted), as DiversiFi's deployment installs a default
        rule for all other traffic — modelled by a wildcard rule.
        """
        for rule in self._rules:
            if rule.match.matches(packet):
                rule.packets_matched += 1
                for i, port in enumerate(rule.output_ports):
                    copy = packet.copy_for_link(port, is_duplicate=(i > 0))
                    self.sim.call_in(self.forwarding_delay_s,
                                     self._ports[port], copy)
                return
        self.table_misses += 1
