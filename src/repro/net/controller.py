"""The QoE-driven SDN controller.

A control-plane process on the event engine, shaped like the QoE-routing
controllers of the related work: every ``poll_interval_s`` it

1. **probes** every candidate path (a few small transmissions per poll,
   so paths carrying no flow traffic still produce evidence),
2. **polls** per-port counters (loss, delay, queue depth) into
   :class:`~repro.net.netmetrics.RollingLinkMetrics`,
3. **scores** each path with the E-model MOS
   (:func:`~repro.net.netmetrics.link_mos`), and
4. **acts** through the ordinary :class:`~repro.net.sdn.SdnSwitch` /
   :class:`~repro.net.middlebox.Middlebox` APIs.

Three strategies share this loop — the head-to-head the evaluation runs:

* ``qoe-route`` — single active path, rerouted (with hysteresis) to the
  best-scoring candidate: dynamic selection, 1x bandwidth;
* ``hedge`` — DiversiFi-style: the flow rides the best path while a
  replica branch feeds the middlebox in front of the second-best path.
  The middlebox *suppresses duplicates* (buffers, forwards nothing)
  until the primary's rolling loss crosses a threshold, then the
  controller sends **start** and the buffered + live copies stream
  through the secondary AP until the primary recovers (**stop**);
* ``replicate`` — RAIL-style always-on replication over every path:
  maximum robustness, N x bandwidth, deduplicated at the client.

Controller decisions are observable: polls, reroutes, middlebox
start/stop and per-path MOS land in the active
:class:`~repro.obs.registry.MetricsRegistry` when one is collecting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.middlebox import Middlebox
from repro.net.netmetrics import PortStatsReader, RollingLinkMetrics
from repro.net.topology import Topology, TopologyPath
from repro.obs.registry import Counter, MetricsRegistry
from repro.obs.runtime import active_registry
from repro.sim.engine import Simulator

#: the three strategies the control plane can drive
CONTROLLER_MODES = ("qoe-route", "hedge", "replicate")


@dataclass(frozen=True)
class ControllerConfig:
    """The control loop's constants."""

    #: stats-poll / decision interval
    poll_interval_s: float = 0.5
    #: EWMA weight of the newest poll window
    ewma_alpha: float = 0.4
    #: MOS margin a challenger path must clear to trigger a reroute
    reroute_margin_mos: float = 0.12
    #: probe transmissions per path per poll
    probes_per_poll: int = 4
    probe_size_bytes: int = 64
    #: rolling primary loss that opens the middlebox valve (hedge mode)
    hedge_start_loss: float = 0.02
    #: rolling primary loss below which it closes again
    hedge_stop_loss: float = 0.005
    #: end-to-end delay beyond the WiFi hop folded into path MOS
    extra_one_way_delay_s: float = 0.05
    rule_priority: int = 10


@dataclass
class ControllerStats:
    """Control-plane accounting for one session."""

    polls: int = 0
    reroutes: int = 0
    probe_packets: int = 0
    mbox_starts: int = 0
    mbox_stops: int = 0
    #: path name -> last MOS (rendered by tests and the sweep driver)
    last_mos: Dict[str, float] = field(default_factory=dict)


class QoeController:
    """Periodic QoE-driven path control for one real-time flow."""

    def __init__(self, sim: Simulator, topology: Topology, flow_id: str,
                 mode: str, config: Optional[ControllerConfig] = None,
                 middlebox: Optional[Middlebox] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if mode not in CONTROLLER_MODES:
            raise ValueError(f"unknown controller mode {mode!r} "
                             f"(expected one of {CONTROLLER_MODES})")
        if mode == "hedge" and middlebox is None:
            raise ValueError("hedge mode needs a middlebox")
        self.sim = sim
        self.topology = topology
        self.flow_id = flow_id
        self.mode = mode
        self.config = config if config is not None else ControllerConfig()
        self.middlebox = middlebox
        self.stats = ControllerStats()
        self._paths: Tuple[TopologyPath, ...] = topology.paths
        if len(self._paths) < 2:
            raise ValueError("controller needs at least 2 candidate paths")
        self._metrics: Dict[str, RollingLinkMetrics] = {
            path.name: RollingLinkMetrics(alpha=self.config.ewma_alpha)
            for path in self._paths}
        self._readers: Dict[str, PortStatsReader] = {
            path.name: PortStatsReader(topology.radio(path.radio).stats)
            for path in self._paths}
        #: active path names, primary first
        self._active: Tuple[str, ...] = ()
        self._mbox_streaming = False
        # Instruments are resolved once (the poll loop is periodic).
        registry = metrics if metrics is not None else active_registry()
        self._m_polls: Optional[Counter] = None
        self._m_reroutes: Optional[Counter] = None
        self._m_mbox_toggles: Optional[Counter] = None
        self._registry = registry
        if registry is not None:
            labels = {"mode": mode}
            self._m_polls = registry.counter("controller.polls", **labels)
            self._m_reroutes = registry.counter("controller.reroutes",
                                                **labels)
            self._m_mbox_toggles = registry.counter(
                "controller.mbox_toggles", **labels)

    # ---------------------------------------------------------- control

    def start(self) -> None:
        """Install the initial rules and begin the poll loop.

        Initial path preference is association-style: strongest RSSI
        first (ties break on path order), exactly how a client would
        pick before any loss evidence exists.
        """
        initial = self.initial_preference()
        if self.mode == "qoe-route":
            self._activate((initial[0],))
        elif self.mode == "hedge":
            self._activate(tuple(initial[:2]))
        else:  # replicate: all paths, always
            self._activate(tuple(initial))
        self.sim.call_in(self.config.poll_interval_s, self._poll)

    def initial_preference(self) -> Tuple[str, ...]:
        """Path names ordered by RSSI at t=0, strongest first."""
        rssi = {path.name:
                self.topology.radio(path.radio).link.rssi_dbm(0.0)
                for path in self._paths}
        order = {path.name: i for i, path in enumerate(self._paths)}
        return tuple(sorted(rssi,
                            key=lambda name: (-rssi[name], order[name])))

    def path_metrics(self, name: str) -> RollingLinkMetrics:
        """The rolling metrics for one path (observability/tests)."""
        return self._metrics[name]

    @property
    def active_paths(self) -> Tuple[str, ...]:
        """Currently active path names, primary first."""
        return self._active

    # ------------------------------------------------------------- poll

    def _poll(self) -> None:
        self.stats.polls += 1
        if self._m_polls is not None:
            self._m_polls.inc()
        for path in self._paths:
            radio = self.topology.radio(path.radio)
            for _ in range(self.config.probes_per_poll):
                radio.probe(self.config.probe_size_bytes)
                self.stats.probe_packets += 1
            sample = self._readers[path.name].poll()
            self._metrics[path.name].update(sample)
        mos = {path.name: self._metrics[path.name].mos(
            self.config.extra_one_way_delay_s) for path in self._paths}
        self.stats.last_mos = mos
        if self._registry is not None:
            for name in sorted(mos):
                self._registry.gauge("controller.path_mos",
                                     mode=self.mode,
                                     path=name).set(round(mos[name], 4))
        if self.mode == "qoe-route":
            self._decide_route(mos)
        elif self.mode == "hedge":
            self._decide_hedge(mos)
        # replicate: nothing to decide — every path stays active.
        self.sim.call_in(self.config.poll_interval_s, self._poll)

    def _ranked(self, mos: Dict[str, float]) -> List[str]:
        """Path names best-first; ties break on path order (stable)."""
        order = {path.name: i for i, path in enumerate(self._paths)}
        return sorted(mos, key=lambda name: (-mos[name], order[name]))

    def _decide_route(self, mos: Dict[str, float]) -> None:
        current = self._active[0]
        best = self._ranked(mos)[0]
        if best != current and (mos[best]
                                > mos[current]
                                + self.config.reroute_margin_mos):
            self._activate((best,))
            self.stats.reroutes += 1
            if self._m_reroutes is not None:
                self._m_reroutes.inc()

    def _decide_hedge(self, mos: Dict[str, float]) -> None:
        # The hedge pair is static for the call (DiversiFi associates a
        # fixed primary + secondary); the poll loop only works the
        # duplicate-suppression valve: the middlebox streams while the
        # primary is actually losing packets, buffers otherwise.
        primary = self._active[0]
        loss = self._metrics[primary].loss_rate
        assert self.middlebox is not None
        if not self._mbox_streaming and loss >= self.config.hedge_start_loss:
            self.middlebox.start(self.flow_id)
            self._mbox_streaming = True
            self.stats.mbox_starts += 1
            if self._m_mbox_toggles is not None:
                self._m_mbox_toggles.inc()
        elif self._mbox_streaming and loss <= self.config.hedge_stop_loss:
            self.middlebox.stop(self.flow_id)
            self._mbox_streaming = False
            self.stats.mbox_stops += 1
            if self._m_mbox_toggles is not None:
                self._m_mbox_toggles.inc()

    # ------------------------------------------------------------ rules

    def _path_by_name(self, name: str) -> TopologyPath:
        for path in self._paths:
            if path.name == name:
                return path
        raise KeyError(name)

    def _activate(self, names: Tuple[str, ...]) -> None:
        """Install the data-plane rules for the named active paths."""
        self._active = names
        if self.mode == "hedge":
            self._install_hedge()
            return
        paths = [self._path_by_name(name) for name in names]
        self.topology.install_flow(self.flow_id, paths,
                                   priority=self.config.rule_priority)

    def _install_hedge(self) -> None:
        """Primary path + replica branch through the middlebox.

        The core switch replicates: one copy down the primary chain, one
        to the ``mbox`` port.  The middlebox's flow sink feeds the
        secondary edge switch, whose ordinary path rules carry released
        packets out of the secondary AP.
        """
        assert self.middlebox is not None
        primary = self._path_by_name(self._active[0])
        secondary = self._path_by_name(self._active[1])
        ingress = self.topology.ingress_switch
        # Rules for both chains; the core's computed port set is
        # overridden to (primary edge, middlebox port) so the replica
        # branch passes through the suppression buffer, not straight
        # down the secondary chain.
        override_ports = (primary.nodes[2], "mbox")
        self.topology.install_flow(
            self.flow_id, [primary, secondary],
            priority=self.config.rule_priority,
            overrides={ingress: override_ports})

    def register_hedge_flow(self) -> None:
        """Wire the middlebox for this flow (once, before :meth:`start`):
        a ``mbox`` port on the ingress switch and a flow sink into the
        secondary edge switch (the second-strongest path by initial
        RSSI, matching what :meth:`start` will activate)."""
        assert self.middlebox is not None
        secondary = self._path_by_name(self.initial_preference()[1])
        edge = secondary.nodes[2]
        self.topology.attach_sink_port(self.topology.ingress_switch,
                                       "mbox",
                                       self.middlebox.replica_arrival)
        self.middlebox.register_flow(
            self.flow_id, self.topology.switch(edge).ingress)
