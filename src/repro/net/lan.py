"""Enterprise LAN forwarding.

A LAN segment is effectively lossless with sub-millisecond, lightly
jittered forwarding delay.  It connects the replication point (source or
SDN switch) to the APs and the middlebox.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.packet import Packet
from repro.sim.engine import Simulator


class LanSegment:
    """A wired hop with deterministic-ish low latency."""

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 rng: np.random.Generator,
                 base_delay_s: float = 0.0005,
                 jitter_s: float = 0.0002,
                 name: str = "lan"):
        self.sim = sim
        self.name = name
        self._sink = sink
        self._rng = rng
        self.base_delay_s = base_delay_s
        self.jitter_s = jitter_s
        self.forwarded = 0

    def send(self, packet: Packet) -> None:
        """Forward ``packet`` to the sink after the LAN delay."""
        delay = self.base_delay_s + float(
            self._rng.uniform(0.0, self.jitter_s))
        self.forwarded += 1
        self.sim.call_in(delay, self._sink, packet)
