"""Multi-switch topology graph for the QoE-driven control plane.

The paper's unmodified-AP deployment is one SDN switch feeding two APs.
This module generalizes that data plane to an *N-path topology*: a
server host behind a core :class:`~repro.net.sdn.SdnSwitch`, one edge
switch + AP chain per candidate path, and a client that can hear every
AP — the shape of the related QoE-routing controllers (three-path
topologies with per-link metric collection).

Everything is event-driven on one :class:`~repro.sim.engine.Simulator`:

* wired hops (:class:`WiredHop`) forward with a small fixed delay;
* the AP radio egress (:class:`RadioPort`) transmits each packet over a
  live :class:`~repro.channel.link.WifiLink` (MAC retries, fading,
  interference) and meters every outcome into
  :class:`~repro.net.netmetrics.PortStats` — the counters the
  controller polls;
* the client (:class:`ClientCapture`) deduplicates by sequence number
  and renders the received stream as a :class:`~repro.core.packet.LinkTrace`
  for the voice-quality pipeline.

Rules travel through the ordinary :class:`~repro.net.sdn.SdnSwitch`
API: :meth:`Topology.install_flow` computes the per-switch output-port
sets for a set of active paths (replicating where paths branch) and
installs/replaces match-action rules accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace, Packet
from repro.core.types import FloatArray
from repro.net.netmetrics import PortStats
from repro.net.sdn import FlowMatch, MatchAction, SdnSwitch
from repro.sim.engine import Simulator
from repro.channel.link import WifiLink


@dataclass(frozen=True)
class TopologyPath:
    """One candidate server->client path through the graph.

    ``nodes`` is the full node sequence (``server`` .. ``client``);
    ``radio`` names the AP radio port that terminates it.
    """

    name: str
    nodes: Tuple[str, ...]
    radio: str

    @property
    def switches(self) -> Tuple[str, ...]:
        """The switch hops (every node except the two endpoints and the
        AP radio)."""
        return tuple(n for n in self.nodes[1:-1] if n != self.radio)


class WiredHop:
    """A fixed-delay wired link between two data-plane elements."""

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 delay_s: float = 0.0005):
        self.sim = sim
        self.delay_s = delay_s
        self._sink = sink
        self.forwarded = 0

    def send(self, packet: Packet) -> None:
        """Forward ``packet`` after the wire delay."""
        self.forwarded += 1
        self.sim.call_in(self.delay_s, self._sink, packet)


class RadioPort:
    """AP egress onto one WiFi link toward the client.

    Each send consults the live channel (fading, Gilbert bursts, MAC
    retries) via :meth:`WifiLink.transmit` and either schedules the
    client-side delivery or drops.  Every outcome is metered into
    :class:`PortStats`; ``queue_depth`` tracks copies in flight (sent
    but not yet delivered), the AP-queue observable the controller
    polls.  Probes (:meth:`probe`) sample the same channel without
    delivering anywhere, so the controller keeps fresh metrics for
    paths that carry no flow traffic.
    """

    def __init__(self, sim: Simulator, link: WifiLink,
                 sink: Callable[[Packet], None], name: str = ""):
        self.sim = sim
        self.link = link
        self.name = name or link.name
        self._sink = sink
        self.stats = PortStats()
        self._probe_seq = 0

    def send(self, packet: Packet) -> None:
        """Transmit one flow packet over the air."""
        record = self.link.transmit(packet.seq, self.sim.now,
                                    packet.size_bytes)
        self.stats.record(record.delivered, record.delay, data=True)
        if record.delivered:
            self.stats.queue_depth += 1
            self.sim.call_at(record.arrival_time, self._deliver, packet)

    def probe(self, size_bytes: int = 64) -> None:
        """Transmit one controller probe (metered, never delivered)."""
        self._probe_seq += 1
        record = self.link.transmit(self._probe_seq, self.sim.now,
                                    size_bytes)
        self.stats.record(record.delivered, record.delay, data=False)

    def _deliver(self, packet: Packet) -> None:
        self.stats.queue_depth = max(self.stats.queue_depth - 1, 0)
        self._sink(packet)


class ClientCapture:
    """The client's receive side: earliest arrival per sequence number.

    Copies beyond the first are counted as duplicates (the wasteful-
    duplication cost of replication strategies) and discarded.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._arrivals: Dict[int, float] = {}
        self.duplicates = 0

    def sink(self, packet: Packet) -> None:
        """Accept one delivered copy."""
        if packet.seq in self._arrivals:
            self.duplicates += 1
            return
        self._arrivals[packet.seq] = self.sim.now

    def trace(self, profile: StreamProfile, name: str = "client"
              ) -> LinkTrace:
        """Render received packets as a :class:`LinkTrace`."""
        n = profile.n_packets
        send_times: FloatArray = (np.arange(n)
                                  * profile.inter_packet_spacing_s)
        delivered = np.zeros(n, dtype=bool)
        delays = np.full(n, np.nan)
        for seq in sorted(self._arrivals):
            if 0 <= seq < n:
                delivered[seq] = True
                delays[seq] = self._arrivals[seq] - send_times[seq]
        return LinkTrace(name, send_times, delivered, delays)


class StreamSource:
    """The server-side media source: one packet every IPS seconds."""

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 profile: StreamProfile, flow_id: str = "rt0"):
        self.sim = sim
        self.profile = profile
        self.flow_id = flow_id
        self._sink = sink
        self._next_seq = 0

    def start(self) -> None:
        """Schedule the stream (self-rescheduling, bounded heap)."""
        self.sim.call_at(0.0, self._emit)

    def _emit(self) -> None:
        packet = Packet(seq=self._next_seq, send_time=self.sim.now,
                        size_bytes=self.profile.packet_size_bytes,
                        flow_id=self.flow_id)
        self._sink(packet)
        self._next_seq += 1
        if self._next_seq < self.profile.n_packets:
            self.sim.call_in(self.profile.inter_packet_spacing_s,
                             self._emit)


class Topology:
    """A named graph of switches, wired hops and AP radio ports.

    Node names are unique; a switch's output port toward a neighbor is
    named after that neighbor, so a path's rule chain is derivable from
    its node sequence alone.
    """

    def __init__(self, sim: Simulator, name: str = "topo"):
        self.sim = sim
        self.name = name
        self._switches: Dict[str, SdnSwitch] = {}
        self._radios: Dict[str, RadioPort] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._paths: Tuple[TopologyPath, ...] = ()
        self.ingress_switch = ""

    # ------------------------------------------------------------ build

    def add_switch(self, name: str) -> SdnSwitch:
        """Create one SDN switch node."""
        if name in self._switches:
            raise ValueError(f"duplicate switch {name!r}")
        switch = SdnSwitch(self.sim, name=name)
        self._switches[name] = switch
        self._adjacency.setdefault(name, [])
        return switch

    def connect(self, src: str, dst: str,
                delay_s: float = 0.0005) -> None:
        """Wire switch ``src`` to switch ``dst`` (port named ``dst``)."""
        hop = WiredHop(self.sim, self._switches[dst].ingress, delay_s)
        self._switches[src].attach_port(dst, hop.send)
        self._adjacency.setdefault(src, []).append(dst)

    def attach_radio(self, switch: str, name: str, link: WifiLink,
                     client: ClientCapture,
                     delay_s: float = 0.0005) -> RadioPort:
        """Terminate ``switch`` with an AP radio port toward the client."""
        if name in self._radios:
            raise ValueError(f"duplicate radio {name!r}")
        radio = RadioPort(self.sim, link, client.sink, name=name)
        hop = WiredHop(self.sim, radio.send, delay_s)
        self._switches[switch].attach_port(name, hop.send)
        self._radios[name] = radio
        self._adjacency.setdefault(switch, []).append(name)
        self._adjacency.setdefault(name, []).append("client")
        return radio

    def attach_sink_port(self, switch: str, port: str,
                         sink: Callable[[Packet], None]) -> None:
        """Attach an arbitrary sink (e.g. a middlebox) to a switch port."""
        self._switches[switch].attach_port(port, sink)

    def set_ingress(self, switch: str, src: str = "server") -> None:
        """Declare ``switch`` as the server's ingress (also records the
        ``src -> switch`` edge so :meth:`candidate_paths` can walk from
        the server endpoint)."""
        self.ingress_switch = switch
        neighbors = self._adjacency.setdefault(src, [])
        if switch not in neighbors:
            neighbors.append(switch)

    # ---------------------------------------------------------- queries

    def switch(self, name: str) -> SdnSwitch:
        """The switch object for ``name``."""
        return self._switches[name]

    def radio(self, name: str) -> RadioPort:
        """The radio port for ``name``."""
        return self._radios[name]

    def radios(self) -> Tuple[RadioPort, ...]:
        """All radio ports, in name order."""
        return tuple(self._radios[name] for name in sorted(self._radios))

    @property
    def paths(self) -> Tuple[TopologyPath, ...]:
        """The candidate paths recorded by the builder."""
        return self._paths

    def candidate_paths(self, src: str = "server",
                        dst: str = "client") -> Tuple[TopologyPath, ...]:
        """Enumerate simple ``src -> dst`` paths (deterministic DFS over
        name-sorted neighbors)."""
        found: List[TopologyPath] = []

        def walk(node: str, seen: Tuple[str, ...]) -> None:
            if node == dst:
                radio = seen[-2]   # the AP hop right before the client
                found.append(TopologyPath(
                    name=radio, nodes=seen, radio=radio))
                return
            for neighbor in sorted(self._adjacency.get(node, [])):
                if neighbor not in seen:
                    walk(neighbor, seen + (neighbor,))

        walk(src, (src,))
        return tuple(found)

    # ------------------------------------------------------ rule plumbing

    def ingress(self, packet: Packet) -> None:
        """Hand one server packet to the ingress switch."""
        self._switches[self.ingress_switch].ingress(packet)

    def port_map(self, paths: Sequence[TopologyPath]
                 ) -> Dict[str, Tuple[str, ...]]:
        """switch -> sorted output ports implied by the active paths."""
        ports: Dict[str, List[str]] = {}
        for path in paths:
            chain = [n for n in path.nodes[1:-1]]  # switches + radio
            for here, there in zip(chain, chain[1:]):
                outs = ports.setdefault(here, [])
                if there not in outs:
                    outs.append(there)
        return {switch: tuple(sorted(outs))
                for switch, outs in sorted(ports.items())}

    def install_flow(self, flow_id: str,
                     paths: Sequence[TopologyPath],
                     priority: int = 10,
                     overrides: Optional[Mapping[str, Sequence[str]]]
                     = None) -> None:
        """Install the flow's rules for the given active paths.

        Every switch touched by a previous install is wiped of this
        flow's exact-match rules first (wildcard rules survive, exactly
        like :meth:`SdnSwitch.remove_rules_for`).  ``overrides`` replaces
        the computed output-port set for named switches — the hook the
        controller uses to splice a middlebox port into a branch.
        """
        port_map: Dict[str, Tuple[str, ...]] = dict(self.port_map(paths))
        for switch, ports in sorted((overrides or {}).items()):
            port_map[switch] = tuple(ports)
        for name in sorted(self._switches):
            self._switches[name].remove_rules_for(flow_id)
        for name, ports in sorted(port_map.items()):
            self._switches[name].install_rule(MatchAction(
                FlowMatch(flow_id=flow_id), list(ports),
                priority=priority))


def build_npath_topology(sim: Simulator, links: Sequence[WifiLink],
                         client: ClientCapture,
                         core_edge_delay_s: float = 0.0005,
                         edge_ap_delay_s: float = 0.0005) -> Topology:
    """The canonical N-path graph: server -> core -> edge_i -> ap_i ->
    client, one chain per WiFi link.

    Returns the topology with ``paths`` populated (one
    :class:`TopologyPath` per link, in link order) and the core switch
    set as the server's ingress.
    """
    if len(links) < 2:
        raise ValueError("an N-path topology needs at least 2 links")
    topo = Topology(sim)
    topo.add_switch("core")
    topo.set_ingress("core")
    paths: List[TopologyPath] = []
    for i, link in enumerate(links):
        edge = f"edge{i}"
        ap = f"ap{i}"
        topo.add_switch(edge)
        topo.connect("core", edge, delay_s=core_edge_delay_s)
        topo.attach_radio(edge, ap, link, client,
                          delay_s=edge_ap_delay_s)
        paths.append(TopologyPath(
            name=ap, nodes=("server", "core", edge, ap, "client"),
            radio=ap))
    topo._paths = tuple(paths)
    return topo
