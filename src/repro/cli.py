"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig8                 # default (fast) run counts
    python -m repro fig2a --runs 458     # paper-scale
    python -m repro fig8 --jobs 4        # parallel over 4 processes
    python -m repro fig8 --cache-dir ~/.cache/repro   # reuse results
    python -m repro table1 --seed 7
    python -m repro all                  # everything, fast scale

Each command prints the same rows/series the paper reports (the renderers
in :mod:`repro.analysis.report`).  Commands built on :mod:`repro.runner`
additionally print a ``[runner: ...]`` telemetry footer with the batch
digest — identical for serial, ``--jobs N`` and warm-cache executions.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import experiments
from repro.obs import merge_metrics_json, to_canonical_json
from repro.runner import BatchResult, ResultCache, runner_context

#: commands whose dataset can be produced by the vectorized batch
#: backend (--backend batch); all share the Section 4 wild population
_BATCH_COMMANDS = frozenset(
    {"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig4", "fig5", "fig6"})

#: whole-population study commands (repro.studies.population): sized by
#: --calls, sharded into runner blocks, reduced to streaming sketches
_POPULATION_COMMANDS = frozenset({"provider", "nettest"})

#: one full NetTest deployment (Table 2's call total)
_NETTEST_FULL_CALLS = 9224

#: command -> (runner(runs, seed) -> result, default runs, description)
_COMMANDS: Dict[str, Tuple[Callable, Optional[int], str]] = {
    "table1": (lambda runs, seed: experiments.run_table1(
        n_calls=runs or 120_000, seed=seed),
        None, "provider-year PCR subset analysis"),
    "table2": (lambda runs, seed: experiments.run_table2(
        seed=seed, scale=(runs or 2306) / 9224.0),
        None, "NetTest PCR by call category"),
    "table3": (lambda runs, seed: experiments.run_table3(
        n_events=runs or 100, seed0=seed),
        100, "recovery-delay breakdown (AP vs middlebox)"),
    "fig1": (lambda runs, seed: experiments.run_figure1(seed=seed),
             None, "BSSID availability survey"),
    "fig2a": (lambda runs, seed, backend="event": experiments.run_figure2a(
        n_runs=runs or 60, seed=seed, backend=backend), 60,
        "cross-link vs stronger/better selection"),
    "fig2b": (lambda runs, seed, backend="event": experiments.run_figure2b(
        n_runs=runs or 60, seed=seed, backend=backend), 60,
        "cross-link vs Divert"),
    "fig2c": (lambda runs, seed, backend="event": experiments.run_figure2c(
        n_runs=runs or 60, seed=seed, backend=backend), 60,
        "cross-link vs temporal replication"),
    "fig2d": (lambda runs, seed, backend="event": experiments.run_figure2d(
        n_runs=runs or 30, seed=seed, backend=backend), 30,
        "on top of MIMO"),
    "fig2e": (lambda runs, seed, backend="event": experiments.run_figure2e(
        n_runs=runs or 16, seed=seed, backend=backend), 16,
        "5 Mbps streams"),
    "fig3": (lambda runs, seed: experiments.run_figure3(seed=seed),
             None, "two-weak-links example"),
    "fig4": (lambda runs, seed, backend="event": experiments.run_figure4(
        n_runs=runs or 60, seed=seed, backend=backend), 60,
        "loss auto- vs cross-correlation"),
    "fig5": (lambda runs, seed, backend="event": experiments.run_figure5(
        n_runs=runs or 60, seed=seed, backend=backend), 60,
        "burst-length distributions"),
    "fig6": (lambda runs, seed, backend="event": experiments.run_figure6(
        n_runs_per_scenario=runs or 15, seed=seed, backend=backend), 15,
        "PCR by impairment"),
    "fig8": (lambda runs, seed: experiments.run_figure8(
        n_runs=runs or 30, seed0=seed), 30,
        "DiversiFi loss recovery (office)"),
    "fig9": (lambda runs, seed: experiments.run_figure9(
        n_runs=runs or 30, seed0=seed), 30, "DiversiFi burst suppression"),
    "fig10": (lambda runs, seed: experiments.run_figure10(
        n_runs=runs or 12, seed0=100 + seed), 12,
        "competing TCP throughput"),
    "sec63": (lambda runs, seed: experiments.run_section63_overhead(
        n_runs=runs or 30, seed0=seed), 30, "duplication overhead"),
    "sec64": (lambda runs, seed: experiments.run_section64_scalability(
        n_events=runs or 10, seed0=seed), 10, "middlebox scalability"),
    "uplink": (lambda runs, seed: experiments.run_uplink(
        n_runs=runs or 5, seed=seed), 5,
        "uplink DiversiFi (extension)"),
    "nlinks": (lambda runs, seed: experiments.run_nlink_sweep(
        n_runs=runs or 10, seed=seed), 10,
        "diversity vs number of links (extension)"),
    "controller": (lambda runs, seed: experiments.run_controller_sweep(
        n_runs=runs or 8, seed=seed), 8,
        "QoE control plane: hedge vs route vs replicate (extension)"),
    "fec": (lambda runs, seed: experiments.run_fec_comparison(
        n_runs=runs or 10, seed=seed), 10,
        "FEC coding vs replication (extension)"),
    "gaming": (lambda runs, seed: experiments.run_gaming(
        n_runs=runs or 3, seed=seed + 11), 3,
        "cloud-gaming frame stalls (extension)"),
    "provider": (lambda runs, seed, calls=None:
                 experiments.run_provider_population(
                     n_calls=calls or 1_000_000, seed=seed),
                 None, "provider year at population scale "
                       "(--calls, default 1M)"),
    "nettest": (lambda runs, seed, calls=None:
                experiments.run_nettest_population(
                    seed=seed,
                    scale=(calls or _NETTEST_FULL_CALLS)
                    / _NETTEST_FULL_CALLS),
                None, "NetTest study sharded over runner blocks "
                      "(--calls, default 9224)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DiversiFi (CoNEXT '15) tables and figures.")
    parser.add_argument("command",
                        choices=sorted(_COMMANDS) + ["list", "all"],
                        help="experiment id, 'list', or 'all'")
    parser.add_argument("--runs", type=int, default=None,
                        help="run count override (per experiment)")
    parser.add_argument("--calls", type=int, default=None,
                        help="population size for the whole-population "
                             "study commands (provider: calls "
                             "generated, default 1000000; nettest: "
                             "scaled against the 9224-call deployment)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1 = serial in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed on-disk result cache")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass cached results and recompute")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="after the command completes, prune the "
                             "--cache-dir store to at most N bytes "
                             "(least-recently-used entries first)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the command's merged metrics as "
                             "canonical JSON ('-' for stdout); "
                             "byte-identical across --jobs and cache "
                             "modes")
    parser.add_argument("--backend", choices=("event", "batch"),
                        default="event",
                        help="simulation backend for the Section 4 wild "
                             "population (fig2a-2e, fig4, fig5, fig6): "
                             "'event' runs the per-call reference "
                             "engine, 'batch' renders vectorized "
                             "whole-population blocks")
    return parser


def _runner_footer(name: str, batches: List[BatchResult], jobs: int,
                   out) -> None:
    """Telemetry for the runner batches a command executed.

    The digest folds the per-batch digests in execution order; it is a
    pure function of the merged results, so serial, parallel and
    warm-cache invocations of the same command print the same digest.
    """
    if not batches:
        return
    total = sum(b.stats.total for b in batches)
    executed = sum(b.stats.executed for b in batches)
    cached = sum(b.stats.cache_hits + b.stats.memo_hits for b in batches)
    digest = hashlib.sha256(
        "\n".join(b.digest for b in batches).encode("ascii")).hexdigest()
    print(f"[runner {name}: jobs={jobs} runs={total} executed={executed} "
          f"cached={cached} digest={digest}]", file=out)


def _metrics_json(batches: List[BatchResult]) -> str:
    """Canonical JSON of all batch metrics, merged in execution order.

    Batches are appended by the ``on_batch`` hook as the experiment
    driver issues them, and each batch's results are already in spec
    order, so the merge order — and therefore the exported bytes — is a
    pure function of the command, independent of ``--jobs`` and caching.
    """
    merged = merge_metrics_json(
        [result.metrics_json
         for batch in batches for result in batch.results])
    return to_canonical_json(merged)


def _write_metrics(batches: List[BatchResult], metrics_out: str,
                   out) -> None:
    text = _metrics_json(batches) + "\n"
    if metrics_out == "-":
        out.write(text)
        return
    with open(metrics_out, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)


def run_command(name: str, runs: Optional[int], seed: int,
                out=sys.stdout, jobs: int = 1,
                cache_dir: Optional[str] = None,
                no_cache: bool = False,
                metrics_out: Optional[str] = None,
                cache_max_bytes: Optional[int] = None,
                backend: str = "event",
                calls: Optional[int] = None) -> None:
    """Execute one experiment and print its rendering."""
    runner, _, description = _COMMANDS[name]
    if backend != "event" and name not in _BATCH_COMMANDS:
        raise SystemExit(
            f"--backend {backend} is only available for "
            f"{', '.join(sorted(_BATCH_COMMANDS))}")
    if calls is not None and name not in _POPULATION_COMMANDS:
        raise SystemExit(
            f"--calls is only available for "
            f"{', '.join(sorted(_POPULATION_COMMANDS))}")
    batches: List[BatchResult] = []
    # Elapsed wall-clock reporting is the one sanctioned clock read: it
    # never feeds back into simulated behaviour, only into the "[... 3.2s]"
    # status line, so the determinism lint is suppressed explicitly.
    start = time.perf_counter()   # reprolint: disable=DET002
    with runner_context(jobs=jobs, cache_dir=cache_dir,
                        no_cache=no_cache, on_batch=batches.append):
        if name in _BATCH_COMMANDS:
            result = runner(runs, seed, backend=backend)
        elif name in _POPULATION_COMMANDS:
            result = runner(runs, seed, calls=calls)
        else:
            result = runner(runs, seed)
    elapsed = time.perf_counter() - start   # reprolint: disable=DET002
    print(result.render(), file=out)
    print(f"[{name}: {description}; {elapsed:.1f}s]", file=out)
    _runner_footer(name, batches, jobs, out)
    if metrics_out is not None:
        _write_metrics(batches, metrics_out, out)
    if cache_max_bytes is not None and cache_dir is not None:
        store = ResultCache(cache_dir)
        removed = store.prune(cache_max_bytes)
        print(f"[cache {name}: pruned {removed} "
              f"entr{'y' if removed == 1 else 'ies'}; "
              f"{store.size_bytes()} bytes retained]", file=out)


def main(argv=None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in _COMMANDS)
        for name in sorted(_COMMANDS):
            _, default_runs, description = _COMMANDS[name]
            runs = f"(default runs: {default_runs})" if default_runs else ""
            print(f"{name.ljust(width)}  {description} {runs}", file=out)
        return 0
    if args.command == "all":
        if args.metrics_out is not None:
            print("--metrics-out applies to a single command, not 'all'",
                  file=sys.stderr)
            return 2
        names = sorted(_COMMANDS)
        for i, name in enumerate(names):
            print(f"\n===== {name} =====", file=out)
            # Prune once, after the last command, so earlier artifacts'
            # entries stay warm for any command that shares them.
            prune = args.cache_max_bytes if i == len(names) - 1 else None
            run_command(name, args.runs, args.seed, out=out,
                        jobs=args.jobs, cache_dir=args.cache_dir,
                        no_cache=args.no_cache, cache_max_bytes=prune)
        return 0
    run_command(args.command, args.runs, args.seed, out=out,
                jobs=args.jobs, cache_dir=args.cache_dir,
                no_cache=args.no_cache, metrics_out=args.metrics_out,
                cache_max_bytes=args.cache_max_bytes,
                backend=args.backend, calls=args.calls)
    return 0


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
