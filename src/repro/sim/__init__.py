"""Discrete-event simulation substrate.

Everything in the DiversiFi reproduction runs on this engine: channels,
MAC/AP behaviour, the single-NIC client, middleboxes, and traffic sources.
The engine is deliberately small — an event heap with a simulated clock and
deterministic tie-breaking — plus a coroutine-style :class:`Process`
abstraction and named, reproducible random streams.

Public API::

    from repro.sim import Simulator, Process, RandomRouter

    sim = Simulator()
    sim.call_at(1.5, lambda: print("fired at", sim.now))
    sim.run(until=10.0)
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import Process, Timeout, WaitEvent
from repro.sim.random import RandomRouter
from repro.sim.sanitize import (
    DeterminismDigest,
    HeapOrderError,
    SanitizerError,
    StreamSharingError,
    sanitizer_enabled,
)

__all__ = [
    "DeterminismDigest",
    "Event",
    "HeapOrderError",
    "Process",
    "RandomRouter",
    "SanitizerError",
    "SimulationError",
    "Simulator",
    "StreamSharingError",
    "Timeout",
    "WaitEvent",
    "sanitizer_enabled",
]
