"""Discrete-event simulation substrate.

Everything in the DiversiFi reproduction runs on this engine: channels,
MAC/AP behaviour, the single-NIC client, middleboxes, and traffic sources.
The engine is deliberately small — an event heap with a simulated clock and
deterministic tie-breaking — plus a coroutine-style :class:`Process`
abstraction and named, reproducible random streams.

Public API::

    from repro.sim import Simulator, Process, RandomRouter

    sim = Simulator()
    sim.call_at(1.5, lambda: print("fired at", sim.now))
    sim.run(until=10.0)
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import Process, Timeout, WaitEvent
from repro.sim.random import RandomRouter

__all__ = [
    "Event",
    "Process",
    "RandomRouter",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WaitEvent",
]
