"""Structured event tracing for simulation debugging and timelines.

An :class:`EventLog` collects timestamped, typed events from any
component (the DiversiFi client and WifiManager emit into one when given
a log).  Besides debugging, logs power the session timeline rendering
used in examples: *what did the client actually do during that call?*
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One logged event."""

    time: float
    source: str
    kind: str
    detail: str = ""


class EventLog:
    """An append-only, queryable event record.

    Bounded logs evict from a ``deque(maxlen=capacity)`` so recording
    stays O(1) per event; long sessions with a small capacity used to
    pay O(n) per append via ``list.pop(0)``.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0

    def record(self, time: float, source: str, kind: str,
               detail: str = "") -> None:
        """Append one event (drops oldest beyond ``capacity``)."""
        if self.capacity is not None and len(self._events) >= self.capacity:
            # maxlen makes the append below evict the oldest entry.
            self.dropped += 1
        self._events.append(TraceEvent(time=time, source=source,
                                       kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events in the half-open interval ``[start, end)``.

        Half-open slices tile a timeline without double-counting:
        ``between(0, 5) + between(5, 10)`` sees every event exactly
        once.  (The old inclusive-on-both-ends behaviour counted an
        event at ``t=5`` in both windows, which skewed every per-window
        aggregate built on adjacent slices.)
        """
        return [e for e in self._events if start <= e.time < end]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render_timeline(self, limit: int = 50) -> str:
        """A human-readable timeline (most recent ``limit`` events)."""
        lines = [f"{'t (s)':>10s}  {'source':12s} {'event':20s} detail"]
        recent = list(self._events)[-limit:]
        for event in recent:
            lines.append(f"{event.time:10.4f}  {event.source:12s} "
                         f"{event.kind:20s} {event.detail}")
        if len(self._events) > limit:
            lines.insert(1, f"... ({len(self._events) - limit} earlier "
                            f"events elided)")
        return "\n".join(lines)
