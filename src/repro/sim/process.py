"""Coroutine-style processes on top of the event engine.

A :class:`Process` wraps a generator that yields *commands*:

* ``Timeout(delay)`` — resume after ``delay`` simulated seconds.
* ``WaitEvent(signal)`` — resume when the :class:`Signal` is triggered; the
  value passed to :meth:`Signal.trigger` is sent back into the generator.

This gives sequential-looking protocol code (the DiversiFi client, the PSM
state machine, TCP sources) without hand-writing callback chains::

    def sender(sim, link):
        for seq in range(6000):
            link.send(make_packet(seq))
            yield Timeout(0.020)

    Process(sim, sender(sim, link))
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Timeout:
    """Yield from a process generator to sleep for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = delay


class Signal:
    """A one-to-many wakeup channel processes can wait on."""

    def __init__(self) -> None:
        self._waiters: List["Process"] = []

    def add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def trigger(self, value: Any = None) -> int:
        """Wake all waiting processes, sending ``value`` into each.

        Returns the number of processes woken.
        """
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)
        return len(waiters)


class WaitEvent:
    """Yield from a process generator to block on a :class:`Signal`."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """Drives a generator of Timeout/WaitEvent commands on a simulator."""

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        #: value returned by the generator (via ``return x``), if any
        self.result: Any = None
        self._pending_event: Optional[Event] = None
        # Start at the current instant, but via the queue so that processes
        # created inside an event handler do not run re-entrantly.
        self._pending_event = sim.call_in(0.0, self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._sim.call_in(0.0, self._throw, Interrupted(cause))

    def _throw(self, exc: Exception) -> None:
        if not self.alive:
            return
        try:
            command = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop)
            return
        except Interrupted:
            self._finish(None)
            return
        self._dispatch(command)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._pending_event = self._sim.call_in(
                command.delay, self._resume, None)
        elif isinstance(command, WaitEvent):
            command.signal.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command "
                f"{command!r}; yield Timeout or WaitEvent")

    def _finish(self, stop: Optional[StopIteration]) -> None:
        self.alive = False
        if stop is not None:
            self.result = stop.value
