"""Named, reproducible random streams.

Every stochastic component (each link's Gilbert–Elliott chain, each fading
process, the jitter of each WAN path...) draws from its *own* named stream so
that changing one component's consumption pattern never perturbs another —
the property that makes paired strategy comparisons valid: two strategies
evaluated against ``RandomRouter(seed)`` with the same stream names see
*identical* channel realizations.

Streams are ``numpy.random.Generator`` instances seeded by hashing the root
seed with the stream name through ``numpy.random.SeedSequence``.
"""

from __future__ import annotations

import sys
import zlib
from typing import Dict, Iterable, Optional

import numpy as np

from repro.sim.sanitize import StreamOwnerRegistry, sanitizer_enabled


class RandomRouter:
    """Factory and cache of named ``numpy.random.Generator`` streams.

    With ``REPRO_SANITIZE=1`` the router also records which call site
    first requested each stream name and raises
    :class:`repro.sim.sanitize.StreamSharingError` when a different call
    site requests the same name — two components sharing one generator
    breaks stream isolation silently, which is far worse than failing
    loudly.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._owners: Optional[StreamOwnerRegistry] = \
            StreamOwnerRegistry() if sanitizer_enabled() else None

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence, and the
        generator object is cached so repeated calls continue the sequence.
        """
        if self._owners is not None:
            caller = sys._getframe(1)
            self._owners.claim(
                name, (caller.f_code.co_filename, caller.f_lineno))
        generator = self._streams.get(name)
        if generator is None:
            # Stable across processes/platforms: derive a child key from a
            # CRC of the name rather than Python's salted hash().
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(name_key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, salt: str) -> "RandomRouter":
        """A router whose streams are all disjoint from this one's.

        Used to give each of many runs (e.g. the 458 simulated calls) its own
        independent randomness while staying reproducible from one root seed.
        """
        salt_key = zlib.crc32(salt.encode("utf-8"))
        return RandomRouter(seed=(self.seed * 1_000_003 + salt_key)
                            % (2 ** 63))

    def streams_created(self) -> Iterable[str]:
        """Names of the streams drawn from so far (for tests/debugging)."""
        return tuple(self._streams)
