"""Opt-in runtime invariant sanitizer (``REPRO_SANITIZE=1``).

The static lint suite (``tools/reprolint``) catches determinism hazards it
can see in the source; this module catches the ones only visible at run
time.  With ``REPRO_SANITIZE=1`` in the environment:

* :class:`repro.sim.engine.Simulator` asserts heap order / causality on
  every popped event and folds the executed event sequence into a
  :class:`DeterminismDigest` — two runs of the same scenario and seed must
  produce identical digests, and a digest mismatch pinpoints the first
  divergent run.
* :class:`repro.sim.random.RandomRouter` records the call site that first
  requested each stream name and raises :class:`StreamSharingError` when a
  *different* call site requests the same name — two components sharing
  one generator is exactly the coupling the named-stream design forbids.

The sanitizer is off by default and costs nothing when disabled: both
classes read the environment once at construction time.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ''/'0'."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class SanitizerError(AssertionError):
    """A runtime determinism invariant was violated."""


class StreamSharingError(SanitizerError):
    """Two distinct call sites requested the same RNG stream name."""


class HeapOrderError(SanitizerError):
    """The event queue yielded events out of time order."""


class DeterminismDigest:
    """A rolling hash of the executed event sequence.

    Each executed event contributes ``(time, seq, callback label)``; the
    final hex digest is a compact fingerprint of *everything the simulator
    did, in order*.  Same scenario + same seed => same digest, bit for
    bit; any divergence (an unrouted RNG, wall-clock leakage, unordered
    iteration) changes it.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        #: number of events folded in so far
        self.events = 0

    @staticmethod
    def _label(callback: object) -> str:
        # Never repr(): bound-method reprs embed memory addresses, which
        # would make the digest differ across identical runs.
        name = getattr(callback, "__qualname__", None)
        return name if name else type(callback).__name__

    def update(self, time: float, seq: int, callback: object) -> None:
        record = f"{time!r}|{seq}|{self._label(callback)}\n"
        self._hash.update(record.encode("utf-8"))
        self.events += 1

    def hexdigest(self) -> str:
        """Current digest, e.g. ``'3f2a...#1042'`` (hash + event count)."""
        return f"{self._hash.hexdigest()}#{self.events}"


class StreamOwnerRegistry:
    """Maps stream names to the call site that first requested them."""

    def __init__(self) -> None:
        self._owners: dict = {}

    def claim(self, name: str, site: tuple) -> None:
        """Record ``site`` as the owner of ``name``; raise on conflict.

        ``site`` is ``(filename, lineno)`` of the requesting call.  The
        same site asking again (e.g. inside a loop) is fine — that is one
        component continuing its stream.  A *different* site asking for a
        claimed name means two components would share a generator, so one
        component's draws would perturb the other's.
        """
        owner: Optional[tuple] = self._owners.get(name)
        if owner is None:
            self._owners[name] = site
        elif owner != site:
            raise StreamSharingError(
                f"stream '{name}' is already owned by {owner[0]}:{owner[1]} "
                f"but was requested from {site[0]}:{site[1]}; give each "
                "component its own stream name")
