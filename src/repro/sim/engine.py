"""The discrete-event simulation engine.

A :class:`Simulator` owns a simulated clock and a priority queue of pending
events.  Events scheduled for the same instant fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence number),
which keeps every run bit-for-bit deterministic — a property the whole
evaluation relies on for paired strategy comparisons.

Times are floats in **seconds**.  The engine enforces causality: an event may
never be scheduled in the past.

With ``REPRO_SANITIZE=1`` in the environment the engine additionally
asserts heap order on every pop and maintains a determinism digest of the
executed event sequence (see :mod:`repro.sim.sanitize`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.sanitize import (
    DeterminismDigest,
    HeapOrderError,
    sanitizer_enabled,
)


class SimulationError(RuntimeError):
    """Raised for engine misuse (scheduling in the past, running twice...)."""


class Event:
    """A handle for a scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_in`; the
    holder may :meth:`cancel` it before it fires.  Cancellation is O(1): the
    event is flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """An event-driven simulator with a float clock (seconds).

    Usage::

        sim = Simulator()
        sim.call_in(0.02, handler, packet)
        sim.run(until=120.0)
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: number of events executed so far (observability / tests)
        self.events_executed = 0
        #: high-water mark of the pending-event queue (observability)
        self.peak_queue_depth = 0
        # Sanitizer state is resolved once at construction so the hot loop
        # pays a single attribute check when disabled.
        self._sanitize = sanitizer_enabled()
        self._digest: Optional[DeterminismDigest] = \
            DeterminismDigest() if self._sanitize else None

    @property
    def sanitizing(self) -> bool:
        """True when this simulator was built with ``REPRO_SANITIZE=1``."""
        return self._sanitize

    def determinism_digest(self) -> Optional[str]:
        """Digest of the event sequence executed so far.

        Two runs of the same scenario and seed must return the same
        string; a mismatch means nondeterminism leaked in.  ``None``
        unless the sanitizer is enabled.
        """
        return self._digest.hexdigest() if self._digest else None

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self._now

    def call_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={time:.9f} < now={self._now:.9f}")
        event = Event(max(time, self._now), next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        if len(self._queue) > self.peak_queue_depth:
            self.peak_queue_depth = len(self._queue)
        return event

    def call_in(self, delay: float, callback: Callable[..., Any],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if self._digest is not None:
                if event.time < self._now - 1e-12:
                    raise HeapOrderError(
                        f"event queue yielded t={event.time:.9f} after the "
                        f"clock reached t={self._now:.9f}; an Event.time "
                        "was mutated after scheduling or the heap was "
                        "corrupted")
                self._digest.update(event.time, event.seq, event.callback)
            self._now = event.time
            event.callback(*event.args)
            self.events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Events scheduled exactly at ``until`` still fire.  Returns the final
        simulated time (``until`` if the horizon was reached with events
        still pending).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
            if until is not None and self._now < until and not self._queue:
                self._now = until
        finally:
            self._running = False
        return self._now

    def record_metrics(self, registry: Any, **labels: Any) -> None:
        """Flush engine telemetry into a ``MetricsRegistry``.

        Call once, after the run: the counter increment is the run's
        cumulative event count, so counters merge additively across
        runs while the peak-depth gauge keeps last-write semantics.
        ``registry`` is typed loosely to keep the engine importable
        without :mod:`repro.obs`.
        """
        registry.counter("sim.events_executed", **labels).inc(
            self.events_executed)
        registry.gauge("sim.peak_queue_depth", **labels).set(
            self.peak_queue_depth)
        registry.gauge("sim.final_time_s", **labels).set(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.6f} pending={len(self._queue)} "
                f"executed={self.events_executed}>")
