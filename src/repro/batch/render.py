"""Whole-population trace rendering as numpy arrays.

Generalizes :class:`repro.channel.fast.FastLinkRenderer` from one static
link of one call to *B sessions x 2 links x T packet-slots*, adding the
pieces the per-call renderer does not cover: mobility / environment
drift (piecewise-constant slow state on the shadowing-update grid),
shared and per-link interference processes, MIMO selection diversity,
temporal-offset replica copies — and, crucially, the *per-attempt*
structure of the MAC retry burst.  The event MAC re-evaluates the
channel at every retry, and the burst (mean exponential backoff plus
airtime, ~15 ms end to end) straddles mains half-cycles of a microwave
oven and the tail of a deep Rayleigh fade; collapsing it to
``p_slot^(R+1)`` overestimates loss severalfold in fading- or
oven-dominated regimes.  The renderer therefore evaluates loss on
``(retry_limit + 1) x T`` attempt-time matrices: fading is evolved
across the burst with per-gap AR(1) steps, and Gilbert / oven /
congestion state is sampled at each attempt's expected transmit time.

Determinism contract (the paired-comparison methodology): every random
quantity is drawn from the *same* named :class:`~repro.sim.random.RandomRouter`
streams the event path uses, so the slow channel state is sample-path
identical between backends for the same ``(seed, index)``:

* ``scenario.params`` / ``scenario.pick`` / ``scenario.mobility`` —
  consumed by :func:`repro.scenarios.scenario_setup` before rendering;
* ``link.{name}.gilbert`` — sojourn draws replicate
  :class:`~repro.channel.gilbert.GilbertElliott`'s exact order;
* ``link.{name}.shadow`` — the initial draw plus AR(1) redraw sequence
  replicate :class:`~repro.channel.pathloss.LogDistancePathLoss`;
* ``scenario.oven`` / ``scenario.congestion.*`` — episode and sojourn
  draws replicate the event-path processes' renewal order.

Fading (``link.{name}.fading``), residual MAC loss (``link.{name}.loss``)
and queueing jitter (``link.{name}.delay``) consume the event path's
stream *names* but not its per-attempt draw order: retry backoffs use
their expected durations, attempts are conditionally independent given
the rendered channel state, and congestion collisions are integrated
analytically (a per-attempt mixture of the clean and penalized PER).
Those are distribution-level (statistical) matches — the same contract
``tests/test_channel_fast.py`` validates for the per-call renderer,
enforced per-population by :mod:`repro.batch.sanity`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.population import PopulationSpec, SessionSetup
from repro.channel.gilbert import GilbertParams
from repro.channel.interference import CongestionProcess, MicrowaveOven
from repro.channel.link import LinkConfig
from repro.channel.pathloss import rssi_to_snr_db
from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace
from repro.core.replication import PairedRun
from repro.core.types import BoolArray, FloatArray
from repro.scenarios import InterferenceSpec, MobilityModel, ScenarioSetup
from repro.sim.random import RandomRouter
from repro.wifi.phy import MCS_TABLE, PhyConfig

#: per-MCS curve constants, columnized for vectorized PER evaluation
_MCS_MID_DB = np.array([m.snr_mid_db for m in MCS_TABLE])
_MCS_SLOPE_DB = np.array([m.snr_slope_db for m in MCS_TABLE])
_MCS_RATE_MBPS = np.array([m.phy_rate_mbps for m in MCS_TABLE])

#: RSSI sampling period of the event path's paired-run renderer
_RSSI_SAMPLE_PERIOD_S = 1.0

#: airtime MAC/PHY overhead (preamble, SIFS, ACK) — phy.airtime_s default
_MAC_OVERHEAD_S = 1.1e-4

#: extra span horizon so attempt times past the last slot stay covered
_SPAN_MARGIN_S = 0.5


# ---------------------------------------------------------------------------
# vectorized PHY

def frame_error_prob_array(snr_db: FloatArray, mid_db: FloatArray,
                           slope_db: FloatArray,
                           frame_bytes: int) -> FloatArray:
    """Vectorized :func:`repro.wifi.phy.frame_error_prob` (same math)."""
    per_ref = 1.0 / (1.0 + np.exp((snr_db - mid_db) / slope_db))
    if frame_bytes == 1500:
        return per_ref
    per_ref = np.clip(per_ref, 1e-12, 1.0 - 1e-12)
    bits_ref = 1500 * 8.0
    p_bit = 1.0 - (1.0 - per_ref) ** (1.0 / bits_ref)
    return 1.0 - (1.0 - p_bit) ** (frame_bytes * 8.0)


def select_mcs_indices(mean_snr_db: FloatArray,
                       phy: PhyConfig) -> np.ndarray:
    """Vectorized :func:`repro.wifi.phy.select_mcs`: per-SNR index of the
    highest MCS meeting the target PER (index 0 when none does)."""
    snr = np.atleast_1d(np.asarray(mean_snr_db, dtype=float))
    per = frame_error_prob_array(
        snr[None, :], _MCS_MID_DB[:, None], _MCS_SLOPE_DB[:, None],
        phy.reference_frame_bytes)
    ok = per <= phy.target_per
    # highest True index per column (select_mcs keeps the LAST passing MCS)
    highest = (len(MCS_TABLE) - 1) - np.argmax(ok[::-1, :], axis=0)
    return np.where(ok.any(axis=0), highest, 0)


def _attempt_backoff_means_s(config: LinkConfig) -> FloatArray:
    """Expected DIFS + contention backoff per retry stage (the mean of
    :meth:`repro.wifi.mac.MacLayer._backoff_s`)."""
    mac = config.mac
    attempts = np.arange(mac.retry_limit + 1)
    cw = np.minimum(mac.cw_min * 2.0 ** attempts + 2.0 ** attempts - 1.0,
                    float(mac.cw_max))
    return mac.difs_s + cw / 2.0 * mac.slot_time_s


# ---------------------------------------------------------------------------
# random-process helpers

def ar1_complex(n: int, rho: float,
                rng: np.random.Generator) -> np.ndarray:
    """Unit-power AR(1) complex Gaussian sequence (scipy-free).

    Consumes the same draws in the same order as
    :func:`repro.channel.fast._ar1_complex`; the recursion is evaluated
    as a truncated-kernel convolution (direct or FFT) so results match
    ``lfilter`` to ~1e-15 without a Python loop or a scipy dependency.
    """
    innovations = (rng.normal(0.0, 1.0, size=n)
                   + 1j * rng.normal(0.0, 1.0, size=n)) * np.sqrt(0.5)
    if n <= 1 or rho <= 0.0:
        return innovations
    scale = float(np.sqrt(1.0 - rho ** 2))
    # kernel rho^j truncated where its weight drops below fp resolution
    if rho < 1.0:
        span = int(np.ceil(np.log(1e-16) / np.log(rho))) + 1
        length = max(1, min(n, span))
    else:
        length = n
    kernel = rho ** np.arange(length)
    driven_src = innovations[1:] * scale
    if driven_src.size * length > 4_000_000:
        # FFT linear convolution for long-coherence / high-rate grids
        m = driven_src.size + length - 1
        nfft = 1 << (m - 1).bit_length()
        driven = np.fft.ifft(np.fft.fft(driven_src, nfft)
                             * np.fft.fft(kernel, nfft))[:driven_src.size]
    else:
        driven = np.convolve(driven_src, kernel)[:driven_src.size]
    out = np.empty(n, dtype=complex)
    out[0] = innovations[0]
    out[1:] = driven + innovations[0] * rho ** np.arange(1, n)
    return out


def _alternating_spans(rng: np.random.Generator, start_second: bool,
                       mean_first_s: float, mean_second_s: float,
                       horizon_s: float
                       ) -> Tuple[FloatArray, BoolArray]:
    """Edges + states of an alternating-renewal process.

    ``start_second`` picks the initial state (True = the "second"
    state, whose sojourns draw ``mean_second_s``).  Draw order matches
    the lazy event-path chains (one exponential per sojourn, first
    sojourn drawn from the initial state's mean).
    """
    edges: List[float] = [0.0]
    states: List[bool] = []
    in_second = start_second
    t = 0.0
    while t < horizon_s:
        states.append(in_second)
        mean = mean_second_s if in_second else mean_first_s
        t += float(rng.exponential(mean))
        edges.append(t)
        in_second = not in_second
    return np.asarray(edges), np.asarray(states, dtype=bool)


def _span_indicator(times: FloatArray, edges: FloatArray,
                    states: BoolArray) -> BoolArray:
    """State of an alternating-renewal process at ``times`` (any shape)."""
    idx = np.searchsorted(edges[1:], times, side="right")
    return states[np.minimum(idx, len(states) - 1)]


def gilbert_spans(params: GilbertParams, horizon_s: float,
                  rng: np.random.Generator
                  ) -> Tuple[FloatArray, BoolArray]:
    """BAD-state span structure, sample-path identical to
    :class:`~repro.channel.gilbert.GilbertElliott` on the same stream."""
    start_bad = bool(rng.random() < params.stationary_bad_fraction)
    return _alternating_spans(rng, start_bad, params.mean_good_s,
                              params.mean_bad_s, horizon_s)


# ---------------------------------------------------------------------------
# interference components

@dataclass
class _OvenProcess:
    """One oven's rendered episode structure (queryable at any times)."""

    starts: FloatArray
    duration_s: float
    mains_s: float
    duty: float
    penalty_db: float
    floor_db: float
    delay_bound_s: float         # uniform(0, bound) while radiating

    def on(self, times: FloatArray) -> BoolArray:
        idx = np.searchsorted(self.starts, times, side="right") - 1
        episode_start = self.starts[np.maximum(idx, 0)]
        return (idx >= 0) & (times <= episode_start + self.duration_s)

    def radiating(self, times: FloatArray) -> BoolArray:
        phase = np.mod(times, self.mains_s) / self.mains_s
        return self.on(times) & (phase < self.duty)

    def penalty(self, times: FloatArray) -> FloatArray:
        on = self.on(times)
        phase = np.mod(times, self.mains_s) / self.mains_s
        radiating = on & (phase < self.duty)
        return np.where(radiating, self.penalty_db,
                        np.where(on, self.floor_db, 0.0))


@dataclass
class _CongestionSpans:
    """One congestion process's rendered busy structure."""

    edges: FloatArray
    states: BoolArray
    collision_prob: float
    collision_penalty_db: float
    busy_delay_s: float

    def busy(self, times: FloatArray) -> BoolArray:
        return _span_indicator(times, self.edges, self.states)


_Component = Union[_OvenProcess, _CongestionSpans]


def _render_oven(params: Dict[str, float], horizon_s: float,
                 rng: np.random.Generator) -> _OvenProcess:
    rate_hz = params["episode_rate_hz"]
    duration_s = params["episode_duration_s"]
    defaults = MicrowaveOven.__init__.__defaults__
    mains_s = float(params.get("mains_period_s", defaults[2]))
    duty = params["duty_cycle"]
    starts: List[float] = [float(rng.exponential(1.0 / rate_hz))]
    while starts[-1] <= horizon_s:
        starts.append(starts[-1] + duration_s
                      + float(rng.exponential(1.0 / rate_hz)))
    return _OvenProcess(
        starts=np.asarray(starts), duration_s=duration_s,
        mains_s=mains_s, duty=duty, penalty_db=params["penalty_db"],
        floor_db=params["floor_penalty_db"],
        delay_bound_s=mains_s * duty)


def _render_congestion(params: Dict[str, float], horizon_s: float,
                       rng: np.random.Generator) -> _CongestionSpans:
    mean_busy = params["mean_busy_s"]
    mean_idle = params["mean_idle_s"]
    start_busy = bool(rng.random() < mean_busy / (mean_busy + mean_idle))
    edges, states = _alternating_spans(
        rng, start_busy, mean_idle, mean_busy, horizon_s)
    default_penalty = float(CongestionProcess.__init__.__defaults__[-1])
    return _CongestionSpans(
        edges=edges, states=states,
        collision_prob=params["collision_prob"],
        collision_penalty_db=default_penalty,
        busy_delay_s=params["busy_delay_s"])


def _render_interference(spec: InterferenceSpec, router: RandomRouter,
                         horizon_s: float) -> _Component:
    rng = router.stream(spec.stream)
    params = spec.params_dict()
    if spec.kind == "oven":
        return _render_oven(params, horizon_s, rng)
    if spec.kind == "congestion":
        return _render_congestion(params, horizon_s, rng)
    raise ValueError(f"unknown interference kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# slow state (segments)

@dataclass
class _SlowState:
    """Piecewise-constant per-link slow state on the segment grid."""

    seg_of_slot: np.ndarray      # (T_ext,) segment index per slot
    seg_starts_s: FloatArray     # (S,)
    base_snr_db: FloatArray      # (S,) RSSI-derived SNR per segment
    rssi_dbm: FloatArray         # (S,)
    mcs_index: np.ndarray        # (S,)


def _segment_grid(horizon_s: float, seg_s: Optional[float],
                  times: FloatArray) -> Tuple[FloatArray, np.ndarray]:
    if seg_s is None:
        return np.zeros(1), np.zeros(len(times), dtype=np.intp)
    n_seg = max(1, int(np.ceil(horizon_s / seg_s)))
    starts = np.arange(n_seg) * seg_s
    seg_of = np.minimum((times / seg_s).astype(np.intp), n_seg - 1)
    return starts, seg_of


def _session_positions(mobility: MobilityModel,
                       seg_starts_s: FloatArray
                       ) -> Tuple[FloatArray, FloatArray]:
    """Client (x, y) per segment; the walk is advanced exactly once per
    session (both links share the same positions, as in the event path
    where one walk object serves both links)."""
    xs = np.empty(len(seg_starts_s))
    ys = np.empty(len(seg_starts_s))
    for k, t in enumerate(seg_starts_s):
        pos = mobility.position_at(float(t))
        xs[k] = pos.x
        ys[k] = pos.y
    return xs, ys


def _slow_state(config: LinkConfig, drifting: bool,
                xs: FloatArray, ys: FloatArray,
                seg_starts_s: FloatArray, seg_of_slot: np.ndarray,
                rng_shadow: np.random.Generator) -> _SlowState:
    pl = config.pathloss
    n_seg = len(seg_starts_s)
    shadow = np.empty(n_seg)
    shadow[0] = float(rng_shadow.normal(0.0, pl.shadowing_sigma_db))
    correlation = 0.8   # LogDistancePathLoss.redraw_shadowing default
    innovation_sigma = pl.shadowing_sigma_db * np.sqrt(
        1.0 - correlation ** 2)
    for k in range(1, n_seg):
        if drifting:
            shadow[k] = (correlation * shadow[k - 1]
                         + float(rng_shadow.normal(0.0, innovation_sigma)))
        else:
            shadow[k] = shadow[k - 1]
    dx = xs - config.ap_position.x
    dy = ys - config.ap_position.y
    distance = np.maximum(np.hypot(dx, dy), pl.reference_distance_m)
    path_loss = (pl.reference_loss_db
                 + 10.0 * pl.exponent
                 * np.log10(distance / pl.reference_distance_m)
                 + shadow)
    rssi = pl.tx_power_dbm - path_loss
    base_snr = rssi_to_snr_db(rssi)
    mcs_index = select_mcs_indices(base_snr, config.phy)
    return _SlowState(seg_of_slot=seg_of_slot, seg_starts_s=seg_starts_s,
                      base_snr_db=base_snr, rssi_dbm=rssi,
                      mcs_index=mcs_index)


# ---------------------------------------------------------------------------
# per-attempt fading

def _attempt_gains(config: LinkConfig, slot_gains: np.ndarray,
                   gap_s: FloatArray,
                   rng: np.random.Generator) -> np.ndarray:
    """Complex gains at every attempt time: row 0 is the slot-time AR(1)
    sequence, row ``a`` evolves row ``a - 1`` across that retry's
    backoff-plus-airtime gap (matching how the event fading advances at
    each attempt's transmit time)."""
    n_attempts = gap_s.shape[0] + 1
    n = slot_gains.shape[0]
    gains = np.empty((n_attempts, n), dtype=complex)
    gains[0] = slot_gains
    rho = np.exp(-gap_s / config.coherence_time_s)
    sigma = np.sqrt(np.maximum(1.0 - rho ** 2, 0.0) * 0.5)
    for a in range(1, n_attempts):
        innovation = (rng.normal(0.0, 1.0, size=n)
                      + 1j * rng.normal(0.0, 1.0, size=n))
        gains[a] = rho[a - 1] * gains[a - 1] + sigma[a - 1] * innovation
    return gains


def _attempt_fade_db(config: LinkConfig, n: int, spacing_s: float,
                     gap_s: FloatArray,
                     rng: np.random.Generator) -> FloatArray:
    """Per-attempt fade matrix (retries + 1, n): Rayleigh / Rician /
    MIMO selection diversity, evolved across the retry burst."""
    rho_slot = float(np.exp(-spacing_s / config.coherence_time_s))
    branches = config.phy.n_spatial_branches

    def branch_power() -> FloatArray:
        gains = _attempt_gains(config, ar1_complex(n, rho_slot, rng),
                               gap_s, rng)
        if branches == 1 and config.rician_k_db is not None:
            k = 10.0 ** (config.rician_k_db / 10.0)
            los = np.sqrt(k / (k + 1.0))
            gains = los + gains * np.sqrt(1.0 / (k + 1.0))
        return np.asarray(np.abs(gains) ** 2)

    power = branch_power()
    for _ in range(branches - 1):
        power = np.maximum(power, branch_power())
    return 10.0 * np.log10(np.maximum(power, 1e-12))


# ---------------------------------------------------------------------------
# per-link rendering

@dataclass
class _LinkArrays:
    """One session-link's rendered outcomes."""

    delivered: BoolArray          # (T,)
    delays: FloatArray            # (T,) NaN where lost
    rssi_dbm: float
    offset_delivered: BoolArray   # (D, T)
    offset_delays: FloatArray     # (D, T)


def _render_link(config: LinkConfig, slow: _SlowState,
                 components: Sequence[_Component],
                 profile: StreamProfile, router: RandomRouter,
                 n_ext: int, deltas: Sequence[float],
                 delta_slots: Sequence[int]) -> _LinkArrays:
    n = profile.n_packets
    spacing = profile.inter_packet_spacing_s
    prefix = f"link.{config.name}"
    rng_loss = router.stream(f"{prefix}.loss")
    rng_delay = router.stream(f"{prefix}.delay")
    rng_fading = router.stream(f"{prefix}.fading")

    horizon_s = n_ext * spacing + _SPAN_MARGIN_S
    times = np.arange(n_ext) * spacing
    retries = config.mac.retry_limit
    n_attempts = retries + 1

    seg = slow.seg_of_slot
    base_snr = slow.base_snr_db[seg]
    mcs_idx = slow.mcs_index[seg]
    mid = _MCS_MID_DB[mcs_idx]
    slope = _MCS_SLOPE_DB[mcs_idx]
    rate_mbps = _MCS_RATE_MBPS[mcs_idx]
    airtime = (profile.packet_size_bytes * 8.0 / (rate_mbps * 1e6)
               + _MAC_OVERHEAD_S)                       # (n_ext,)
    backoff = _attempt_backoff_means_s(config)          # (n_attempts,)

    # Queueing delay, drawn at each slot's send time (event order: the
    # interference delay is sampled before the MAC burst begins).
    queue = np.zeros(n_ext)
    for comp in components:
        if isinstance(comp, _OvenProcess):
            draws = rng_delay.uniform(0.0, comp.delay_bound_s,
                                      size=n_ext)
            queue = queue + draws * comp.radiating(times)
        else:
            draws = rng_delay.exponential(comp.busy_delay_s, size=n_ext)
            queue = queue + draws * comp.busy(times)

    # Attempt transmit times: air start + cumulative backoffs + airtimes
    # (the expected schedule of MacLayer.transmit).
    cum_backoff = np.cumsum(backoff)                    # (n_attempts,)
    attempt_t = (times + config.base_delay_s + queue)[None, :] \
        + cum_backoff[:, None] \
        + np.arange(n_attempts)[:, None] * airtime[None, :]

    # Fading evolved across the burst; the gap between attempts a-1 and
    # a is that retry's backoff plus one airtime.
    gap_s = backoff[1:, None] + airtime[None, :]        # (retries, n_ext)
    fade = _attempt_fade_db(config, n_ext, spacing, gap_s, rng_fading)

    edges, states = gilbert_spans(config.gilbert, horizon_s,
                                  router.stream(f"{prefix}.gilbert"))
    bad = _span_indicator(attempt_t, edges, states)

    penalty = np.zeros_like(attempt_t)
    for comp in components:
        if isinstance(comp, _OvenProcess):
            penalty = penalty + comp.penalty(attempt_t)
    snr = base_snr[None, :] + fade - penalty

    ref_bytes = config.phy.reference_frame_bytes
    p_phy = frame_error_prob_array(snr, mid[None, :], slope[None, :],
                                   ref_bytes)
    for comp in components:
        if isinstance(comp, _CongestionSpans):
            # Per-attempt collision penalty, integrated analytically:
            # while busy, an attempt collides with prob c and then sees
            # the penalized PER.
            p_hit = frame_error_prob_array(
                snr - comp.collision_penalty_db, mid[None, :],
                slope[None, :], ref_bytes)
            chance = comp.collision_prob * comp.busy(attempt_t)
            p_phy = (1.0 - chance) * p_phy + chance * p_hit

    p_ge = np.where(bad, config.gilbert.loss_bad, config.gilbert.loss_good)
    p_attempt = np.clip(
        1.0 - (1.0 - p_phy) * (1.0 - p_ge), 0.0, 1.0)   # (n_attempts, n_ext)
    p_residual = p_attempt.prod(axis=0)                 # (n_ext,)

    # Expected service time: stage a is reached with the probability all
    # earlier attempts failed, and costs its backoff + one airtime.
    reach = np.ones_like(p_attempt)
    reach[1:] = np.cumprod(p_attempt[:-1], axis=0)
    stage_cost = backoff[:, None] + airtime[None, :]
    service = (reach * stage_cost).sum(axis=0)          # (n_ext,)
    jitter_scale = (backoff[0] + airtime) * 0.3

    def sampled_delays(window: slice) -> FloatArray:
        jitter = rng_delay.exponential(jitter_scale[window])
        return (config.base_delay_s + queue[window] + service[window]
                + jitter)

    lost = rng_loss.random(n_ext) < p_residual
    delays = np.where(lost[:n], np.nan,
                      sampled_delays(slice(0, n_ext))[:n])

    d_count = len(deltas)
    off_del = np.zeros((d_count, n), dtype=bool)
    off_delay = np.full((d_count, n), np.nan)
    for d_index, (delta, k) in enumerate(zip(deltas, delta_slots)):
        window = slice(k, k + n)
        lost_d = rng_loss.random(n) < p_residual[window]
        off_del[d_index] = ~lost_d
        off_delay[d_index] = np.where(
            lost_d, np.nan, float(delta) + sampled_delays(window))

    sample_times = np.arange(0.0, profile.duration_s,
                             _RSSI_SAMPLE_PERIOD_S)
    sample_seg = np.minimum(
        np.searchsorted(slow.seg_starts_s, sample_times,
                        side="right") - 1,
        len(slow.seg_starts_s) - 1)
    rssi = float(np.mean(slow.rssi_dbm[np.maximum(sample_seg, 0)])) \
        if len(sample_times) else 0.0

    return _LinkArrays(delivered=~lost[:n], delays=delays, rssi_dbm=rssi,
                       offset_delivered=off_del, offset_delays=off_delay)


# ---------------------------------------------------------------------------
# session + block rendering

def _session_seg_interval(setup: ScenarioSetup) -> Optional[float]:
    """Slow-state segment length: the finest shadowing-update interval of
    any drifting link, or None when the slow state is frozen."""
    intervals = [
        cfg.shadowing_update_s for cfg in (setup.config_a, setup.config_b)
        if setup.mobility.is_moving or cfg.environment_drift]
    return min(intervals) if intervals else None


def _delta_slots(deltas: Sequence[float], spacing_s: float) -> List[int]:
    """Temporal offsets quantized to whole packet slots.

    The event path transmits the replica at ``t + delta`` exactly; the
    batch grid evaluates the channel at the nearest slot (deltas in the
    experiment suite are multiples of the packet spacing, so this is
    exact there) while the reported delay keeps the exact ``delta``.
    """
    return [int(round(float(d) / spacing_s)) for d in deltas]


def render_session(session: SessionSetup, profile: StreamProfile,
                   deltas: Sequence[float] = ()
                   ) -> Tuple[List[_LinkArrays], str]:
    """Render both links of one session (link A carries the replicas)."""
    setup = session.setup
    router = session.router
    spacing = profile.inter_packet_spacing_s
    n = profile.n_packets
    slots = _delta_slots(deltas, spacing)
    n_ext = n + (max(slots) if slots else 0)
    horizon_s = n_ext * spacing + _SPAN_MARGIN_S
    times_ext = np.arange(n_ext) * spacing

    seg_interval = _session_seg_interval(setup)
    seg_starts, seg_of = _segment_grid(horizon_s, seg_interval, times_ext)
    xs, ys = _session_positions(setup.mobility, seg_starts)

    rendered: Dict[str, _Component] = {}

    def components_for(own: Optional[InterferenceSpec]
                       ) -> List[_Component]:
        specs = [s for s in (setup.shared_interference, own)
                 if s is not None]
        out: List[_Component] = []
        for spec in specs:
            if spec.stream not in rendered:
                rendered[spec.stream] = _render_interference(
                    spec, router, horizon_s)
            out.append(rendered[spec.stream])
        return out

    links: List[_LinkArrays] = []
    for config, own, link_deltas, link_slots in (
            (setup.config_a, setup.interference_a, deltas, slots),
            (setup.config_b, setup.interference_b, (), [])):
        drifting = setup.mobility.is_moving or config.environment_drift
        slow = _slow_state(config, drifting, xs, ys, seg_starts, seg_of,
                           router.stream(f"link.{config.name}.shadow"))
        links.append(_render_link(
            config, slow, components_for(own), profile, router,
            n_ext, link_deltas, link_slots))
    return links, session.scenario


@dataclass
class TraceBlock:
    """Trace matrices for a block of sessions (B x 2 links x T slots)."""

    profile: StreamProfile
    indices: Tuple[int, ...]
    scenarios: Tuple[str, ...]
    deltas: Tuple[float, ...]
    send_times: FloatArray        # (T,)
    delivered: BoolArray          # (B, 2, T)
    delays: FloatArray            # (B, 2, T), NaN where lost
    rssi_dbm: FloatArray          # (B, 2)
    offset_delivered: BoolArray   # (B, D, T) — replicas on link A
    offset_delays: FloatArray     # (B, D, T), includes the offset itself

    @property
    def n_sessions(self) -> int:
        return len(self.indices)

    @property
    def n_packets(self) -> int:
        return len(self.send_times)

    @property
    def spacing_s(self) -> float:
        return self.profile.inter_packet_spacing_s

    def paired_run(self, position: int) -> PairedRun:
        """Session at ``position`` as an event-path-shaped PairedRun."""
        offsets = {
            float(d): LinkTrace(
                f"A+{float(d) * 1e3:.0f}ms", self.send_times,
                self.offset_delivered[position, i],
                self.offset_delays[position, i])
            for i, d in enumerate(self.deltas)}
        return PairedRun(
            profile=self.profile,
            trace_a=LinkTrace("A", self.send_times,
                              self.delivered[position, 0],
                              self.delays[position, 0]),
            trace_b=LinkTrace("B", self.send_times,
                              self.delivered[position, 1],
                              self.delays[position, 1]),
            offset_traces=offsets,
            rssi_a_dbm=float(self.rssi_dbm[position, 0]),
            rssi_b_dbm=float(self.rssi_dbm[position, 1]),
            scenario=self.scenarios[position])


def render_block(spec: PopulationSpec,
                 indices: Optional[Sequence[int]] = None) -> TraceBlock:
    """Render a block of the population as stacked trace matrices.

    ``indices`` defaults to the whole population.  Each session is
    derived independently from ``(root_seed, index)``, so any subset
    renders bit-identically to the same sessions inside a larger block.
    """
    if indices is None:
        indices = range(spec.n_sessions)
    index_tuple = tuple(int(i) for i in indices)
    profile = spec.profile
    n = profile.n_packets
    d_count = len(spec.deltas)
    b = len(index_tuple)

    delivered = np.zeros((b, 2, n), dtype=bool)
    delays = np.full((b, 2, n), np.nan)
    rssi = np.zeros((b, 2))
    off_del = np.zeros((b, d_count, n), dtype=bool)
    off_delay = np.full((b, d_count, n), np.nan)
    scenarios: List[str] = []

    for row, index in enumerate(index_tuple):
        links, scenario = render_session(
            spec.session_setup(index), profile, spec.deltas)
        scenarios.append(scenario)
        for col, link in enumerate(links):
            delivered[row, col] = link.delivered
            delays[row, col] = link.delays
            rssi[row, col] = link.rssi_dbm
        off_del[row] = links[0].offset_delivered
        off_delay[row] = links[0].offset_delays

    return TraceBlock(
        profile=profile, indices=index_tuple, scenarios=tuple(scenarios),
        deltas=tuple(float(d) for d in spec.deltas),
        send_times=np.arange(n) * profile.inter_packet_spacing_s,
        delivered=delivered, delays=delays, rssi_dbm=rssi,
        offset_delivered=off_del, offset_delays=off_delay)
