"""Vectorized per-session summary records.

Reduces a :class:`~repro.batch.render.TraceBlock` plus the strategy
suite to the exact JSON payloads the event driver's
``section4.wild_run_metrics`` emits — one dict per session with
``scenario`` / ``worst_window`` / ``poor`` / ``bursts`` / ``autocorr`` /
``crosscorr`` — so figure assembly code consumes either backend
unchanged.  Every reduction here is the whole-population analogue of a
scalar pipeline stage (:mod:`repro.analysis.windows`,
:mod:`repro.analysis.bursts`, :mod:`repro.analysis.correlation`,
:mod:`repro.voice`), matching it row-for-row on identical traces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.batch.render import TraceBlock
from repro.batch.strategies import strategy_suite
from repro.core.types import BoolArray, FloatArray
from repro.voice.quality import BPL_G711, IE_G711, R0
from repro.voice.pcr import POOR_MOS_THRESHOLD, WORST_WINDOW_WEIGHT

#: strategies scored for PCR / burst structure (section4 constants)
POOR_STRATEGIES = ("stronger", "cross-link")
BURST_STRATEGIES = ("stronger", "temporal:0.1", "cross-link")
MAX_BURST_BUCKET = 10

#: score_call defaults (voice.pcr)
PLAYOUT_DELAY_S = 0.100
EXTRA_ONE_WAY_DELAY_S = 0.050

_WINDOW_S = 5.0


def worst_window_rows(losses: FloatArray, spacing_s: float,
                      window_s: float = _WINDOW_S) -> FloatArray:
    """Per-row :func:`repro.analysis.windows.worst_window_loss`:
    fixed packet-count blocks including the trailing partial window."""
    b, n = losses.shape
    if n == 0:
        return np.zeros(b)
    per_window = max(int(round(window_s / spacing_s)), 1)
    offsets = np.arange(0, n, per_window)
    sums = np.add.reduceat(losses, offsets, axis=1)
    counts = np.diff(np.append(offsets, n))
    return (sums / counts).max(axis=1)


def burst_runs(missing: BoolArray) -> Tuple[np.ndarray, np.ndarray]:
    """All loss bursts of a (B, T) missing mask as flat ``(rows,
    lengths)`` arrays, in row-major order — the vectorized counterpart
    of :func:`repro.analysis.bursts.burst_lengths` per row."""
    b, n = missing.shape
    padded = np.zeros((b, n + 2), dtype=np.int8)
    padded[:, 1:-1] = missing
    step = np.diff(padded, axis=1)
    rows, starts = np.nonzero(step == 1)
    _, ends = np.nonzero(step == -1)
    return rows, ends - starts


def mean_burst_rows(missing: BoolArray) -> FloatArray:
    """Per-row mean burst length (0.0 for rows with no losses)."""
    b = missing.shape[0]
    rows, lengths = burst_runs(missing)
    total = np.bincount(rows, weights=lengths.astype(float), minlength=b)
    count = np.bincount(rows, minlength=b)
    return np.where(count > 0, total / np.maximum(count, 1), 0.0)


def burst_contribution_rows(missing: BoolArray
                            ) -> List[Dict[str, Any]]:
    """Per-row burst accounting payloads (section4 ``_burst_contribution``):
    packets lost by burst-length bucket, total lost, and lost in bursts."""
    b = missing.shape[0]
    rows, lengths = burst_runs(missing)
    n_buckets = MAX_BURST_BUCKET + 1
    bucket = np.minimum(lengths, MAX_BURST_BUCKET + 1) - 1
    weights = lengths.astype(float)
    packets = np.bincount(rows * n_buckets + bucket, weights=weights,
                          minlength=b * n_buckets).reshape(b, n_buckets)
    lost = packets.sum(axis=1)
    bursty = np.bincount(rows, weights=weights * (lengths >= 2),
                         minlength=b)
    labels = [str(i) for i in range(1, MAX_BURST_BUCKET + 1)] \
        + [f">{MAX_BURST_BUCKET}"]
    return [{
        "buckets": {label: float(packets[row, i])
                    for i, label in enumerate(labels)},
        "lost": float(lost[row]),
        "bursty": float(bursty[row]),
    } for row in range(b)]


def _r_factor_rows(loss: FloatArray, one_way_s: FloatArray,
                   mean_burst: FloatArray) -> FloatArray:
    """Vectorized G.711 E-model R factor (repro.voice.quality math)."""
    d_ms = np.maximum(one_way_s, 0.0) * 1000.0
    delay_imp = np.where(
        d_ms < 100.0, d_ms * 0.024,
        0.024 * d_ms + 0.11 * (d_ms - 177.3) * (d_ms > 177.3))
    p = np.clip(loss, 0.0, 0.99)
    random_mean = 1.0 / (1.0 - p)
    ratio = np.where(mean_burst <= 0, 1.0,
                     np.maximum(mean_burst / random_mean, 1.0))
    ppl = np.maximum(loss, 0.0) * 100.0
    loss_imp = IE_G711 + (95.0 - IE_G711) * ppl \
        / (ppl / np.maximum(ratio, 1.0) + BPL_G711)
    return np.clip(R0 - delay_imp - loss_imp, 0.0, 100.0)


def _mos_rows(r: FloatArray) -> FloatArray:
    """Vectorized :func:`repro.voice.quality.r_to_mos` (r in [0, 100])."""
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    mos = np.where(r <= 0.0, 1.0, np.where(r >= 100.0, 4.5, mos))
    return np.clip(mos, 1.0, 4.5)


def mos_rows(delivered: BoolArray, delays: FloatArray,
             spacing_s: float) -> FloatArray:
    """Per-row MOS, the vectorized :func:`repro.voice.pcr.score_call`
    pipeline: playout deadline, worst-window blend, burst-aware E-model."""
    with np.errstate(invalid="ignore"):
        played = delivered & (delays <= PLAYOUT_DELAY_S + 1e-12)
    missing = ~played
    loss = missing.mean(axis=1) if missing.shape[1] else \
        np.zeros(missing.shape[0])
    worst = worst_window_rows(missing.astype(float), spacing_s)
    mean_burst = mean_burst_rows(missing)

    raw = np.where(delivered, delays, np.nan)
    any_delivered = delivered.any(axis=1)
    median = np.zeros(len(raw))
    if any_delivered.any():
        median[any_delivered] = np.nanmedian(raw[any_delivered], axis=1)
    one_way = EXTRA_ONE_WAY_DELAY_S + np.maximum(median, 0.0) \
        + PLAYOUT_DELAY_S / 2.0

    r_full = _r_factor_rows(loss, one_way, mean_burst)
    r_worst = _r_factor_rows(worst, one_way, mean_burst)
    r = (1.0 - WORST_WINDOW_WEIGHT) * r_full + WORST_WINDOW_WEIGHT * r_worst
    return _mos_rows(r)


def correlation_rows(x: FloatArray, y: FloatArray,
                     max_lag: int) -> FloatArray:
    """Per-row Pearson correlation of ``x[t]`` and ``y[t+lag]`` for lags
    1..max_lag (``analysis.correlation._corr_at_lag`` semantics:
    degenerate rows — too short or zero variance — report 0.0)."""
    b, n = x.shape
    out = np.zeros((b, max_lag))
    for lag in range(1, max_lag + 1):
        if n - lag < 2:
            continue
        a = x[:, :n - lag]
        c = y[:, lag:]
        mean_a = a.mean(axis=1, keepdims=True)
        mean_c = c.mean(axis=1, keepdims=True)
        std_a = a.std(axis=1)
        std_c = c.std(axis=1)
        cov = ((a - mean_a) * (c - mean_c)).mean(axis=1)
        ok = (std_a != 0.0) & (std_c != 0.0)
        out[ok, lag - 1] = cov[ok] / (std_a[ok] * std_c[ok])
    return out


def session_payloads(block: TraceBlock,
                     max_lag: int = 20) -> List[Dict[str, Any]]:
    """One ``wild_run_metrics``-shaped payload dict per session."""
    spacing = block.spacing_s
    suite = strategy_suite(block)
    b = block.n_sessions

    worst: Dict[str, FloatArray] = {}
    poor: Dict[str, np.ndarray] = {}
    bursts: Dict[str, List[Dict[str, Any]]] = {}
    for name, delivered, delays in suite:
        losses = (~delivered).astype(float)
        worst[name] = 100.0 * worst_window_rows(losses, spacing)
        if name in POOR_STRATEGIES:
            poor[name] = mos_rows(delivered, delays,
                                  spacing) < POOR_MOS_THRESHOLD
        if name in BURST_STRATEGIES:
            bursts[name] = burst_contribution_rows(~delivered)

    loss_a = (~block.delivered[:, 0]).astype(float)
    loss_b = (~block.delivered[:, 1]).astype(float)
    auto = correlation_rows(loss_a, loss_a, max_lag)
    cross = correlation_rows(loss_a, loss_b, max_lag)

    return [{
        "scenario": block.scenarios[row],
        "worst_window": {name: float(vals[row])
                         for name, vals in worst.items()},
        "poor": {name: bool(vals[row]) for name, vals in poor.items()},
        "bursts": {name: vals[row] for name, vals in bursts.items()},
        "autocorr": [float(v) for v in auto[row]],
        "crosscorr": [float(v) for v in cross[row]],
    } for row in range(b)]
