"""Vectorized whole-population simulation backend.

The event engine (:mod:`repro.channel.link` + :mod:`repro.sim`) walks
one Python event at a time — exact, but ~1 s per simulated call.  This
package renders *B sessions x L links x T packet-slots* of
Gilbert-Elliott / path-loss / fading / PER traces as numpy arrays in
one shot, then evaluates the whole Section 4 strategy suite
(``baseline`` / ``stronger`` / ``better`` / ``divert`` / ``temporal`` /
cross-link replication) as matrix reductions, emitting the same
per-session summary records the event path produces.

Module map:

* :mod:`repro.batch.population` — :class:`PopulationSpec`: which
  sessions exist and how their randomness derives from ``(seed, index)``
  (identical substream derivation to :func:`repro.scenarios.generate_wild_run`).
* :mod:`repro.batch.render` — :func:`render_block`: trace matrices for a
  block of sessions (:class:`TraceBlock`).
* :mod:`repro.batch.strategies` — vectorized strategy reductions over a
  :class:`TraceBlock`.
* :mod:`repro.batch.summary` — per-session payload records (worst
  window, poor-call flags, burst accounting, correlation curves)
  byte-compatible with ``section4.wild_run_metrics``.
* :mod:`repro.batch.sanity` — the ``REPRO_SANITIZE=1`` equivalence
  harness: sampled sessions re-run through the exact event path and
  compared statistically.
* :mod:`repro.batch.driver` — :mod:`repro.runner` task entry points and
  the ``backend="batch"`` population driver.

The event engine remains the reference: the batch renderer reproduces
the *slow* channel state (Gilbert sojourns, shadowing sequence, oven
episodes, scenario parameters) sample-path exactly from the same
:class:`~repro.sim.random.RandomRouter` streams, and matches fading /
MAC / queueing behaviour statistically (the contract of
``tests/test_channel_fast.py``, enforced per-population by
:mod:`repro.batch.sanity`).
"""

from __future__ import annotations

from repro.batch.driver import (
    BATCH_TASK,
    batch_wild_metrics,
    population_block_metrics,
    render_block_metrics,
)
from repro.batch.population import PopulationSpec, SessionSetup
from repro.batch.render import TraceBlock, render_block
from repro.batch.sanity import BatchEquivalenceError, check_block_equivalence
from repro.batch.strategies import strategy_suite
from repro.batch.summary import session_payloads

__all__ = [
    "BATCH_TASK",
    "BatchEquivalenceError",
    "PopulationSpec",
    "SessionSetup",
    "TraceBlock",
    "batch_wild_metrics",
    "check_block_equivalence",
    "population_block_metrics",
    "render_block",
    "render_block_metrics",
    "session_payloads",
    "strategy_suite",
]
