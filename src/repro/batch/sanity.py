"""Batch-vs-event equivalence harness (the ``REPRO_SANITIZE=1`` check).

The event engine is the reference implementation.  When the sanitizer is
armed, the batch driver re-runs a deterministic sample of each block's
sessions through the exact event path (:func:`repro.scenarios.generate_wild_run`)
and checks:

* **scenario identity** — every sampled session must draw the same
  scenario name, exactly (the substream-derivation contract);
* **statistical equivalence** — per-link loss rate and mean delivered
  delay, pooled over the sample, must agree within the tolerances
  ``tests/test_channel_fast.py`` grants the per-call fast renderer
  (loss: ``|b - e| <= max(1.0 * e, 0.01)``; delay: relative 50% or
  10 ms, whichever is looser — means over a multi-session sample are
  much tighter in practice).

Violations raise :class:`BatchEquivalenceError`, a
:class:`~repro.sim.sanitize.SanitizerError`, so they surface exactly
like every other sanitizer trap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.batch.population import PopulationSpec
from repro.batch.render import TraceBlock
from repro.core.packet import LinkTrace
from repro.scenarios import generate_wild_run
from repro.sim.sanitize import SanitizerError

#: loss-rate tolerance (test_channel_fast.py: approx(rel=1.0, abs=0.01))
LOSS_REL_TOL = 1.0
LOSS_ABS_TOL = 0.01

#: mean-delivered-delay tolerance
DELAY_REL_TOL = 0.5
DELAY_ABS_TOL = 0.010

#: sessions re-run through the event path per checked block
DEFAULT_SAMPLE_SESSIONS = 3


class BatchEquivalenceError(SanitizerError):
    """The batch backend diverged from the event-path reference."""


@dataclass(frozen=True)
class EquivalenceReport:
    """What the harness compared, for tests and logging."""

    indices: Tuple[int, ...]
    batch_loss: Tuple[float, float]      # per link, pooled over sample
    event_loss: Tuple[float, float]
    batch_delay_s: Tuple[float, float]   # mean delivered delay per link
    event_delay_s: Tuple[float, float]


def _sample_positions(n: int, sample: int) -> np.ndarray:
    """Evenly spaced block positions (deterministic, no RNG)."""
    if n <= sample:
        return np.arange(n)
    return np.unique(np.linspace(0, n - 1, sample).round().astype(int))


def _mean_delivered_delay(delivered: np.ndarray,
                          delays: np.ndarray) -> float:
    picked = delays[delivered]
    return float(picked.mean()) if picked.size else 0.0


def _event_link_stats(trace: LinkTrace) -> Tuple[float, float]:
    return (float(np.mean(~trace.delivered)),
            _mean_delivered_delay(trace.delivered, trace.delays))


def _within(batch: float, event: float, rel: float, abs_tol: float) -> bool:
    return abs(batch - event) <= max(rel * abs(event), abs_tol)


def check_block_equivalence(
        spec: PopulationSpec, block: TraceBlock,
        sample_sessions: int = DEFAULT_SAMPLE_SESSIONS
) -> EquivalenceReport:
    """Re-run a sample of ``block`` through the event engine and compare.

    Returns the comparison report on success; raises
    :class:`BatchEquivalenceError` on scenario mismatch or statistical
    divergence.
    """
    positions = _sample_positions(block.n_sessions, sample_sessions)
    batch_loss = np.zeros((len(positions), 2))
    batch_delay = np.zeros((len(positions), 2))
    event_loss = np.zeros((len(positions), 2))
    event_delay = np.zeros((len(positions), 2))
    indices = []
    for row, pos in enumerate(positions):
        index = block.indices[pos]
        indices.append(index)
        run = generate_wild_run(
            index, spec.profile, seed=spec.root_seed,
            temporal_deltas=spec.deltas,
            mimo_branches=spec.mimo_branches, scenario=spec.scenario)
        if run.scenario != block.scenarios[pos]:
            raise BatchEquivalenceError(
                f"session {index}: batch drew scenario "
                f"{block.scenarios[pos]!r} but the event path drew "
                f"{run.scenario!r} — substream derivation diverged")
        for col, trace in enumerate((run.trace_a, run.trace_b)):
            event_loss[row, col], event_delay[row, col] = \
                _event_link_stats(trace)
            batch_loss[row, col] = float(
                np.mean(~block.delivered[pos, col]))
            batch_delay[row, col] = _mean_delivered_delay(
                block.delivered[pos, col], block.delays[pos, col])

    report = EquivalenceReport(
        indices=tuple(int(i) for i in indices),
        batch_loss=(float(batch_loss[:, 0].mean()) if len(indices) else 0.0,
                    float(batch_loss[:, 1].mean()) if len(indices) else 0.0),
        event_loss=(float(event_loss[:, 0].mean()) if len(indices) else 0.0,
                    float(event_loss[:, 1].mean()) if len(indices) else 0.0),
        batch_delay_s=(
            float(batch_delay[:, 0].mean()) if len(indices) else 0.0,
            float(batch_delay[:, 1].mean()) if len(indices) else 0.0),
        event_delay_s=(
            float(event_delay[:, 0].mean()) if len(indices) else 0.0,
            float(event_delay[:, 1].mean()) if len(indices) else 0.0))
    if not indices:
        return report

    for col, link in enumerate("AB"):
        if not _within(report.batch_loss[col], report.event_loss[col],
                       LOSS_REL_TOL, LOSS_ABS_TOL):
            raise BatchEquivalenceError(
                f"link {link} loss diverged over sampled sessions "
                f"{report.indices}: batch {report.batch_loss[col]:.4f} "
                f"vs event {report.event_loss[col]:.4f} "
                f"(tol rel={LOSS_REL_TOL}, abs={LOSS_ABS_TOL})")
        if not _within(report.batch_delay_s[col],
                       report.event_delay_s[col],
                       DELAY_REL_TOL, DELAY_ABS_TOL):
            raise BatchEquivalenceError(
                f"link {link} mean delivered delay diverged over sampled "
                f"sessions {report.indices}: batch "
                f"{report.batch_delay_s[col] * 1e3:.2f} ms vs event "
                f"{report.event_delay_s[col] * 1e3:.2f} ms "
                f"(tol rel={DELAY_REL_TOL}, abs={DELAY_ABS_TOL})")
    return report
