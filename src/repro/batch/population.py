"""Population specs: which sessions exist, and where their randomness
comes from.

A :class:`PopulationSpec` names a whole Section-4-style population —
``n_sessions`` wild calls derived from one root seed — without rendering
anything.  Its contract is *substream identity* with the event path:
session ``i`` of the population draws from exactly the router
:func:`repro.scenarios.generate_wild_run` would build for run ``i``
(``RandomRouter(root_seed).fork(f"wild-run-{i}")``), so the batch and
event backends see the same scenario draw, the same scenario parameters
and the same slow channel processes for the same ``(seed, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import G711_PROFILE, HIGH_RATE_PROFILE, StreamProfile
from repro.scenarios import (
    WILD_MIX,
    ScenarioSetup,
    sample_scenario_name,
    scenario_setup,
)
from repro.sim.random import RandomRouter

#: default sessions per runner-task block (one cache-keyed RunSpec each)
DEFAULT_BLOCK_SESSIONS = 100


def profile_for(highrate: bool,
                duration_s: Optional[float]) -> StreamProfile:
    """The stream profile a population uses (mirrors the section4 driver:
    the high-rate or G.711 base, with an optional duration override)."""
    base = HIGH_RATE_PROFILE if highrate else G711_PROFILE
    if duration_s is None:
        return base
    return StreamProfile(
        name=base.name, packet_size_bytes=base.packet_size_bytes,
        inter_packet_spacing_s=base.inter_packet_spacing_s,
        duration_s=duration_s,
        max_tolerable_delay_s=base.max_tolerable_delay_s)


@dataclass(frozen=True)
class SessionSetup:
    """One session's fully-drawn parameters plus its private router."""

    index: int
    scenario: str
    setup: ScenarioSetup
    router: RandomRouter


@dataclass(frozen=True)
class PopulationSpec:
    """A whole population of wild sessions, addressed by index."""

    n_sessions: int
    root_seed: int = 0
    deltas: Tuple[float, ...] = ()
    mimo_branches: int = 1
    highrate: bool = False
    duration_s: Optional[float] = None
    #: pin every session to one scenario (Figure 6 breakdown); None
    #: draws each session from the wild mix
    scenario: Optional[str] = None
    max_lag: int = 20
    block_size: int = DEFAULT_BLOCK_SESSIONS

    def __post_init__(self) -> None:
        if self.n_sessions < 0:
            raise ValueError("n_sessions must be >= 0")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")

    @property
    def profile(self) -> StreamProfile:
        return profile_for(self.highrate, self.duration_s)

    def session_router(self, index: int) -> RandomRouter:
        """The per-session router — identical derivation to
        :func:`repro.scenarios.generate_wild_run`."""
        if not 0 <= index < self.n_sessions:
            raise IndexError(
                f"session {index} outside population of {self.n_sessions}")
        return RandomRouter(self.root_seed).fork(f"wild-run-{index}")

    def session_setup(self, index: int) -> SessionSetup:
        """Scenario choice + drawn parameters for session ``index``.

        Consumes ``scenario.pick`` / ``scenario.params`` (and the
        mobility stream, when the scenario has one) in the event path's
        exact order, leaving the channel-process streams untouched for
        the renderer.
        """
        router = self.session_router(index)
        name = self.scenario or sample_scenario_name(
            router.stream("scenario.pick"), WILD_MIX)
        setup = scenario_setup(name, router, self.mimo_branches)
        return SessionSetup(index=index, scenario=name, setup=setup,
                            router=router)

    def blocks(self) -> List[Tuple[int, int]]:
        """``(start, count)`` shards covering the population in order."""
        out: List[Tuple[int, int]] = []
        start = 0
        while start < self.n_sessions:
            count = min(self.block_size, self.n_sessions - start)
            out.append((start, count))
            start += count
        return out
