"""Vectorized Section 4 strategy zoo over trace matrices.

Each reduction mirrors one function of :mod:`repro.core.strategies` but
consumes a whole :class:`~repro.batch.render.TraceBlock` at once and
returns ``(delivered, delays)`` matrices of shape ``(B, T)`` — the
outcome every session's client would have experienced under that
strategy.  Given identical per-session traces, each reduction produces
exactly the per-session result of its event-path counterpart (verified
by ``tests/test_batch.py`` on shared synthetic blocks).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.batch.render import TraceBlock
from repro.core.types import BoolArray, FloatArray

StrategyResult = Tuple[BoolArray, FloatArray]

#: trial length of the ``better`` strategy (core.strategies default)
BETTER_TRIAL_S = 5.0


def _merge(delivered_1: BoolArray, delays_1: FloatArray,
           delivered_2: BoolArray, delays_2: FloatArray) -> StrategyResult:
    """Row-wise :func:`repro.core.packet.merge_traces` for two copies
    sharing one send schedule: earliest arrival wins."""
    arrival_1 = np.where(delivered_1, delays_1, np.inf)
    arrival_2 = np.where(delivered_2, delays_2, np.inf)
    best = np.minimum(arrival_1, arrival_2)
    delivered = np.isfinite(best)
    return delivered, np.where(delivered, best, np.nan)


def cross_link(block: TraceBlock) -> StrategyResult:
    """Full cross-link replication (receive on both links)."""
    return _merge(block.delivered[:, 0], block.delays[:, 0],
                  block.delivered[:, 1], block.delays[:, 1])


def _pick_link(block: TraceBlock, choice: np.ndarray) -> StrategyResult:
    rows = np.arange(block.n_sessions)
    return (block.delivered[rows, choice], block.delays[rows, choice])


def stronger(block: TraceBlock) -> StrategyResult:
    """Per session, the link with the higher average RSSI (ties -> A)."""
    choice = (block.rssi_dbm[:, 0] < block.rssi_dbm[:, 1]).astype(np.intp)
    return _pick_link(block, choice)


def baseline(block: TraceBlock) -> StrategyResult:
    """No replication, no selection beyond the default (stronger)."""
    return stronger(block)


def better(block: TraceBlock,
           trial_s: float = BETTER_TRIAL_S) -> StrategyResult:
    """Trial both links (merged) for ``trial_s``, then settle on the one
    that lost fewer packets during the trial (ties -> A)."""
    n = block.n_packets
    trial = min(int(round(trial_s / block.spacing_s)), n)
    if trial > 0:
        loss_a = (~block.delivered[:, 0, :trial]).mean(axis=1)
        loss_b = (~block.delivered[:, 1, :trial]).mean(axis=1)
        choice = (loss_a > loss_b).astype(np.intp)
    else:
        choice = np.zeros(block.n_sessions, dtype=np.intp)
    merged_del, merged_delay = cross_link(block)
    chosen_del, chosen_delay = _pick_link(block, choice)
    delivered = np.concatenate(
        [merged_del[:, :trial], chosen_del[:, trial:]], axis=1)
    delays = np.concatenate(
        [merged_delay[:, :trial], chosen_delay[:, trial:]], axis=1)
    return delivered, delays


def divert(block: TraceBlock, window_h: int = 1,
           threshold_t: int = 1) -> StrategyResult:
    """Fine-grained reactive selection, all sessions stepped in lockstep.

    Per session: switch links when >= ``threshold_t`` of the last
    ``window_h`` frames on the current link were lost (then clear the
    history), exactly :func:`repro.core.strategies.divert`.
    """
    if window_h < 1 or threshold_t < 1 or threshold_t > window_h:
        raise ValueError("need 1 <= T <= H")
    b, _, n = block.delivered.shape
    rows = np.arange(b)
    current = np.zeros(b, dtype=np.intp)
    recent = np.zeros((b, window_h), dtype=bool)
    fill = np.zeros(b, dtype=np.intp)
    delivered = np.zeros((b, n), dtype=bool)
    delays = np.full((b, n), np.nan)
    for seq in range(n):
        got = block.delivered[rows, current, seq]
        delivered[:, seq] = got
        delays[:, seq] = block.delays[rows, current, seq]
        lost_now = ~got
        full = fill == window_h
        if full.any():
            shifted = np.roll(recent[full], -1, axis=1)
            shifted[:, -1] = lost_now[full]
            recent[full] = shifted
        growing = ~full
        recent[rows[growing], fill[growing]] = lost_now[growing]
        fill[growing] += 1
        trigger = (fill == window_h) \
            & (recent.sum(axis=1) >= threshold_t)
        current[trigger] ^= 1
        fill[trigger] = 0
        recent[trigger] = False
    return delivered, delays


def temporal(block: TraceBlock, delta_s: float) -> StrategyResult:
    """Two copies on link A, the second offset by ``delta_s``."""
    try:
        i = block.deltas.index(float(delta_s))
    except ValueError:
        raise KeyError(
            f"block was not rendered with temporal delta {delta_s!r}; "
            f"available: {sorted(block.deltas)}") from None
    return _merge(block.delivered[:, 0], block.delays[:, 0],
                  block.offset_delivered[:, i], block.offset_delays[:, i])


def strategy_suite(block: TraceBlock
                   ) -> List[Tuple[str, BoolArray, FloatArray]]:
    """Evaluate the full suite; key order matches the event driver
    (``section4._strategy_suite``) so payloads line up field-for-field."""
    out: List[Tuple[str, BoolArray, FloatArray]] = []
    for name, result in (
            ("cross-link", cross_link(block)),
            ("stronger", stronger(block)),
            ("better", better(block)),
            ("divert", divert(block, window_h=1, threshold_t=1)),
            ("baseline", baseline(block))):
        out.append((name, result[0], result[1]))
    for delta in block.deltas:
        delivered, delays = temporal(block, delta)
        out.append((f"temporal:{float(delta)!r}", delivered, delays))
    return out
