"""Runner task entry points for the batch backend.

The unit of work is a *block* of sessions rather than one call:
:func:`population_block_metrics` renders sessions ``[start, start +
count)`` of a population in one vectorized shot and reduces them to the
same per-session payloads the event task
(``repro.experiments.section4:wild_run_metrics``) emits one at a time.
Blocks are sharded through :func:`repro.runner.map_configs` with
``start`` as the cache-keyed seed, so the determinism contract carries
over unchanged: serial, ``--jobs N`` and warm-cache executions of the
same population produce byte-identical digests.

Observability: render and reduce phases are wrapped in
:class:`~repro.obs.spans.SpanTracker` spans on a *deterministic*
progress clock (simulated seconds of rendered traffic — never
wall-clock, which would leak nondeterminism into runner metrics), plus
``batch.sessions`` / ``batch.packet_slots`` counters and a
``batch.session_loss_rate`` histogram.

Under ``REPRO_SANITIZE=1`` every block re-runs a sampled subset of its
sessions through the exact event engine and checks statistical
equivalence (:mod:`repro.batch.sanity`) before returning.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.batch.population import (
    DEFAULT_BLOCK_SESSIONS,
    PopulationSpec,
)
from repro.batch.render import TraceBlock, render_block
from repro.batch.sanity import check_block_equivalence
from repro.batch.summary import session_payloads
from repro.obs import RATIO_BUCKETS, SimulatedClock, SpanTracker
from repro.obs.runtime import active_registry, collecting
from repro.runner import RunnerConfig, map_configs
from repro.sim.sanitize import sanitizer_enabled

#: runner entry points
BATCH_TASK = "repro.batch.driver:population_block_metrics"
RENDER_TASK = "repro.batch.driver:render_block_metrics"


def _population_spec(start: int, count: int, root_seed: int,
                     deltas: Sequence[float], mimo_branches: int,
                     highrate: bool, duration_s: Optional[float],
                     scenario: Optional[str],
                     max_lag: int) -> PopulationSpec:
    if start < 0 or count < 0:
        raise ValueError("block start and count must be >= 0")
    return PopulationSpec(
        n_sessions=start + count, root_seed=root_seed,
        deltas=tuple(float(d) for d in deltas),
        mimo_branches=mimo_branches, highrate=highrate,
        duration_s=duration_s, scenario=scenario, max_lag=max_lag)


def _observe_block(block: TraceBlock) -> None:
    registry = active_registry()
    if registry is None:
        return
    registry.counter("batch.sessions").inc(block.n_sessions)
    registry.counter("batch.packet_slots").inc(
        int(block.delivered.size + block.offset_delivered.size))
    loss_hist = registry.histogram("batch.session_loss_rate",
                                   bounds=RATIO_BUCKETS)
    per_session = (~block.delivered).mean(axis=(1, 2))
    for value in per_session:
        loss_hist.observe(float(value))


def _render_with_spans(spec: PopulationSpec, start: int,
                       count: int) -> TraceBlock:
    registry = active_registry()
    clock = SimulatedClock()
    tracker = SpanTracker(clock, registry=registry, source="batch") \
        if registry is not None else None
    span = tracker.span("batch.render", block=start) if tracker else None
    block = render_block(spec, range(start, start + count))
    clock.advance(count * spec.profile.duration_s)
    if span is not None:
        span.end()
    return block


def population_block_metrics(start: int, *, count: int, root_seed: int,
                             deltas: Sequence[float] = (),
                             mimo_branches: int = 1,
                             highrate: bool = False,
                             duration_s: Optional[float] = None,
                             scenario: Optional[str] = None,
                             max_lag: int = 20) -> List[Dict[str, Any]]:
    """Render + reduce sessions ``[start, start + count)``.

    Returns one ``wild_run_metrics``-shaped payload per session, in
    session order.  ``start`` doubles as the runner seed, so a block is
    cache-addressed by ``(task, config, start)`` exactly like an event
    run is by ``(task, config, index)``.
    """
    spec = _population_spec(start, count, root_seed, deltas,
                            mimo_branches, highrate, duration_s,
                            scenario, max_lag)
    registry = active_registry()
    clock = SimulatedClock()
    tracker = SpanTracker(clock, registry=registry, source="batch") \
        if registry is not None else None

    span = tracker.span("batch.render", block=start) if tracker else None
    block = render_block(spec, range(start, start + count))
    clock.advance(count * spec.profile.duration_s)
    if span is not None:
        span.end()

    span = tracker.span("batch.reduce", block=start) if tracker else None
    payloads = session_payloads(block, max_lag=max_lag)
    clock.advance(count * spec.profile.duration_s)
    if span is not None:
        span.end()

    _observe_block(block)
    if sanitizer_enabled():
        # The equivalence check re-runs sessions through the fully
        # instrumented event engine; meter those into a throwaway
        # registry so the block's metrics blob — and therefore the
        # batch digest — is identical with and without REPRO_SANITIZE.
        with collecting():
            check_block_equivalence(spec, block)
    return payloads


def render_block_metrics(start: int, *, count: int, root_seed: int,
                         deltas: Sequence[float] = (),
                         mimo_branches: int = 1,
                         highrate: bool = False,
                         duration_s: Optional[float] = None,
                         scenario: Optional[str] = None,
                         max_lag: int = 20) -> Dict[str, Any]:
    """Render-only task (the ``batch_render`` bench subsystem): trace
    matrices are produced and summarized to per-session link loss/RSSI
    without the strategy/score reduction."""
    spec = _population_spec(start, count, root_seed, deltas,
                            mimo_branches, highrate, duration_s,
                            scenario, max_lag)
    block = _render_with_spans(spec, start, count)
    _observe_block(block)
    loss = (~block.delivered).mean(axis=2)
    return {
        "scenarios": list(block.scenarios),
        "loss": [[float(v) for v in row] for row in loss],
        "rssi_dbm": [[float(v) for v in row] for row in block.rssi_dbm],
    }


def batch_wild_metrics(n_runs: int, seed: int,
                       deltas: Sequence[float] = (),
                       mimo_branches: int = 1,
                       highrate: bool = False,
                       duration_s: Optional[float] = None,
                       scenario: Optional[str] = None,
                       max_lag: int = 20,
                       block_size: int = DEFAULT_BLOCK_SESSIONS,
                       runner_config: Optional[RunnerConfig] = None
                       ) -> List[Dict[str, Any]]:
    """Whole-population counterpart of ``section4._wild_metrics``.

    Shards the population into cache-keyed blocks, maps
    :data:`BATCH_TASK` over them through the runner (parallel across
    ``--jobs``, content-address cached per block), and flattens the
    per-block payload lists back into session order.
    """
    spec = PopulationSpec(
        n_sessions=n_runs, root_seed=seed,
        deltas=tuple(float(d) for d in deltas),
        mimo_branches=mimo_branches, highrate=highrate,
        duration_s=duration_s, scenario=scenario, max_lag=max_lag,
        block_size=block_size)
    base: Dict[str, Any] = {
        "root_seed": seed,
        "deltas": [float(d) for d in deltas],
        "mimo_branches": mimo_branches,
        "highrate": highrate,
        "duration_s": duration_s,
        "scenario": scenario,
        "max_lag": max_lag,
    }
    items = [(block_start, dict(base, count=block_count))
             for block_start, block_count in spec.blocks()]
    # PUR101: under the sanitizer the block task meters its event-engine
    # equivalence re-runs into a scoped throwaway registry
    # (obs.runtime.collecting saves and restores the process-local
    # active-registry global); payloads and exported metrics are
    # unaffected — test_sanitize_does_not_perturb_block_metrics pins it.
    block_payloads = map_configs(  # reproflow: disable=PUR101
        BATCH_TASK, items, config=runner_config)
    flat: List[Dict[str, Any]] = []
    for payload in block_payloads:
        flat.extend(payload)
    if len(flat) != n_runs:
        raise RuntimeError(
            f"batch backend returned {len(flat)} sessions for a "
            f"population of {n_runs}")
    return flat
