"""The large-VoIP-service dataset and the Table 1 analysis.

The paper analyzes a year of user-rated calls from a service with hundreds
of millions of users, asking one question: is the WiFi last hop a
significant contributor to poor call quality?  The key methodology is the
*subset analysis*: relative PCR deltas for calls split by last-hop type
(EE / EW / WW), re-computed over (a) only /24-subnet pairs with at least as
many EE as WW rated calls (controls for WiFi clients living in badly
backhauled places) and (b) only PC-class devices (controls for cheap
mobile hardware).

The synthetic population encodes only the hypotheses the paper itself
offers for the confounds:

* WiFi endpoints add an extra, heavy-tailed network impairment;
* WiFi clients are over-represented in poorly backhauled subnets
  (malls, airports) — the row-2 confound;
* WiFi clients are more often cheap mobile devices whose hardware hurts
  perceived quality — the row-3 confound;
* users rate calls only sometimes, and are a little more likely to rate
  after a bad call (the response bias the paper notes).

The analysis machinery is then exactly the paper's, so Table 1's structure
(everything improves under each control, but a large EE-vs-WW gap remains)
is a *finding* of the synthetic study, not something hard-coded.

Block protocol
--------------

Call randomness is organized for population scale: the year is a
sequence of fixed-size **call blocks** of :data:`CALL_BLOCK` calls.
Block ``b`` owns the private router ``RandomRouter(seed).fork(
f"provider-block-{b}")`` and draws every per-call quantity from a
*named per-field substream* (``"pair"``, ``"wifi"``, ``"pc"``, ...)
with a **fixed draw count per call** — conditional quantities (the
per-endpoint WiFi access loss, the non-PC device penalty) are drawn
unconditionally and applied conditionally.  Two consequences:

* the vectorized backend (:mod:`repro.studies.population`) renders a
  block as numpy arrays from the *same* substreams and — because a
  batched ``Generator`` draw consumes the bit stream exactly like the
  equivalent sequence of scalar draws — produces **bit-identical**
  calls to this scalar loop;
* a truncated final block is a prefix of the full block, so the first
  ``n`` calls of a population are a prefix of any larger population
  with the same seed.

This scalar path remains the readable reference; the population backend
is the scale path, and ``tests/test_population.py`` pins their exact
equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.sim.random import RandomRouter
from repro.voice.quality import emodel_r_factor, r_to_mos

#: calls per protocol block — the unit of randomness derivation (and the
#: unit the population backend renders, shards and caches).
CALL_BLOCK = 16_384


@dataclass
class RatedCall:
    """One user-rated call in the provider dataset."""

    subnet_pair: int
    category: str        # "EE" / "EW" / "WW"
    pc_class: bool       # both endpoints PC-class devices?
    rating: int          # 1..5
    @property
    def poor(self) -> bool:
        return self.rating <= 2


@dataclass
class ProviderDataset:
    """A year's worth of rated calls."""

    calls: List[RatedCall] = field(default_factory=list)

    def pcr(self, calls: Optional[Iterable[RatedCall]] = None) -> float:
        """Poor-call rate over ``calls`` (default: the whole dataset).

        Single pass, so any iterable — including a generator — works
        without materializing a copy.
        """
        source: Iterable[RatedCall] = self.calls if calls is None \
            else calls
        n = 0
        poor = 0
        for call in source:
            n += 1
            poor += call.poor
        if n == 0:
            return float("nan")
        return poor / n


@dataclass
class Table1Row:
    """One row of Table 1: relative PCR deltas vs the overall baseline."""

    label: str
    delta_ee_pct: float
    delta_ew_pct: float
    delta_ww_pct: float
    n_calls: int


# ---------------------------------------------------------------------------
# synthesis

#: subnet-pair archetypes: (share, mean extra one-way delay s, backhaul
#: loss scale, P(endpoint on WiFi), P(device PC-class | WiFi))
_ARCHETYPES = {
    "enterprise": (0.35, 0.030, 0.002, 0.35, 0.85),
    "home":       (0.40, 0.045, 0.004, 0.55, 0.55),
    "public":     (0.25, 0.060, 0.010, 0.90, 0.35),
}

#: P(device PC-class | Ethernet endpoint)
_PC_GIVEN_ETHERNET = 0.95


#: calibration knobs — ablations sweep them by passing explicit keyword
#: arguments.  They are bound as *def-time* signature defaults below:
#: the values are pinned by the source text the runner's code
#: fingerprint hashes, so a cached result can never disagree with the
#: defaults in force when it was computed (call-time ``None`` fallbacks
#: would escape the cache key — reproflow KEY501).
WIFI_LOSS_MEDIAN = 0.005      # median extra loss per WiFi endpoint
WIFI_LOSS_SIGMA = 0.9         # lognormal spread of the WiFi loss
DEVICE_PENALTY_SCALE = 0.07   # mean MOS penalty of non-PC hardware
GLITCH_PENALTY_SCALE = 0.65   # mean MOS penalty of non-network glitches


@dataclass(frozen=True)
class PairState:
    """Per-subnet-pair state shared by every call block.

    Drawn once per population from the root router's
    ``"provider.pairs"`` stream (never from a block router), so every
    block — rendered scalar or vectorized, in any process — sees the
    same pairs.
    """

    archetype: np.ndarray      # archetype index per pair
    backhaul: np.ndarray       # per-pair backhaul multiplier
    base_delay: np.ndarray     # per-archetype mean extra one-way delay s
    backhaul_loss: np.ndarray  # per-archetype backhaul loss scale
    p_wifi: np.ndarray         # per-archetype P(endpoint on WiFi)
    p_pc_wifi: np.ndarray      # per-archetype P(PC-class | WiFi)


def pair_state(seed: int, n_subnet_pairs: int) -> PairState:
    """Draw the population's subnet-pair state (both backends call this)."""
    stream = RandomRouter(seed).stream("provider.pairs")
    names = list(_ARCHETYPES)
    shares = np.array([_ARCHETYPES[n][0] for n in names])
    archetype = stream.choice(len(names), size=n_subnet_pairs,
                              p=shares / shares.sum())
    # Per-pair backhaul multiplier: some pairs are just bad.
    backhaul = stream.lognormal(mean=0.0, sigma=0.6, size=n_subnet_pairs)
    return PairState(
        archetype=archetype, backhaul=backhaul,
        base_delay=np.array([_ARCHETYPES[n][1] for n in names]),
        backhaul_loss=np.array([_ARCHETYPES[n][2] for n in names]),
        p_wifi=np.array([_ARCHETYPES[n][3] for n in names]),
        p_pc_wifi=np.array([_ARCHETYPES[n][4] for n in names]))


def block_router(seed: int, block: int) -> RandomRouter:
    """The private router of call block ``block``."""
    return RandomRouter(seed).fork(f"provider-block-{block}")


def n_call_blocks(n_calls: int) -> int:
    """Number of protocol blocks covering an ``n_calls`` population."""
    if n_calls < 0:
        raise ValueError("n_calls must be >= 0")
    return (n_calls + CALL_BLOCK - 1) // CALL_BLOCK


_CATEGORY_BY_WIFI_COUNT = {0: "EE", 1: "EW", 2: "WW"}


def synthesize_provider_block(block: int, count: int, seed: int,
                              pairs: PairState,
                              wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                              wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                              device_penalty_scale: float =
                              DEVICE_PENALTY_SCALE,
                              glitch_penalty_scale: float =
                              GLITCH_PENALTY_SCALE,
                              response_bias: bool = True
                              ) -> List[RatedCall]:
    """Scalar reference rendering of one call block's *rated* calls.

    Draw layout (one call consumes, in order, from each named
    substream): ``pair`` 1 bounded integer; ``wifi`` and ``pc`` 2
    uniforms each; ``access-loss`` 2 lognormals (drawn for both
    endpoints, applied only to WiFi ones); ``delay`` 1 exponential;
    ``device`` 1 exponential (applied only to non-PC calls);
    ``glitch`` 1 exponential; ``rating-noise`` 1 normal; ``respond`` 1
    uniform.  The fixed per-call draw count is what lets
    :func:`repro.studies.population.render_provider_block` replay the
    block as whole-array draws, bit for bit.
    """
    router = block_router(seed, block)
    s_pair = router.stream("pair")
    s_wifi = router.stream("wifi")
    s_pc = router.stream("pc")
    s_access = router.stream("access-loss")
    s_delay = router.stream("delay")
    s_device = router.stream("device")
    s_glitch = router.stream("glitch")
    s_noise = router.stream("rating-noise")
    s_respond = router.stream("respond")

    n_subnet_pairs = len(pairs.archetype)
    log_median = np.log(wifi_loss_median)
    rated: List[RatedCall] = []
    for _ in range(count):
        pair = int(s_pair.integers(0, n_subnet_pairs))
        archetype = int(pairs.archetype[pair])
        p_wifi = float(pairs.p_wifi[archetype])
        p_pc_wifi = float(pairs.p_pc_wifi[archetype])

        endpoints = []
        for _endpoint in range(2):
            on_wifi = s_wifi.random() < p_wifi
            pc = s_pc.random() < (p_pc_wifi if on_wifi
                                  else _PC_GIVEN_ETHERNET)
            access = float(s_access.lognormal(log_median,
                                              wifi_loss_sigma))
            endpoints.append((on_wifi, pc, access))
        n_wifi = sum(1 for w, _, _ in endpoints if w)
        category = _CATEGORY_BY_WIFI_COUNT[n_wifi]
        pc_class = all(pc for _, pc, _ in endpoints)

        # Network impairments: backhaul + per-WiFi-endpoint access loss.
        loss = float(pairs.backhaul_loss[archetype]
                     * pairs.backhaul[pair])
        for on_wifi, _, access in endpoints:
            if on_wifi:
                loss += access
        loss = min(loss, 0.6)
        burst = 1.0 + 2.5 * min(loss * 10.0, 1.0)  # WiFi loss is bursty
        delay = float(pairs.base_delay[archetype]) \
            + float(s_delay.exponential(0.040))

        r = emodel_r_factor(loss, delay, mean_burst_len=burst)
        mos = r_to_mos(r)
        # Cheap hardware degrades what the user *hears*, not the network.
        device = float(s_device.exponential(device_penalty_scale))
        if not pc_class:
            mos -= device
        # Non-network glitches everyone suffers regardless of access type:
        # echo, background noise, far-end problems, app hiccups.  Without
        # this floor the synthetic EE population would be implausibly
        # perfect and every relative delta would saturate.
        mos -= float(s_glitch.exponential(glitch_penalty_scale))
        rating = int(np.clip(round(mos + s_noise.normal(0.0, 0.55)),
                             1, 5))

        # Response bias: the annoyed rate more readily (disable via
        # ``response_bias=False`` for the robustness ablation).
        if response_bias:
            p_respond = 0.10 if rating > 2 else 0.16
        else:
            p_respond = 0.12
        if s_respond.random() >= p_respond:
            continue
        rated.append(RatedCall(
            subnet_pair=pair, category=category,
            pc_class=pc_class, rating=rating))
    return rated


def synthesize_provider_year(n_calls: int = 200_000, seed: int = 0,
                             n_subnet_pairs: int = 3000,
                             wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                             wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                             device_penalty_scale: float =
                             DEVICE_PENALTY_SCALE,
                             glitch_penalty_scale: float =
                             GLITCH_PENALTY_SCALE,
                             response_bias: bool = True
                             ) -> ProviderDataset:
    """Generate the synthetic year of rated calls (scalar reference)."""
    pairs = pair_state(seed, n_subnet_pairs)
    dataset = ProviderDataset()
    for block in range(n_call_blocks(n_calls)):
        count = min(CALL_BLOCK, n_calls - block * CALL_BLOCK)
        dataset.calls.extend(synthesize_provider_block(
            block, count, seed, pairs,
            wifi_loss_median=wifi_loss_median,
            wifi_loss_sigma=wifi_loss_sigma,
            device_penalty_scale=device_penalty_scale,
            glitch_penalty_scale=glitch_penalty_scale,
            response_bias=response_bias))
    return dataset


# ---------------------------------------------------------------------------
# Table 1 analysis (the paper's machinery, verbatim)

def _relative_delta(pcr_all: float, pcr_subset: float) -> float:
    """PCR_delta = (PCR_all - PCR_X) / PCR_all * 100 (positive = better)."""
    return (pcr_all - pcr_subset) / pcr_all * 100.0


def _balanced_pairs(calls: Iterable[RatedCall]) -> Set[int]:
    """Subnet pairs with at least as many EE as WW rated calls."""
    ee: Dict[int, int] = {}
    ww: Dict[int, int] = {}
    for call in calls:
        if call.category == "EE":
            ee[call.subnet_pair] = ee.get(call.subnet_pair, 0) + 1
        elif call.category == "WW":
            ww[call.subnet_pair] = ww.get(call.subnet_pair, 0) + 1
    return {pair for pair, n_ee in ee.items()
            if n_ee >= ww.get(pair, 0)}


def _row(label: str, calls: List[RatedCall],
         pcr_all: float) -> Table1Row:
    def pcr_of(category: str) -> float:
        subset = [c for c in calls if c.category == category]
        if not subset:
            return float("nan")
        return float(np.mean([c.poor for c in subset]))

    return Table1Row(
        label=label,
        delta_ee_pct=_relative_delta(pcr_all, pcr_of("EE")),
        delta_ew_pct=_relative_delta(pcr_all, pcr_of("EW")),
        delta_ww_pct=_relative_delta(pcr_all, pcr_of("WW")),
        n_calls=len(calls))


def analyze_table1(dataset: ProviderDataset) -> List[Table1Row]:
    """The four rows of Table 1."""
    calls = dataset.calls
    pcr_all = dataset.pcr()

    balanced = _balanced_pairs(calls)
    balanced_calls = [c for c in calls if c.subnet_pair in balanced]
    pc_calls = [c for c in calls if c.pc_class]
    pc_balanced_pairs = _balanced_pairs(pc_calls)
    pc_balanced = [c for c in pc_calls
                   if c.subnet_pair in pc_balanced_pairs]

    return [
        _row("All", calls, pcr_all),
        _row("/24s with #E>=#W", balanced_calls, pcr_all),
        _row("PC", pc_calls, pcr_all),
        _row("PC, /24s with #E>=#W", pc_balanced, pcr_all),
    ]
