"""The large-VoIP-service dataset and the Table 1 analysis.

The paper analyzes a year of user-rated calls from a service with hundreds
of millions of users, asking one question: is the WiFi last hop a
significant contributor to poor call quality?  The key methodology is the
*subset analysis*: relative PCR deltas for calls split by last-hop type
(EE / EW / WW), re-computed over (a) only /24-subnet pairs with at least as
many EE as WW rated calls (controls for WiFi clients living in badly
backhauled places) and (b) only PC-class devices (controls for cheap
mobile hardware).

The synthetic population encodes only the hypotheses the paper itself
offers for the confounds:

* WiFi endpoints add an extra, heavy-tailed network impairment;
* WiFi clients are over-represented in poorly backhauled subnets
  (malls, airports) — the row-2 confound;
* WiFi clients are more often cheap mobile devices whose hardware hurts
  perceived quality — the row-3 confound;
* users rate calls only sometimes, and are a little more likely to rate
  after a bad call (the response bias the paper notes).

The analysis machinery is then exactly the paper's, so Table 1's structure
(everything improves under each control, but a large EE-vs-WW gap remains)
is a *finding* of the synthetic study, not something hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.random import RandomRouter
from repro.voice.quality import emodel_r_factor, r_to_mos


@dataclass
class RatedCall:
    """One user-rated call in the provider dataset."""

    subnet_pair: int
    category: str        # "EE" / "EW" / "WW"
    pc_class: bool       # both endpoints PC-class devices?
    rating: int          # 1..5
    @property
    def poor(self) -> bool:
        return self.rating <= 2


@dataclass
class ProviderDataset:
    """A year's worth of rated calls."""

    calls: List[RatedCall] = field(default_factory=list)

    def pcr(self, calls: Optional[Sequence[RatedCall]] = None) -> float:
        if calls is None:
            subset: Sequence[RatedCall] = self.calls
        else:
            subset = list(calls)
        if not subset:
            return float("nan")
        return float(np.mean([c.poor for c in subset]))


@dataclass
class Table1Row:
    """One row of Table 1: relative PCR deltas vs the overall baseline."""

    label: str
    delta_ee_pct: float
    delta_ew_pct: float
    delta_ww_pct: float
    n_calls: int


# ---------------------------------------------------------------------------
# synthesis

#: subnet-pair archetypes: (share, mean extra one-way delay s, backhaul
#: loss scale, P(endpoint on WiFi), P(device PC-class | WiFi))
_ARCHETYPES = {
    "enterprise": (0.35, 0.030, 0.002, 0.35, 0.85),
    "home":       (0.40, 0.045, 0.004, 0.55, 0.55),
    "public":     (0.25, 0.060, 0.010, 0.90, 0.35),
}

#: P(device PC-class | Ethernet endpoint)
_PC_GIVEN_ETHERNET = 0.95


#: calibration knobs — ablations sweep them by passing explicit keyword
#: arguments.  They are bound as *def-time* signature defaults below:
#: the values are pinned by the source text the runner's code
#: fingerprint hashes, so a cached result can never disagree with the
#: defaults in force when it was computed (call-time ``None`` fallbacks
#: would escape the cache key — reproflow KEY501).
WIFI_LOSS_MEDIAN = 0.005      # median extra loss per WiFi endpoint
WIFI_LOSS_SIGMA = 0.9         # lognormal spread of the WiFi loss
DEVICE_PENALTY_SCALE = 0.07   # mean MOS penalty of non-PC hardware
GLITCH_PENALTY_SCALE = 0.65   # mean MOS penalty of non-network glitches


def synthesize_provider_year(n_calls: int = 200_000, seed: int = 0,
                             n_subnet_pairs: int = 3000,
                             wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                             wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                             device_penalty_scale: float =
                             DEVICE_PENALTY_SCALE,
                             glitch_penalty_scale: float =
                             GLITCH_PENALTY_SCALE,
                             response_bias: bool = True
                             ) -> ProviderDataset:
    """Generate the synthetic year of rated calls."""
    router = RandomRouter(seed)
    rng = router.stream("provider")

    names = list(_ARCHETYPES)
    shares = np.array([_ARCHETYPES[n][0] for n in names])
    pair_archetype = rng.choice(len(names), size=n_subnet_pairs,
                                p=shares / shares.sum())
    # Per-pair backhaul multiplier: some pairs are just bad.
    pair_backhaul = rng.lognormal(mean=0.0, sigma=0.6,
                                  size=n_subnet_pairs)

    dataset = ProviderDataset()
    pair_ids = rng.integers(0, n_subnet_pairs, size=n_calls)
    for i in range(n_calls):
        pair = int(pair_ids[i])
        name = names[int(pair_archetype[pair])]
        _, base_delay, backhaul_loss, p_wifi, p_pc_wifi = _ARCHETYPES[name]

        endpoints = []
        for _ in range(2):
            on_wifi = rng.random() < p_wifi
            pc = rng.random() < (p_pc_wifi if on_wifi
                                 else _PC_GIVEN_ETHERNET)
            endpoints.append((on_wifi, pc))
        n_wifi = sum(1 for w, _ in endpoints if w)
        category = {0: "EE", 1: "EW", 2: "WW"}[n_wifi]
        pc_class = all(pc for _, pc in endpoints)

        # Network impairments: backhaul + per-WiFi-endpoint access loss.
        loss = backhaul_loss * float(pair_backhaul[pair])
        for on_wifi, _ in endpoints:
            if on_wifi:
                loss += float(rng.lognormal(np.log(wifi_loss_median),
                                            wifi_loss_sigma))
        loss = min(loss, 0.6)
        burst = 1.0 + 2.5 * min(loss * 10.0, 1.0)  # WiFi loss is bursty
        delay = base_delay + float(rng.exponential(0.040))

        r = emodel_r_factor(loss, delay, mean_burst_len=burst)
        mos = r_to_mos(r)
        # Cheap hardware degrades what the user *hears*, not the network.
        if not pc_class:
            mos -= float(rng.exponential(device_penalty_scale))
        # Non-network glitches everyone suffers regardless of access type:
        # echo, background noise, far-end problems, app hiccups.  Without
        # this floor the synthetic EE population would be implausibly
        # perfect and every relative delta would saturate.
        mos -= float(rng.exponential(glitch_penalty_scale))
        rating = int(np.clip(round(mos + rng.normal(0.0, 0.55)), 1, 5))

        # Response bias: the annoyed rate more readily (disable via
        # ``response_bias=False`` for the robustness ablation).
        if response_bias:
            p_respond = 0.10 if rating > 2 else 0.16
        else:
            p_respond = 0.12
        if rng.random() >= p_respond:
            continue
        dataset.calls.append(RatedCall(
            subnet_pair=pair, category=category,
            pc_class=pc_class, rating=rating))
    return dataset


# ---------------------------------------------------------------------------
# Table 1 analysis (the paper's machinery, verbatim)

def _relative_delta(pcr_all: float, pcr_subset: float) -> float:
    """PCR_delta = (PCR_all - PCR_X) / PCR_all * 100 (positive = better)."""
    return (pcr_all - pcr_subset) / pcr_all * 100.0


def _balanced_pairs(calls: Sequence[RatedCall]) -> set:
    """Subnet pairs with at least as many EE as WW rated calls."""
    ee: Dict[int, int] = {}
    ww: Dict[int, int] = {}
    for call in calls:
        if call.category == "EE":
            ee[call.subnet_pair] = ee.get(call.subnet_pair, 0) + 1
        elif call.category == "WW":
            ww[call.subnet_pair] = ww.get(call.subnet_pair, 0) + 1
    return {pair for pair, n_ee in ee.items()
            if n_ee >= ww.get(pair, 0)}


def _row(label: str, calls: Sequence[RatedCall],
         pcr_all: float) -> Table1Row:
    def pcr_of(category: str) -> float:
        subset = [c for c in calls if c.category == category]
        if not subset:
            return float("nan")
        return float(np.mean([c.poor for c in subset]))

    return Table1Row(
        label=label,
        delta_ee_pct=_relative_delta(pcr_all, pcr_of("EE")),
        delta_ew_pct=_relative_delta(pcr_all, pcr_of("EW")),
        delta_ww_pct=_relative_delta(pcr_all, pcr_of("WW")),
        n_calls=len(calls))


def analyze_table1(dataset: ProviderDataset) -> List[Table1Row]:
    """The four rows of Table 1."""
    calls = dataset.calls
    pcr_all = dataset.pcr()

    balanced = _balanced_pairs(calls)
    balanced_calls = [c for c in calls if c.subnet_pair in balanced]
    pc_calls = [c for c in calls if c.pc_class]
    pc_balanced_pairs = _balanced_pairs(pc_calls)
    pc_balanced = [c for c in pc_calls
                   if c.subnet_pair in pc_balanced_pairs]

    return [
        _row("All", calls, pcr_all),
        _row("/24s with #E>=#W", balanced_calls, pcr_all),
        _row("PC", pc_calls, pcr_all),
        _row("PC, /24s with #E>=#W", pc_balanced, pcr_all),
    ]
