"""The NetTest distributed measurement study (Section 3.2, Table 2).

274 WiFi-connected participants across 22 countries plus 10 well-connected
Azure nodes ran VoIP-like streams (64 kbps, 20 ms spacing, 2 minutes)
between orchestrated pairs: WiFi client <-> Azure node ("EW"), WiFi client
<-> WiFi client ("WW"), each either direct or through a cloud relay.  The
relays in the paper's deployment were overloaded, which is why relayed
categories show dramatically higher PCR — the model keeps that artifact.

Per-call pipeline: each WiFi endpoint contributes a bursty loss process
(drawn from a per-client quality distribution — some homes are just bad),
the WAN contributes base delay plus jitter, relays add overload delay
spikes; the trace is scored through the same G.711/playout/E-model
pipeline as everything else.  The playout buffer adapts to the path's base
delay, so only *jitter* beyond the buffer causes late losses, while the
base delay enters the E-model's delay impairment.

Block protocol
--------------

Like the provider study, call randomness is block-structured for
population scale: the schedule (category per global call index, in
:data:`CATEGORY_COUNTS` order) is a pure function of ``scale``; the
shared per-client state comes from the root router's
``"nettest.clients"`` stream; and call ``i`` draws everything else from
its *own* stream ``f"call-{j}"`` of block ``i // NETTEST_BLOCK``'s
private router.  Each call's trace simulation is data-dependent (the
Gilbert chain and busy-spell loops consume a variable number of draws),
which is exactly why every call gets a private stream: any block — and
any call within it — can be rendered independently, in any process, and
:func:`run_nettest_study` and the population backend
(:mod:`repro.studies.population`) produce bit-identical calls because
they execute the same :func:`simulate_call` on the same streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.gilbert import GilbertParams, sample_loss_array
from repro.core.config import G711_PROFILE, StreamProfile
from repro.core.packet import LinkTrace
from repro.sim.random import RandomRouter
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call

#: the paper's call-category counts (Table 2)
CATEGORY_COUNTS = {
    "EW": 6953,
    "WW": 1240,
    "EW-Relayed": 798,
    "WW-Relayed": 233,
}

N_CLIENTS = 274
N_AZURE_NODES = 10

#: calls per protocol block — the unit the population backend shards,
#: caches and streams (each call is a full 2-minute trace simulation,
#: so blocks are much smaller than the provider study's).
NETTEST_BLOCK = 64


@dataclass
class NetTestCall:
    """One simulated call and its score."""

    category: str
    client_a: int
    client_b: int          # -1 for an Azure endpoint
    mos: float

    @property
    def poor(self) -> bool:
        return self.mos < POOR_MOS_THRESHOLD


@dataclass
class NetTestDataset:
    """All simulated calls plus per-user aggregates."""

    calls: List[NetTestCall] = field(default_factory=list)

    def pcr(self, category: Optional[str] = None) -> float:
        subset = [c for c in self.calls
                  if category is None or c.category == category]
        if not subset:
            return float("nan")
        return float(np.mean([c.poor for c in subset]))

    def table2(self) -> List[Tuple[str, int, float]]:
        """(category, total calls, PCR %) rows plus the total."""
        rows = []
        for category in CATEGORY_COUNTS:
            subset = [c for c in self.calls if c.category == category]
            rows.append((category, len(subset),
                         100.0 * self.pcr(category)))
        rows.append(("Total", len(self.calls), 100.0 * self.pcr()))
        return rows

    def per_user_pcr(self) -> Dict[int, float]:
        """PCR per participating WiFi client."""
        per_user: Dict[int, List[bool]] = {}
        for call in self.calls:
            for user in (call.client_a, call.client_b):
                if user >= 0:
                    per_user.setdefault(user, []).append(call.poor)
        return {u: float(np.mean(poors))
                for u, poors in per_user.items()}

    def spatial_stats(self) -> Tuple[float, float]:
        """(fraction of users with >= 1 poor call,
        fraction with PCR >= 20%) — the Section 3.2 spatial numbers."""
        per_user = self.per_user_pcr()
        values = np.array(list(per_user.values()))
        return (float(np.mean(values > 0.0)),
                float(np.mean(values >= 0.20)))


def _client_gilbert(rng: np.random.Generator) -> GilbertParams:
    """One participant's home-WiFi loss process.

    Heavy-tailed across the population: the median home loses ~0.7% of
    packets in bursts; the worst decile is far worse.
    """
    bad_frac = float(np.exp(rng.normal(np.log(0.008), 1.2)))
    bad_frac = min(bad_frac, 0.4)
    mean_bad = float(rng.uniform(0.1, 0.6))
    mean_good = mean_bad * (1.0 - bad_frac) / max(bad_frac, 1e-4)
    return GilbertParams(
        mean_good_s=mean_good, mean_bad_s=mean_bad,
        loss_good=float(rng.uniform(0.0, 0.002)),
        loss_bad=float(rng.uniform(0.5, 0.95)))


def _wan_jitter(rng: np.random.Generator, n: int,
                relayed: bool) -> np.ndarray:
    """Per-packet delay beyond the path's base (playout-adapted) delay."""
    jitter = rng.lognormal(mean=np.log(0.004), sigma=0.8, size=n)
    if relayed:
        # Overloaded relay: queueing comes in correlated busy spells whose
        # per-call severity varies with the relay's instantaneous load
        # (the paper calls the relayed PCR "an artifact of the overloading
        # of the relay nodes").  Many relayed calls squeak through; badly
        # timed ones are wrecked.
        severity = float(rng.beta(0.9, 2.0)) * 0.20
        if severity > 0.005:
            busy = _busy_spells(rng, n, busy_prob=severity, mean_spell=40)
            jitter = jitter + busy * rng.exponential(0.180, size=n)
    return jitter


def _busy_spells(rng: np.random.Generator, n: int, busy_prob: float,
                 mean_spell: int) -> np.ndarray:
    """A 0/1 on-off series with geometric spell lengths (overload comes
    and goes on multi-second timescales, not per packet).

    Busy spells average ``mean_spell`` packets; idle spells are sized so
    the long-run busy fraction is ``busy_prob``.
    """
    idle_mean = mean_spell * (1.0 - busy_prob) / busy_prob
    out = np.zeros(n)
    i = 0
    busy = rng.random() < busy_prob
    while i < n:
        mean = mean_spell if busy else idle_mean
        length = max(int(rng.geometric(1.0 / mean)), 1)
        if busy:
            out[i:i + length] = 1.0
        i += length
        busy = not busy
    return out


# ---------------------------------------------------------------------------
# block protocol

@dataclass(frozen=True)
class ClientState:
    """Shared per-participant state (quality processes, base delays).

    Drawn once per population from the root router's
    ``"nettest.clients"`` stream; every block — scalar or population
    backend, any process — rebuilds the identical state.
    """

    quality: Tuple[GilbertParams, ...]
    base_delay: np.ndarray


def client_state(seed: int) -> ClientState:
    """Draw the 274 participants' loss processes and base delays."""
    stream = RandomRouter(seed).stream("nettest.clients")
    quality = tuple(_client_gilbert(stream) for _ in range(N_CLIENTS))
    #: base one-way delay per client to the nearest relay/peer region
    base_delay = stream.uniform(0.020, 0.120, size=N_CLIENTS)
    return ClientState(quality=quality, base_delay=base_delay)


def call_schedule(scale: float = 1.0) -> List[Tuple[str, int]]:
    """``(category, n_calls)`` in :data:`CATEGORY_COUNTS` order.

    ``scale`` < 1 shrinks every category proportionally (for quick
    tests); every category keeps at least one call.
    """
    return [(category, max(int(round(count * scale)), 1))
            for category, count in CATEGORY_COUNTS.items()]


def schedule_size(scale: float = 1.0) -> int:
    """Total calls in the scaled schedule."""
    return sum(count for _, count in call_schedule(scale))


def category_of_index(index: int, scale: float = 1.0) -> str:
    """Category of global call ``index`` under the scaled schedule."""
    offset = 0
    for category, count in call_schedule(scale):
        offset += count
        if index < offset:
            return category
    raise IndexError(
        f"call {index} outside the {offset}-call schedule")


def nettest_block_router(seed: int, block: int) -> RandomRouter:
    """The private router of call block ``block``."""
    return RandomRouter(seed).fork(f"nettest-block-{block}")


def simulate_call(category: str, rng: np.random.Generator,
                  clients: ClientState,
                  profile: StreamProfile = G711_PROFILE) -> NetTestCall:
    """Simulate and score one call from its private stream.

    The draw order within the stream is fixed (endpoint picks, loss
    processes, jitter, path extras); the *number* of draws is
    data-dependent, which is why the stream is private to the call.
    """
    n = profile.n_packets
    spacing = profile.inter_packet_spacing_s
    relayed = "Relayed" in category
    two_wifi = category.startswith("WW")

    a = int(rng.integers(0, N_CLIENTS))
    if two_wifi:
        b = int(rng.integers(0, N_CLIENTS))
    else:
        b = -1

    losses = sample_loss_array(clients.quality[a], n, spacing, rng)
    if two_wifi:
        losses = np.maximum(
            losses,
            sample_loss_array(clients.quality[b], n, spacing, rng))
    jitter = _wan_jitter(rng, n, relayed)
    delivered = losses < 0.5
    delays = np.where(delivered, jitter, np.nan)
    trace = LinkTrace(category,
                      np.arange(n) * spacing, delivered, delays)

    base_delay = float(clients.base_delay[a])
    if not two_wifi:
        # Azure endpoints sit in distant datacenters; the paper's
        # orchestration often crossed continents.
        base_delay += float(rng.uniform(0.020, 0.080))
    if relayed:
        base_delay += 0.060   # extra relay hop
    score = score_call(trace, extra_one_way_delay_s=base_delay)
    return NetTestCall(category=category, client_a=a, client_b=b,
                       mos=score.mos)


def render_nettest_block(block: int, count: int, seed: int,
                         clients: ClientState, scale: float = 1.0,
                         profile: StreamProfile = G711_PROFILE
                         ) -> List[NetTestCall]:
    """Render calls ``[block * NETTEST_BLOCK, ... + count)`` in order."""
    router = nettest_block_router(seed, block)
    calls: List[NetTestCall] = []
    for local in range(count):
        index = block * NETTEST_BLOCK + local
        category = category_of_index(index, scale)
        calls.append(simulate_call(
            category, router.stream(f"call-{local}"), clients,
            profile=profile))
    return calls


def run_nettest_study(seed: int = 0,
                      profile: StreamProfile = G711_PROFILE,
                      scale: float = 1.0) -> NetTestDataset:
    """Simulate the full 9224-call study (scalar reference path).

    ``scale`` < 1 shrinks every category proportionally (for quick tests).
    """
    clients = client_state(seed)
    total = schedule_size(scale)
    dataset = NetTestDataset()
    block = 0
    while block * NETTEST_BLOCK < total:
        count = min(NETTEST_BLOCK, total - block * NETTEST_BLOCK)
        dataset.calls.extend(render_nettest_block(
            block, count, seed, clients, scale=scale, profile=profile))
        block += 1
    return dataset
