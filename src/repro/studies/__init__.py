"""Section 3's measurement studies, rebuilt as synthetic-population
simulations.

* :mod:`repro.studies.provider` — a year of rated calls from a large VoIP
  service and the Table 1 subset analysis (EE/EW/WW relative PCR deltas).
* :mod:`repro.studies.nettest`  — the 274-user / 9224-call NetTest
  distributed testbed and the Table 2 per-category PCR breakdown.
* :mod:`repro.studies.scan`     — the BSSID availability site survey
  behind Figure 1.
"""

from repro.studies.provider import (
    ProviderDataset,
    Table1Row,
    analyze_table1,
    synthesize_provider_year,
)
from repro.studies.nettest import NetTestDataset, run_nettest_study
from repro.studies.scan import SurveyLocation, run_site_survey

__all__ = [
    "NetTestDataset",
    "ProviderDataset",
    "SurveyLocation",
    "Table1Row",
    "analyze_table1",
    "run_nettest_study",
    "run_site_survey",
    "synthesize_provider_year",
]
