"""Whole-population backends for the Section 3 studies (Tables 1 & 2).

The scalar paths in :mod:`repro.studies.provider` and
:mod:`repro.studies.nettest` are readable references: one Python object
per call.  At the paper's scale — a *year* of provider ratings, 10^6+
calls — that representation is the bottleneck, so this module is the
scale path:

* **Vectorized generation** — :func:`render_provider_block` replays a
  provider call block as whole-array numpy draws from the *same* named
  substreams as :func:`repro.studies.provider.synthesize_provider_block`.
  Because a batched ``Generator`` draw consumes the bit stream exactly
  like the equivalent sequence of scalar draws, and the arithmetic
  mirrors the scalar expressions op for op (E-model, MOS cubic,
  half-even rating rounding), the rendered calls are **bit-identical**
  to the scalar loop (pinned by ``tests/test_population.py``).

* **Runner sharding** — blocks are mapped through
  :func:`repro.runner.map_configs` as module-level tasks
  (:func:`provider_pass1_metrics`, :func:`provider_pass2_metrics`,
  :func:`nettest_block_metrics`) with the block index as the cache-keyed
  seed, so populations parallelize with ``--jobs`` and cache per block.
  Every knob is an explicit config entry with a def-time default
  (reproflow KEY501): nothing that changes a result escapes the key.

* **Streaming aggregation** — tasks never return call lists.  Each block
  reduces to :mod:`repro.analysis.sketch` payloads (exact labeled
  counters, a fixed-grid MOS CDF, Welford moments) and the drivers fold
  them **in spec order**, so serial, ``--jobs N`` and warm-cache
  executions merge identically and the batch digest is byte-stable.
  Memory is flat in the population size: per-block arrays plus counters
  bounded by ``n_subnet_pairs`` / :data:`~repro.studies.nettest.N_CLIENTS`.

Two-pass balanced-/24 protocol (Table 1 rows 2 and 4)
-----------------------------------------------------

The "/24s with #E>=#W" filter needs *global* per-pair EE/WW counts
before any row membership is known, so the provider study runs two
passes over the same blocks:

1. :func:`provider_pass1_metrics` returns the All/PC counters plus
   sparse per-pair EE/WW tallies (all calls and PC-only calls);
2. the driver merges pass-1 payloads in spec order, computes the
   balanced pair sets exactly like the scalar
   ``provider._balanced_pairs`` (pairs with at least one EE rated call
   and #EE >= #WW), and hands them to :func:`provider_pass2_metrics`
   as sorted lists **inside the task config** — part of the cache key,
   so a pass-2 result can never pair with the wrong filter.

Observability: each task wraps its phases in ``population.render`` /
``population.reduce`` spans on a :class:`repro.obs.SimulatedClock`
(advanced by calls generated — never wall clock) and bumps
``population.*`` counters, all merged through the runner's
deterministic metrics path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sketch import (
    GridCdf,
    LabeledCounts,
    MomentSketch,
    wilson_interval,
)
from repro.obs import SimulatedClock, Span, SpanTracker
from repro.obs.runtime import active_registry
from repro.runner import RunnerConfig, map_configs
from repro.studies.nettest import (
    CATEGORY_COUNTS,
    NETTEST_BLOCK,
    client_state,
    render_nettest_block,
    schedule_size,
)
from repro.studies.provider import (
    CALL_BLOCK,
    DEVICE_PENALTY_SCALE,
    GLITCH_PENALTY_SCALE,
    WIFI_LOSS_MEDIAN,
    WIFI_LOSS_SIGMA,
    PairState,
    RatedCall,
    Table1Row,
    _CATEGORY_BY_WIFI_COUNT,
    _PC_GIVEN_ETHERNET,
    _relative_delta,
    block_router,
    n_call_blocks,
    pair_state,
)
from repro.voice.quality import BPL_G711, IE_G711, R0

__all__ = [
    "MOS_GRID",
    "NETTEST_TASK",
    "NetTestPopulationTables",
    "PASS1_TASK",
    "PASS2_TASK",
    "ProviderBlockArrays",
    "ProviderPopulationTables",
    "nettest_block_metrics",
    "nettest_population_study",
    "provider_block_calls",
    "provider_pass1_metrics",
    "provider_pass2_metrics",
    "provider_population_study",
    "render_provider_block",
]

#: runner entry points
PASS1_TASK = "repro.studies.population:provider_pass1_metrics"
PASS2_TASK = "repro.studies.population:provider_pass2_metrics"
NETTEST_TASK = "repro.studies.population:nettest_block_metrics"

#: the fixed grid every MOS sketch uses — merging requires identical
#: grids, so there is exactly one (lo, hi, bins) for the whole repo.
MOS_GRID = (0.0, 5.0, 100)

_CATEGORIES = ("EE", "EW", "WW")


# ---------------------------------------------------------------------------
# vectorized provider rendering (bit-exact vs the scalar reference)

@dataclass(frozen=True)
class ProviderBlockArrays:
    """One rendered provider call block, every call as array rows.

    ``rated`` marks the calls the user actually rated; the other fields
    cover *all* ``count`` calls so downstream cuts (rated or not) stay
    possible without re-rendering.
    """

    pair: np.ndarray        # subnet pair per call
    wifi_count: np.ndarray  # WiFi endpoints per call: 0=EE, 1=EW, 2=WW
    pc_class: np.ndarray    # both endpoints PC-class?
    mos: np.ndarray         # pre-noise MOS after device/glitch penalties
    rating: np.ndarray      # 1..5 (what the user would rate)
    rated: np.ndarray       # did the user rate the call?


def _burst_ratio_array(loss: np.ndarray,
                       mean_burst_len: np.ndarray) -> np.ndarray:
    # Mirrors voice.quality.burst_ratio; mean_burst_len here is always
    # >= 1.0 so the scalar <= 0 early-out never fires.
    p = np.minimum(np.maximum(loss, 0.0), 0.99)
    random_mean = 1.0 / (1.0 - p)
    return np.maximum(mean_burst_len / random_mean, 1.0)


def _delay_impairment_array(one_way_delay_s: np.ndarray) -> np.ndarray:
    d_ms = np.maximum(one_way_delay_s, 0.0) * 1000.0
    return np.where(d_ms < 100.0, d_ms * 0.024,
                    0.024 * d_ms + 0.11 * (d_ms - 177.3) * (d_ms > 177.3))


def _loss_impairment_array(loss: np.ndarray,
                           burst_ratio: np.ndarray) -> np.ndarray:
    ppl = np.maximum(loss, 0.0) * 100.0
    burst_r = np.maximum(burst_ratio, 1.0)
    return IE_G711 + (95.0 - IE_G711) * ppl / (ppl / burst_r + BPL_G711)


def _emodel_r_array(loss: np.ndarray, one_way_delay_s: np.ndarray,
                    mean_burst_len: np.ndarray) -> np.ndarray:
    br = _burst_ratio_array(loss, mean_burst_len)
    r = (R0 - _delay_impairment_array(one_way_delay_s)
         - _loss_impairment_array(loss, br))
    return np.clip(r, 0.0, 100.0)


def _r_to_mos_array(r: np.ndarray) -> np.ndarray:
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    mos = np.minimum(np.maximum(mos, 1.0), 4.5)
    return np.where(r <= 0, 1.0, np.where(r >= 100, 4.5, mos))


def render_provider_block(block: int, count: int, seed: int,
                          pairs: PairState,
                          wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                          wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                          device_penalty_scale: float =
                          DEVICE_PENALTY_SCALE,
                          glitch_penalty_scale: float =
                          GLITCH_PENALTY_SCALE,
                          response_bias: bool = True
                          ) -> ProviderBlockArrays:
    """Render one call block as arrays, bit-identical to the scalar loop.

    Consumes exactly the draw layout documented on
    :func:`repro.studies.provider.synthesize_provider_block`, one
    whole-block array draw per named substream, and mirrors the scalar
    arithmetic op for op (the E-model pipeline, the MOS cubic, the
    half-even rating rounding), so every field equals the scalar path's
    to the last bit.
    """
    router = block_router(seed, block)
    n_subnet_pairs = len(pairs.archetype)
    log_median = np.log(wifi_loss_median)

    pair = router.stream("pair").integers(0, n_subnet_pairs, size=count)
    wifi_u = router.stream("wifi").random(size=(count, 2))
    pc_u = router.stream("pc").random(size=(count, 2))
    access = router.stream("access-loss").lognormal(
        log_median, wifi_loss_sigma, size=(count, 2))
    delay_draw = router.stream("delay").exponential(0.040, size=count)
    device = router.stream("device").exponential(
        device_penalty_scale, size=count)
    glitch = router.stream("glitch").exponential(
        glitch_penalty_scale, size=count)
    noise = router.stream("rating-noise").normal(0.0, 0.55, size=count)
    respond_u = router.stream("respond").random(size=count)

    archetype = pairs.archetype[pair]
    on_wifi = wifi_u < pairs.p_wifi[archetype][:, None]
    pc = pc_u < np.where(on_wifi, pairs.p_pc_wifi[archetype][:, None],
                         _PC_GIVEN_ETHERNET)
    wifi_count = on_wifi.sum(axis=1)
    pc_class = pc[:, 0] & pc[:, 1]

    # Adding 0.0 for an Ethernet endpoint is a bitwise no-op (loss > 0),
    # so drawing unconditionally and applying conditionally preserves
    # the scalar accumulation order: (base + access0) + access1.
    loss = pairs.backhaul_loss[archetype] * pairs.backhaul[pair]
    loss = loss + np.where(on_wifi[:, 0], access[:, 0], 0.0)
    loss = loss + np.where(on_wifi[:, 1], access[:, 1], 0.0)
    loss = np.minimum(loss, 0.6)
    burst = 1.0 + 2.5 * np.minimum(loss * 10.0, 1.0)
    delay = pairs.base_delay[archetype] + delay_draw

    r = _emodel_r_array(loss, delay, burst)
    mos = _r_to_mos_array(r)
    mos = mos - np.where(pc_class, 0.0, device)
    mos = mos - glitch
    rating = np.clip(np.round(mos + noise), 1.0, 5.0).astype(np.int64)

    if response_bias:
        p_respond = np.where(rating > 2, 0.10, 0.16)
    else:
        p_respond = np.full(count, 0.12)
    rated = respond_u < p_respond
    return ProviderBlockArrays(pair=pair, wifi_count=wifi_count,
                               pc_class=pc_class, mos=mos,
                               rating=rating, rated=rated)


def provider_block_calls(arrays: ProviderBlockArrays) -> List[RatedCall]:
    """The block's rated calls as scalar objects (parity tests and any
    caller that wants the reference representation back)."""
    return [RatedCall(
        subnet_pair=int(arrays.pair[i]),
        category=_CATEGORY_BY_WIFI_COUNT[int(arrays.wifi_count[i])],
        pc_class=bool(arrays.pc_class[i]),
        rating=int(arrays.rating[i]))
        for i in np.nonzero(arrays.rated)[0]]


# ---------------------------------------------------------------------------
# per-block reduction helpers

def _observe_subset(table: LabeledCounts, subset: str, mask: np.ndarray,
                    cat: np.ndarray, poor: np.ndarray) -> None:
    """Fold one subset's per-category counters into ``table``."""
    table.observe((subset, "all"), int(mask.sum()),
                  int((mask & poor).sum()))
    for code, name in enumerate(_CATEGORIES):
        in_cat = mask & (cat == code)
        table.observe((subset, name), int(in_cat.sum()),
                      int((in_cat & poor).sum()))


def _pair_rows(pair: np.ndarray, cat: np.ndarray, mask: np.ndarray,
               n_subnet_pairs: int) -> List[List[int]]:
    """Sparse ``[pair, #EE, #WW]`` rows over the masked rated calls."""
    ee = np.bincount(pair[mask & (cat == 0)], minlength=n_subnet_pairs)
    ww = np.bincount(pair[mask & (cat == 2)], minlength=n_subnet_pairs)
    hot = np.nonzero((ee > 0) | (ww > 0))[0]
    return [[int(p), int(ee[p]), int(ww[p])] for p in hot]


def _merge_pair_rows(ee: Dict[int, int], ww: Dict[int, int],
                     rows: Sequence[Sequence[int]]) -> None:
    for pair, n_ee, n_ww in rows:
        if n_ee:
            ee[int(pair)] = ee.get(int(pair), 0) + int(n_ee)
        if n_ww:
            ww[int(pair)] = ww.get(int(pair), 0) + int(n_ww)


def _balanced_from_counts(ee: Dict[int, int],
                          ww: Dict[int, int]) -> List[int]:
    """Exactly ``provider._balanced_pairs`` on merged counters: pairs
    with at least one EE rated call (an ``ee`` key) and #EE >= #WW."""
    return sorted(pair for pair, n_ee in ee.items()
                  if n_ee >= ww.get(pair, 0))


def _tracker(registry: Any) -> Tuple[SimulatedClock,
                                     Optional[SpanTracker]]:
    clock = SimulatedClock()
    if registry is None:
        return clock, None
    return clock, SpanTracker(clock, registry=registry,
                              source="population")


def _phase_span(tracker: Optional[SpanTracker], name: str,
                block: int) -> Optional[Span]:
    return tracker.span(name, block=block) if tracker is not None \
        else None


# ---------------------------------------------------------------------------
# provider runner tasks

def provider_pass1_metrics(block: int, *, count: int, root_seed: int,
                           n_subnet_pairs: int = 3000,
                           wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                           wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                           device_penalty_scale: float =
                           DEVICE_PENALTY_SCALE,
                           glitch_penalty_scale: float =
                           GLITCH_PENALTY_SCALE,
                           response_bias: bool = True) -> Dict[str, Any]:
    """Pass 1 over one provider block: All/PC counters + pair tallies.

    The payload is pure sketches — counter rows, sparse per-pair EE/WW
    tallies (bounded by ``n_subnet_pairs``), and the MOS CDF/moment
    sketches of the block's rated calls.  No call list ever leaves the
    task, which is what keeps million-call populations flat in memory.
    """
    pairs = pair_state(root_seed, n_subnet_pairs)
    registry = active_registry()
    clock, tracker = _tracker(registry)

    span = _phase_span(tracker, "population.render", block)
    arrays = render_provider_block(
        block, count, root_seed, pairs,
        wifi_loss_median=wifi_loss_median,
        wifi_loss_sigma=wifi_loss_sigma,
        device_penalty_scale=device_penalty_scale,
        glitch_penalty_scale=glitch_penalty_scale,
        response_bias=response_bias)
    clock.advance(float(count))
    if span is not None:
        span.end()

    span = _phase_span(tracker, "population.reduce", block)
    rated = arrays.rated
    cat = arrays.wifi_count[rated]
    poor = arrays.rating[rated] <= 2
    pair = arrays.pair[rated]
    pc = arrays.pc_class[rated]
    everything = np.ones(cat.shape, dtype=bool)

    table = LabeledCounts()
    _observe_subset(table, "all", everything, cat, poor)
    _observe_subset(table, "pc", pc, cat, poor)
    cdf = GridCdf(*MOS_GRID)
    cdf.observe_array(arrays.mos[rated])
    moments = MomentSketch()
    moments.observe_array(arrays.mos[rated])
    payload = {
        "table": table.to_payload(),
        "pairs": _pair_rows(pair, cat, everything, n_subnet_pairs),
        "pc_pairs": _pair_rows(pair, cat, pc, n_subnet_pairs),
        "mos_cdf": cdf.to_payload(),
        "mos_moments": moments.to_payload(),
    }
    clock.advance(float(count))
    if span is not None:
        span.end()
    if registry is not None:
        registry.counter("population.calls").inc(count)
        registry.counter("population.rated_calls").inc(int(rated.sum()))
    return payload


def provider_pass2_metrics(block: int, *, count: int, root_seed: int,
                           balanced: Sequence[int],
                           pc_balanced: Sequence[int],
                           n_subnet_pairs: int = 3000,
                           wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                           wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                           device_penalty_scale: float =
                           DEVICE_PENALTY_SCALE,
                           glitch_penalty_scale: float =
                           GLITCH_PENALTY_SCALE,
                           response_bias: bool = True
                           ) -> List[List[Any]]:
    """Pass 2: the balanced-/24 rows, re-rendered under the filter.

    ``balanced`` / ``pc_balanced`` are the driver-computed pair sets
    (sorted lists).  They arrive through the task config on purpose:
    they are inputs that change the result, so they must be part of the
    content address — a cached pass-2 payload can never be replayed
    against a different filter.
    """
    pairs = pair_state(root_seed, n_subnet_pairs)
    registry = active_registry()
    clock, tracker = _tracker(registry)

    span = _phase_span(tracker, "population.render", block)
    arrays = render_provider_block(
        block, count, root_seed, pairs,
        wifi_loss_median=wifi_loss_median,
        wifi_loss_sigma=wifi_loss_sigma,
        device_penalty_scale=device_penalty_scale,
        glitch_penalty_scale=glitch_penalty_scale,
        response_bias=response_bias)
    clock.advance(float(count))
    if span is not None:
        span.end()

    span = _phase_span(tracker, "population.reduce", block)
    rated = arrays.rated
    cat = arrays.wifi_count[rated]
    poor = arrays.rating[rated] <= 2
    pair = arrays.pair[rated]
    pc = arrays.pc_class[rated]
    in_balanced = np.isin(pair, np.asarray(list(balanced),
                                           dtype=np.int64))
    in_pc_balanced = pc & np.isin(pair, np.asarray(list(pc_balanced),
                                                   dtype=np.int64))
    table = LabeledCounts()
    _observe_subset(table, "balanced", in_balanced, cat, poor)
    _observe_subset(table, "pc_balanced", in_pc_balanced, cat, poor)
    clock.advance(float(count))
    if span is not None:
        span.end()
    if registry is not None:
        registry.counter("population.calls").inc(count)
    return table.to_payload()


# ---------------------------------------------------------------------------
# provider driver

@dataclass
class ProviderPopulationTables:
    """Merged Table 1 statistics for a whole provider population."""

    rows: List[Table1Row]
    overall_pcr: float
    pcr_wilson: Tuple[float, float]
    n_rated_calls: int
    n_calls: int
    n_balanced_pairs: int
    n_pc_balanced_pairs: int
    mos_cdf: GridCdf
    mos_moments: MomentSketch


def _provider_items(n_calls: int, base: Dict[str, Any]
                    ) -> List[Tuple[int, Dict[str, Any]]]:
    return [(block, dict(base, count=min(CALL_BLOCK,
                                         n_calls - block * CALL_BLOCK)))
            for block in range(n_call_blocks(n_calls))]


def provider_population_study(n_calls: int = 1_000_000, seed: int = 0,
                              n_subnet_pairs: int = 3000,
                              wifi_loss_median: float = WIFI_LOSS_MEDIAN,
                              wifi_loss_sigma: float = WIFI_LOSS_SIGMA,
                              device_penalty_scale: float =
                              DEVICE_PENALTY_SCALE,
                              glitch_penalty_scale: float =
                              GLITCH_PENALTY_SCALE,
                              response_bias: bool = True,
                              runner_config: Optional[RunnerConfig] =
                              None) -> ProviderPopulationTables:
    """Run the whole-population provider study (Table 1 at scale).

    Shards the population into :data:`~repro.studies.provider.CALL_BLOCK`
    blocks, maps the two passes through the runner, and folds the sketch
    payloads in spec order.  For any ``n_calls`` the resulting rows are
    exactly equal to ``analyze_table1(synthesize_provider_year(...))`` —
    the counters are exact, and every division happens in the same order
    on the same integers.
    """
    base: Dict[str, Any] = {
        "root_seed": seed,
        "n_subnet_pairs": n_subnet_pairs,
        "wifi_loss_median": wifi_loss_median,
        "wifi_loss_sigma": wifi_loss_sigma,
        "device_penalty_scale": device_penalty_scale,
        "glitch_penalty_scale": glitch_penalty_scale,
        "response_bias": response_bias,
    }
    items = _provider_items(n_calls, base)

    table = LabeledCounts()
    cdf = GridCdf(*MOS_GRID)
    moments = MomentSketch()
    pair_ee: Dict[int, int] = {}
    pair_ww: Dict[int, int] = {}
    pc_ee: Dict[int, int] = {}
    pc_ww: Dict[int, int] = {}
    # map_configs returns payloads in spec order — the merge contract.
    for payload in map_configs(PASS1_TASK, items, config=runner_config):
        table.merge(LabeledCounts.from_payload(payload["table"]))
        cdf.merge(GridCdf.from_payload(payload["mos_cdf"]))
        moments.merge(MomentSketch.from_payload(payload["mos_moments"]))
        _merge_pair_rows(pair_ee, pair_ww, payload["pairs"])
        _merge_pair_rows(pc_ee, pc_ww, payload["pc_pairs"])

    balanced = _balanced_from_counts(pair_ee, pair_ww)
    pc_balanced = _balanced_from_counts(pc_ee, pc_ww)
    items2 = [(block, dict(config, balanced=balanced,
                           pc_balanced=pc_balanced))
              for block, config in items]
    for payload in map_configs(PASS2_TASK, items2, config=runner_config):
        table.merge(LabeledCounts.from_payload(payload))

    pcr_all = table.pcr(("all", "all"))

    def subset_row(label: str, subset: str) -> Table1Row:
        return Table1Row(
            label=label,
            delta_ee_pct=_relative_delta(pcr_all,
                                         table.pcr((subset, "EE"))),
            delta_ew_pct=_relative_delta(pcr_all,
                                         table.pcr((subset, "EW"))),
            delta_ww_pct=_relative_delta(pcr_all,
                                         table.pcr((subset, "WW"))),
            n_calls=table.n((subset, "all")))

    rows = [
        subset_row("All", "all"),
        subset_row("/24s with #E>=#W", "balanced"),
        subset_row("PC", "pc"),
        subset_row("PC, /24s with #E>=#W", "pc_balanced"),
    ]
    return ProviderPopulationTables(
        rows=rows, overall_pcr=pcr_all,
        pcr_wilson=table.wilson(("all", "all")),
        n_rated_calls=table.n(("all", "all")), n_calls=n_calls,
        n_balanced_pairs=len(balanced),
        n_pc_balanced_pairs=len(pc_balanced),
        mos_cdf=cdf, mos_moments=moments)


# ---------------------------------------------------------------------------
# NetTest runner task + driver

def nettest_block_metrics(block: int, *, count: int, root_seed: int,
                          scale: float = 1.0) -> Dict[str, Any]:
    """One NetTest call block reduced to sketches.

    The per-call trace simulation is data-dependent (Gilbert chains,
    busy spells), so rendering stays scalar — the population win here is
    runner sharding (parallel blocks, per-block caching) plus streaming
    aggregation instead of shipping 9224 scored calls per seed.
    """
    clients = client_state(root_seed)
    registry = active_registry()
    clock, tracker = _tracker(registry)

    span = _phase_span(tracker, "population.render", block)
    calls = render_nettest_block(block, count, root_seed, clients,
                                 scale=scale)
    clock.advance(float(count))
    if span is not None:
        span.end()

    span = _phase_span(tracker, "population.reduce", block)
    table = LabeledCounts()
    users: Dict[int, Tuple[int, int]] = {}
    n_poor = 0
    for call in calls:
        poor = int(call.poor)
        n_poor += poor
        table.observe((call.category,), 1, poor)
        # Endpoint *slots*, not distinct users: a WW call that drew the
        # same client twice counts it twice, matching the scalar
        # NetTestDataset.per_user_pcr exactly.
        for user in (call.client_a, call.client_b):
            if user >= 0:
                slots, poors = users.get(user, (0, 0))
                users[user] = (slots + 1, poors + poor)
    cdf = GridCdf(*MOS_GRID)
    cdf.observe_array(np.array([call.mos for call in calls]))
    moments = MomentSketch()
    moments.observe_array(np.array([call.mos for call in calls]))
    payload = {
        "table": table.to_payload(),
        "users": [[int(user), slots, poors]
                  for user, (slots, poors) in sorted(users.items())],
        "mos_cdf": cdf.to_payload(),
        "mos_moments": moments.to_payload(),
    }
    clock.advance(float(count))
    if span is not None:
        span.end()
    if registry is not None:
        registry.counter("population.calls").inc(count)
        registry.counter("population.poor_calls").inc(n_poor)
    return payload


@dataclass
class NetTestPopulationTables:
    """Merged Table 2 statistics for a whole NetTest population."""

    rows: List[Tuple[str, int, float]]
    overall_pcr: float
    pcr_wilson: Tuple[float, float]
    n_calls: int
    frac_users_any_poor: float
    frac_users_pcr20: float
    mos_cdf: GridCdf
    mos_moments: MomentSketch


def nettest_population_study(seed: int = 0, scale: float = 1.0,
                             runner_config: Optional[RunnerConfig] = None
                             ) -> NetTestPopulationTables:
    """Run the NetTest study sharded over runner blocks.

    Table 2 rows and the spatial stats are exactly equal to the scalar
    ``run_nettest_study`` path for any ``scale``: the counters are
    exact and the divisions identical.
    """
    total = schedule_size(scale)
    items = [(block, {"root_seed": seed, "scale": scale,
                      "count": min(NETTEST_BLOCK,
                                   total - block * NETTEST_BLOCK)})
             for block in range((total + NETTEST_BLOCK - 1)
                                // NETTEST_BLOCK)]

    table = LabeledCounts()
    cdf = GridCdf(*MOS_GRID)
    moments = MomentSketch()
    users: Dict[int, Tuple[int, int]] = {}
    for payload in map_configs(NETTEST_TASK, items,
                               config=runner_config):
        table.merge(LabeledCounts.from_payload(payload["table"]))
        cdf.merge(GridCdf.from_payload(payload["mos_cdf"]))
        moments.merge(MomentSketch.from_payload(payload["mos_moments"]))
        for user, slots, poors in payload["users"]:
            old_slots, old_poors = users.get(int(user), (0, 0))
            users[int(user)] = (old_slots + int(slots),
                                old_poors + int(poors))

    rows: List[Tuple[str, int, float]] = []
    n_total = 0
    n_poor_total = 0
    for category in CATEGORY_COUNTS:
        n = table.n((category,))
        n_total += n
        n_poor_total += table.poor((category,))
        rows.append((category, n, 100.0 * table.pcr((category,))))
    overall = n_poor_total / n_total if n_total else float("nan")
    rows.append(("Total", n_total, 100.0 * overall))

    pcr_values = [poors / slots for _, (slots, poors)
                  in sorted(users.items())]
    if pcr_values:
        frac_any = sum(1 for v in pcr_values if v > 0.0) \
            / len(pcr_values)
        frac_20 = sum(1 for v in pcr_values if v >= 0.20) \
            / len(pcr_values)
    else:
        frac_any = float("nan")
        frac_20 = float("nan")

    return NetTestPopulationTables(
        rows=rows, overall_pcr=overall,
        pcr_wilson=wilson_interval(n_poor_total, n_total),
        n_calls=n_total,
        frac_users_any_poor=frac_any, frac_users_pcr20=frac_20,
        mos_cdf=cdf, mos_moments=moments)
