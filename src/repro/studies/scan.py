"""The BSSID availability site survey (Section 3.3, Figure 1).

The paper scanned connectable networks at enterprise and public venues in
Bengaluru, Seattle and Singapore, counting (a) BSSIDs the client had
credentials for and (b) distinct channels among them (to discount virtual
APs sharing one radio).  Findings: 6 BSSIDs at the median (2..13 across
locations, 6 even in-flight); 4 distinct channels at the median (2..9).
In the residential-heavy NetTest population, only ~30% of homes saw more
than one connectable BSSID.

The model generates per-venue AP deployments from venue-class densities:
enterprises deploy many APs of one ESS across channels; hotels/malls run
managed deployments with virtual APs; homes usually have a single AP
(sometimes dual-band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.random import RandomRouter
from repro.wifi.scan import BssEntry, ScanResult

#: 2.4 GHz non-overlapping + common 5 GHz channels used by deployments
_CHANNELS_24 = [1, 6, 11]
_CHANNELS_5 = [36, 40, 44, 48, 149, 153, 157, 161]


@dataclass(frozen=True)
class VenueClass:
    """AP-count and channel-spread statistics for one kind of venue."""

    name: str
    min_aps: int
    max_aps: int
    #: probability an AP is dual-band (adds a 5 GHz BSSID)
    dual_band_prob: float
    #: probability each AP also broadcasts a second (virtual) SSID
    virtual_ap_prob: float


VENUE_CLASSES = {
    "office": VenueClass("office", 3, 6, 0.6, 0.3),
    "campus": VenueClass("campus", 4, 7, 0.5, 0.2),
    "hotel": VenueClass("hotel", 2, 5, 0.5, 0.5),
    "mall": VenueClass("mall", 2, 5, 0.4, 0.5),
    "apartment": VenueClass("apartment", 2, 4, 0.5, 0.2),
    "airport": VenueClass("airport", 2, 6, 0.5, 0.4),
    "conference": VenueClass("conference", 3, 7, 0.6, 0.3),
    "downtown": VenueClass("downtown", 2, 3, 0.4, 0.3),
    "inflight": VenueClass("inflight", 2, 3, 0.0, 0.9),
    "home": VenueClass("home", 1, 1, 0.25, 0.05),
}


@dataclass
class SurveyLocation:
    """One surveyed location."""

    label: str
    city: str
    venue_class: str


#: the survey route: 16 locations across the three cities
SURVEY_LOCATIONS: Sequence[SurveyLocation] = (
    SurveyLocation("BLR office 1", "Bengaluru", "office"),
    SurveyLocation("BLR office 2", "Bengaluru", "office"),
    SurveyLocation("BLR apartment", "Bengaluru", "apartment"),
    SurveyLocation("BLR mall", "Bengaluru", "mall"),
    SurveyLocation("BLR conference", "Bengaluru", "conference"),
    SurveyLocation("BLR downtown", "Bengaluru", "downtown"),
    SurveyLocation("SEA office", "Seattle", "office"),
    SurveyLocation("SEA campus", "Seattle", "campus"),
    SurveyLocation("SEA hotel", "Seattle", "hotel"),
    SurveyLocation("SEA mall", "Seattle", "mall"),
    SurveyLocation("SEA airport", "Seattle", "airport"),
    SurveyLocation("SIN office", "Singapore", "office"),
    SurveyLocation("SIN serviced apt", "Singapore", "apartment"),
    SurveyLocation("SIN hotel", "Singapore", "hotel"),
    SurveyLocation("SIN downtown", "Singapore", "downtown"),
    SurveyLocation("In-flight", "-", "inflight"),
)


def _scan_venue(venue: VenueClass, rng: np.random.Generator,
                location: str) -> ScanResult:
    """Generate one location's connectable scan."""
    n_aps = int(rng.integers(venue.min_aps, venue.max_aps + 1))
    entries: List[BssEntry] = []
    bssid_counter = 0
    for ap in range(n_aps):
        channel_24 = int(rng.choice(_CHANNELS_24))
        rssi = float(rng.uniform(-80.0, -45.0))

        def add(channel: int, band: str) -> None:
            nonlocal bssid_counter
            bssid_counter += 1
            entries.append(BssEntry(
                bssid=f"{location[:2]}:{bssid_counter:02x}",
                ssid=f"{venue.name}-net", channel=channel, band=band,
                rssi_dbm=rssi + float(rng.normal(0, 2.0))))

        add(channel_24, "2.4GHz")
        if rng.random() < venue.virtual_ap_prob:
            # A virtual AP shares the same radio (same channel).
            add(channel_24, "2.4GHz")
        if rng.random() < venue.dual_band_prob:
            add(int(rng.choice(_CHANNELS_5)), "5GHz")
    return ScanResult(location, entries)


def run_site_survey(seed: int = 0,
                    locations: Sequence[SurveyLocation] = SURVEY_LOCATIONS
                    ) -> List[Tuple[SurveyLocation, ScanResult]]:
    """Scan every survey location (Figure 1's bars and dashes)."""
    router = RandomRouter(seed)
    results: List[Tuple[SurveyLocation, ScanResult]] = []
    for i, location in enumerate(locations):
        rng = router.stream(f"scan.{i}.{location.label}")
        venue = VENUE_CLASSES[location.venue_class]
        results.append((location, _scan_venue(venue, rng, location.label)))
    return results


def residential_multi_bssid_fraction(seed: int = 0,
                                     n_homes: int = 500) -> float:
    """Fraction of (NetTest-style) residential clients with more than one
    connectable BSSID — the paper found ~30%."""
    router = RandomRouter(seed)
    home = VENUE_CLASSES["home"]
    multi = 0
    for i in range(n_homes):
        rng = router.stream(f"home.{i}")
        scan = _scan_venue(home, rng, f"home{i}")
        if scan.n_bssids > 1:
            multi += 1
    return multi / n_homes
