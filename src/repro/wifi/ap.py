"""The access-point model: PSM buffering, drop policy, hardware queue.

This is the network-side half of DiversiFi's "Customized AP" design
(Section 5.3.1).  Behaviour:

* While the client is **awake**, wired-side arrivals go straight to the
  hardware transmit queue and are served FIFO over the air.
* While the client is **asleep** (PSM), arrivals are buffered per the drop
  policy — ``tail`` (stock APs: new packets dropped when full, default
  depth 64) or ``head`` (DiversiFi's customization: oldest dropped, small
  settable depth).
* On **wakeup**, the AP hands buffered packets down to the hardware queue
  ``hardware_queue_batch`` at a time.  Once in the hardware queue a packet
  *will* be transmitted over the air even if the client has since switched
  away — the paper's source of residual wasteful duplication.

Air transmission outcomes come from the attached :class:`WifiLink`; a
packet transmitted while the client radio is absent is counted as
transmitted but never delivered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.core.config import APConfig
from repro.core.packet import Packet
from repro.sim.engine import Simulator


@dataclass
class BufferedPacket:
    """A packet held in the AP's PSM buffer."""

    packet: Packet
    enqueue_time: float


@dataclass
class ApStats:
    """Counters for overhead accounting (Section 6.3)."""

    wired_arrivals: int = 0
    buffered: int = 0
    buffer_drops: int = 0
    air_transmissions: int = 0
    delivered: int = 0
    #: transmissions made while the client radio was absent
    absent_transmissions: int = 0
    per_seq_transmissions: dict = field(default_factory=dict)


class AccessPoint:
    """A single AP serving one (virtual) client station.

    The DiversiFi client creates one virtual adapter per AP, so modelling
    one station per AP instance is exact for our topology; contention from
    other stations enters through the link's congestion process.
    """

    def __init__(self, sim: Simulator, name: str, link,
                 config: APConfig = APConfig()):
        self.sim = sim
        self.name = name
        self.link = link
        self.config = config
        if config.drop_policy not in ("head", "tail"):
            raise ValueError(f"unknown drop policy {config.drop_policy!r}")
        self.stats = ApStats()
        self._client_awake = True
        self._client_present = True  # radio tuned to this channel
        self._psm_buffer: Deque[BufferedPacket] = deque()
        self._hardware_queue: Deque[Packet] = deque()
        self._serving = False
        self._receiver: Optional[Callable[[Packet, float, str], None]] = None

    # ------------------------------------------------------------------
    # wiring

    def set_receiver(self,
                     callback: Callable[[Packet, float, str], None]) -> None:
        """Install the client-side delivery callback
        ``callback(packet, arrival_time, ap_name)``."""
        self._receiver = callback

    # ------------------------------------------------------------------
    # client power state (driven by PSM null frames)

    @property
    def client_awake(self) -> bool:
        return self._client_awake

    @property
    def psm_queue_len(self) -> int:
        return len(self._psm_buffer)

    def client_sleep(self) -> None:
        """Client announced power-save: start buffering."""
        self._client_awake = False
        self._client_present = False

    def client_wake(self) -> None:
        """Client woke on this channel: drain the PSM buffer."""
        self._client_awake = True
        self._client_present = True
        self._hand_down_batch()
        self._kick_service()

    def client_absent(self, absent: bool) -> None:
        """Radio presence without a PSM state change (mid-switch transit)."""
        self._client_present = not absent

    # ------------------------------------------------------------------
    # data path

    def wired_arrival(self, packet: Packet) -> None:
        """A packet for the client arrived from the wired side."""
        self.stats.wired_arrivals += 1
        if self._client_awake:
            self._hardware_queue.append(packet)
            self._kick_service()
            return
        self._buffer(packet)

    def _buffer(self, packet: Packet) -> None:
        if len(self._psm_buffer) >= self.config.max_queue_len:
            if self.config.drop_policy == "head":
                self._psm_buffer.popleft()
            else:  # tail drop: the new packet is the casualty
                self.stats.buffer_drops += 1
                return
            self.stats.buffer_drops += 1
        self._psm_buffer.append(BufferedPacket(packet, self.sim.now))
        self.stats.buffered += 1

    def _hand_down_batch(self) -> None:
        """Move up to ``hardware_queue_batch`` buffered packets to hardware.

        Real firmware hands buffered PSM frames down in chunks; anything
        handed down is transmitted regardless of later sleep messages.
        """
        for _ in range(self.config.hardware_queue_batch):
            if not self._psm_buffer:
                break
            self._hardware_queue.append(self._psm_buffer.popleft().packet)

    def _kick_service(self) -> None:
        if not self._serving and self._hardware_queue:
            self._serving = True
            self.sim.call_in(0.0, self._serve_next)

    def _serve_next(self) -> None:
        if not self._hardware_queue:
            # Hardware idle: if the client is still awake and PSM frames
            # remain, continue handing them down.
            if self._client_awake and self._psm_buffer:
                self._hand_down_batch()
            if not self._hardware_queue:
                self._serving = False
                return
        packet = self._hardware_queue.popleft()
        self._transmit(packet, attempts_left=self.config
                       .psm_redelivery_attempts)

    def _transmit(self, packet: Packet, attempts_left: int) -> None:
        self.stats.air_transmissions += 1
        seq_count = self.stats.per_seq_transmissions
        seq_count[packet.seq] = seq_count.get(packet.seq, 0) + 1
        record = self.link.transmit(packet.seq, self.sim.now,
                                    packet.size_bytes)
        service = max(record.arrival_time - self.sim.now, 0.0) \
            if record.delivered else self.config.service_time_s
        finish = self.sim.now + max(service, self.config.service_time_s)

        present = self._client_present
        if not present:
            self.stats.absent_transmissions += 1

        def complete():
            if record.delivered and present and self._receiver is not None:
                self.stats.delivered += 1
                self._receiver(packet, self.sim.now, self.name)
            elif (not record.delivered and present and attempts_left > 0
                    and self._client_present):
                # Firmware requeues a failed PS delivery while the client
                # is still listening.
                self._transmit(packet, attempts_left - 1)
                return
            self._serve_next()

        self.sim.call_at(finish, complete)
