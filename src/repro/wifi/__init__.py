"""802.11 substrate: PHY error model, MAC retransmissions, APs, PSM,
association management, and BSSID scanning.

The AP model (:mod:`repro.wifi.ap`) is the deployment-critical piece of the
paper: per-client PSM buffering with tail-drop or head-drop policy, a
settable maximum queue length signalled at association time, and the
hardware-queue flush behaviour responsible for DiversiFi's residual
duplication overhead.
"""

from repro.wifi.phy import MCS_TABLE, PhyConfig, frame_error_prob, select_mcs
from repro.wifi.mac import MacConfig, MacLayer, TransmissionResult
from repro.wifi.ap import AccessPoint, BufferedPacket
from repro.wifi.psm import PowerSaveClient
from repro.wifi.association import Association, VirtualAdapter, WifiManager
from repro.wifi.scan import BssEntry, ScanResult
from repro.wifi.beacon import Beacon, BeaconScheduler, StandardPsmClient
from repro.wifi.wmm import WmmAccessPoint

__all__ = [
    "AccessPoint",
    "Association",
    "Beacon",
    "BeaconScheduler",
    "BssEntry",
    "BufferedPacket",
    "MCS_TABLE",
    "MacConfig",
    "MacLayer",
    "PhyConfig",
    "PowerSaveClient",
    "ScanResult",
    "StandardPsmClient",
    "TransmissionResult",
    "VirtualAdapter",
    "WifiManager",
    "WmmAccessPoint",
    "frame_error_prob",
    "select_mcs",
]
