"""802.11 PHY abstraction: rates, per-frame error from SNR, MIMO streams.

The frame error model is the standard logistic approximation to measured
802.11 PER-vs-SNR curves: each MCS has a threshold SNR at which PER = 50%
and a slope; a frame succeeds when the instantaneous SNR (slow RSSI-derived
SNR + fading + interference penalties) clears the curve.

Rate adaptation is a Minstrel-flavoured long-term chooser: pick the highest
MCS whose expected PER at the *average* SNR stays below a target.  That
mirrors real drivers closely enough for the paper's purposes — what matters
is that a weak link drops to robust rates yet still suffers bursty loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme."""

    index: int
    name: str
    phy_rate_mbps: float
    #: SNR (dB) at which per-frame error is 50% for a ~1500 B frame
    snr_mid_db: float
    #: logistic slope (dB): smaller = sharper transition
    snr_slope_db: float = 1.5


#: 802.11n single-stream MCS ladder (20 MHz, 800 ns GI), thresholds from
#: published PER curves.
MCS_TABLE: List[Mcs] = [
    Mcs(0, "BPSK 1/2", 6.5, 2.0),
    Mcs(1, "QPSK 1/2", 13.0, 5.0),
    Mcs(2, "QPSK 3/4", 19.5, 8.0),
    Mcs(3, "16QAM 1/2", 26.0, 10.5),
    Mcs(4, "16QAM 3/4", 39.0, 14.0),
    Mcs(5, "64QAM 2/3", 52.0, 18.0),
    Mcs(6, "64QAM 3/4", 58.5, 19.5),
    Mcs(7, "64QAM 5/6", 65.0, 21.0),
]


@dataclass(frozen=True)
class PhyConfig:
    """PHY-level knobs for a link."""

    #: number of independent spatial/diversity branches (1 = SISO;
    #: >1 models 802.11n/ac MIMO receive diversity, Section 4.3)
    n_spatial_branches: int = 1
    #: target PER used by rate adaptation
    target_per: float = 0.10
    #: frame size the PER curves are referenced to
    reference_frame_bytes: int = 1500


def frame_error_prob(snr_db: float, mcs: Mcs,
                     frame_bytes: int = 1500) -> float:
    """Per-frame error probability at ``snr_db`` for ``mcs``.

    Logistic in SNR, rescaled for frame length (error probability scales
    roughly with the number of bits at a fixed BER).
    """
    per_ref = 1.0 / (1.0 + np.exp((snr_db - mcs.snr_mid_db)
                                  / mcs.snr_slope_db))
    if frame_bytes == 1500:
        return float(per_ref)
    # P_frame = 1 - (1 - p_bit)^bits ; invert at reference then rescale.
    per_ref = min(max(per_ref, 1e-12), 1.0 - 1e-12)
    bits_ref = 1500 * 8.0
    p_bit = 1.0 - (1.0 - per_ref) ** (1.0 / bits_ref)
    return float(1.0 - (1.0 - p_bit) ** (frame_bytes * 8.0))


def select_mcs(mean_snr_db: float, config: PhyConfig = PhyConfig()) -> Mcs:
    """Long-term rate adaptation: highest MCS meeting the target PER."""
    chosen = MCS_TABLE[0]
    for mcs in MCS_TABLE:
        per = frame_error_prob(mean_snr_db, mcs,
                               config.reference_frame_bytes)
        if per <= config.target_per:
            chosen = mcs
    return chosen


def effective_snr_db(base_snr_db: float, fade_db: float,
                     interference_penalty_db: float) -> float:
    """Instantaneous SNR combining slow SNR, fading and interference."""
    return base_snr_db + fade_db - interference_penalty_db


def airtime_s(frame_bytes: int, mcs: Mcs, mac_overhead_s: float = 1.1e-4) -> float:
    """Rough per-frame airtime: payload at PHY rate plus MAC/PHY overhead
    (preamble, SIFS, ACK)."""
    payload_s = frame_bytes * 8.0 / (mcs.phy_rate_mbps * 1e6)
    return payload_s + mac_overhead_s
