"""802.11 MAC layer: retransmissions, backoff, per-packet service time.

The MAC retries each frame up to ``retry_limit`` times with exponential
backoff.  Retries happen on the tens-of-microseconds-to-milliseconds
timescale — this is the paper's *temporal diversity at a fine timescale*,
which fails exactly when the channel impairment outlives the whole retry
burst (a BAD Gilbert sojourn, a microwave half-cycle, a deep fade).  The
link model therefore evaluates the attempt-level loss process across the
retry burst's actual attempt times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.obs.registry import (
    COUNT_BUCKETS,
    Counter,
    Histogram,
    LabelValue,
    MetricsRegistry,
)
from repro.obs.runtime import active_registry


@dataclass(frozen=True)
class MacConfig:
    """MAC retransmission parameters (802.11 defaults)."""

    retry_limit: int = 7
    slot_time_s: float = 9e-6
    sifs_s: float = 16e-6
    difs_s: float = 34e-6
    cw_min: int = 15
    cw_max: int = 1023
    #: per-attempt frame airtime (transmission + ACK), overridden by PHY
    attempt_airtime_s: float = 3e-4


@dataclass
class TransmissionResult:
    """Outcome of one MAC-layer delivery attempt burst."""

    delivered: bool
    attempts: int
    #: time from frame reaching the head of the queue to final ACK/drop
    service_time_s: float


class MacLayer:
    """Retry engine: drives per-attempt loss probabilities to an outcome.

    ``attempt_loss_prob(time)`` is supplied by the channel composition and
    evaluated at each attempt's actual transmit time so that bursty channel
    state correctly correlates consecutive attempts.
    """

    def __init__(self, config: MacConfig, rng: np.random.Generator,
                 metrics: Optional[MetricsRegistry] = None,
                 metric_labels: Optional[Dict[str, LabelValue]] = None):
        self.config = config
        self._rng = rng
        # Instruments are resolved once here, not per frame: transmit()
        # runs per packet and a dict lookup per counter would be hot.
        registry = metrics if metrics is not None else active_registry()
        self._m_attempts: Optional[Counter] = None
        self._m_retries: Optional[Counter] = None
        self._m_dropped: Optional[Counter] = None
        self._m_attempt_hist: Optional[Histogram] = None
        if registry is not None:
            labels = dict(metric_labels or {})
            self._m_attempts = registry.counter("mac.attempts", **labels)
            self._m_retries = registry.counter("mac.retries", **labels)
            self._m_dropped = registry.counter("mac.frames_dropped",
                                               **labels)
            self._m_attempt_hist = registry.histogram(
                "mac.attempts_per_frame", bounds=COUNT_BUCKETS, **labels)

    def _backoff_s(self, attempt: int) -> float:
        cw = min(self.config.cw_min * (2 ** attempt) + (2 ** attempt - 1),
                 self.config.cw_max)
        slots = int(self._rng.integers(0, cw + 1))
        return self.config.difs_s + slots * self.config.slot_time_s

    def transmit(self, start_time: float,
                 attempt_loss_prob: Callable[[float], float],
                 airtime_s: float = None) -> TransmissionResult:
        """Attempt delivery starting at ``start_time``.

        Returns the result with the cumulative service time (backoffs +
        airtimes across all attempts).
        """
        airtime = (airtime_s if airtime_s is not None
                   else self.config.attempt_airtime_s)
        elapsed = 0.0
        result = None
        for attempt in range(self.config.retry_limit + 1):
            elapsed += self._backoff_s(attempt)
            tx_time = start_time + elapsed
            elapsed += airtime
            p_loss = attempt_loss_prob(tx_time)
            if self._rng.random() >= p_loss:
                result = TransmissionResult(
                    delivered=True, attempts=attempt + 1,
                    service_time_s=elapsed)
                break
        if result is None:
            result = TransmissionResult(
                delivered=False, attempts=self.config.retry_limit + 1,
                service_time_s=elapsed)
        if self._m_attempts is not None:
            self._m_attempts.inc(result.attempts)
            self._m_retries.inc(result.attempts - 1)
            if not result.delivered:
                self._m_dropped.inc()
            self._m_attempt_hist.observe(result.attempts)
        return result
