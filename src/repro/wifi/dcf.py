"""A shared-medium DCF model: multiple stations contending for airtime.

The per-link MAC in :mod:`repro.wifi.mac` models retries for a single
transmitter; when several flows share one channel (the VoIP downlink, a
TCP bulk flow, neighbouring BSS traffic), their *airtime* interacts.
:class:`DcfMedium` provides that coupling: stations enqueue frame
transmission requests; the medium serializes them with contention —
per-access randomized backoff, collisions when two stations pick the same
slot, and capture of the channel for the frame's airtime.

This is deliberately a medium-occupancy model (who holds the air when),
not a symbol-level simulation; its purpose is faithful *delay and
throughput coupling* between coexisting flows on one channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional
from collections import deque

import numpy as np

from repro.sim.engine import Simulator

SLOT_S = 9e-6
DIFS_S = 34e-6
ACK_S = 44e-6


@dataclass
class DcfStats:
    """Per-medium counters."""

    transmissions: int = 0
    collisions: int = 0
    busy_time_s: float = 0.0


@dataclass
class _Request:
    station: str
    airtime_s: float
    callback: Callable[[bool], None]   # success flag (collision = False)
    backoff_slots: int = 0
    attempts: int = 0


class DcfMedium:
    """A single contended channel shared by named stations."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 cw_min: int = 15, cw_max: int = 1023,
                 retry_limit: int = 7):
        self.sim = sim
        self._rng = rng
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.retry_limit = retry_limit
        self.stats = DcfStats()
        self._pending: Dict[str, Deque[_Request]] = {}
        self._busy_until = 0.0
        self._scheduled = False

    # ------------------------------------------------------------------

    def request(self, station: str, airtime_s: float,
                callback: Callable[[bool], None]) -> None:
        """Ask to transmit one frame of ``airtime_s`` seconds.

        ``callback(success)`` fires when the frame's channel time ends;
        success=False means the retry limit was exhausted on collisions.
        """
        queue = self._pending.setdefault(station, deque())
        req = _Request(station=station, airtime_s=airtime_s,
                       callback=callback)
        req.backoff_slots = self._draw_backoff(0)
        queue.append(req)
        self._schedule_round()

    def _draw_backoff(self, attempt: int) -> int:
        cw = min((self.cw_min + 1) * (2 ** attempt) - 1, self.cw_max)
        return int(self._rng.integers(0, cw + 1))

    def _schedule_round(self) -> None:
        if self._scheduled:
            return
        self._scheduled = True
        start = max(self.sim.now, self._busy_until)
        self.sim.call_at(start, self._contend)

    def _contend(self) -> None:
        self._scheduled = False
        heads: List[_Request] = [q[0] for q in self._pending.values() if q]
        if not heads:
            return
        min_slots = min(r.backoff_slots for r in heads)
        winners = [r for r in heads if r.backoff_slots == min_slots]
        for r in heads:
            r.backoff_slots -= min_slots
        access_delay = DIFS_S + min_slots * SLOT_S

        if len(winners) == 1:
            winner = winners[0]
            airtime = winner.airtime_s + ACK_S
            finish = self.sim.now + access_delay + airtime
            self.stats.transmissions += 1
            self.stats.busy_time_s += airtime
            self._busy_until = finish
            self._pending[winner.station].popleft()
            self.sim.call_at(finish, self._complete, winner, True)
        else:
            # Collision: everyone who fired loses the airtime of the
            # longest frame, then re-draws backoff with doubled CW.
            airtime = max(r.airtime_s for r in winners)
            finish = self.sim.now + access_delay + airtime
            self.stats.collisions += 1
            self.stats.busy_time_s += airtime
            self._busy_until = finish
            for r in winners:
                r.attempts += 1
                if r.attempts > self.retry_limit:
                    self._pending[r.station].popleft()
                    self.sim.call_at(finish, self._complete, r, False)
                else:
                    r.backoff_slots = self._draw_backoff(r.attempts)
            self.sim.call_at(finish, self._schedule_round_cb)
            return
        self.sim.call_at(finish, self._schedule_round_cb)

    def _schedule_round_cb(self) -> None:
        self._schedule_round()

    def _complete(self, request: _Request, success: bool) -> None:
        request.callback(success)

    # ------------------------------------------------------------------

    def utilization(self, elapsed_s: Optional[float] = None) -> float:
        """Fraction of wall time the channel was busy."""
        elapsed = elapsed_s if elapsed_s is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return min(self.stats.busy_time_s / elapsed, 1.0)
