"""Multi-link association: virtual adapters and the switching NIC.

MultiNet-style virtualization (Chandra et al. [18]): one physical NIC
exposes several virtual station adapters, each with its own MAC address and
AP association.  Only one adapter is *active* (radio tuned to its channel)
at a time; the others are parked in PSM at their APs.

:class:`WifiManager` orchestrates switches: PSM-sleep on the current AP,
retune the radio, PSM-wake on the target — the paper's measured 2.8 ms
link-switch latency, broken down per Table 3 (2.3 ms switching + 0.5 ms
null frames).

The DiversiFi client (``repro.core.client``) drives this manager; the
association-request queue-length IE of Section 5.3.1 is modelled by
passing the desired PSM queue length when an adapter associates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.wifi.psm import PowerSaveClient, PsmConfig


@dataclass
class Association:
    """One virtual adapter's association with one AP."""

    adapter_name: str
    ap: object
    channel: int
    #: queue length requested via the association-request IE (None = stock)
    requested_queue_len: Optional[int] = None
    psm: Optional[PowerSaveClient] = None


@dataclass
class VirtualAdapter:
    """A software station interface with its own MAC address."""

    name: str
    mac_address: str
    association: Optional[Association] = None


class WifiManager:
    """The client's single physical NIC and its virtual adapters."""

    def __init__(self, sim: Simulator, rng, psm_config: PsmConfig = None):
        self.sim = sim
        self._rng = rng
        self._psm_config = psm_config or PsmConfig()
        self.adapters: Dict[str, VirtualAdapter] = {}
        self._active: Optional[str] = None
        self._switching = False
        #: switch count + cumulative off-channel time (Figure 10 accounting)
        self.switch_count = 0
        self.off_channel_time_s = 0.0
        self._mac_counter = 0

    # ------------------------------------------------------------------

    def create_adapter(self, name: str) -> VirtualAdapter:
        """Create a virtual station interface (unique MAC)."""
        if name in self.adapters:
            raise ValueError(f"adapter {name!r} already exists")
        self._mac_counter += 1
        mac = f"02:00:00:00:00:{self._mac_counter:02x}"
        adapter = VirtualAdapter(name=name, mac_address=mac)
        self.adapters[name] = adapter
        return adapter

    def associate(self, adapter_name: str, ap, channel: int,
                  requested_queue_len: Optional[int] = None) -> Association:
        """Associate an adapter with an AP.

        ``requested_queue_len`` models the unused-IE signalling of the
        desired PSM buffer depth (applied only by customized APs).
        """
        adapter = self.adapters[adapter_name]
        psm = PowerSaveClient(
            self.sim, ap, self._rng, self._psm_config)
        association = Association(
            adapter_name=adapter_name, ap=ap, channel=channel,
            requested_queue_len=requested_queue_len, psm=psm)
        adapter.association = association
        if requested_queue_len is not None and hasattr(ap, "config"):
            # Customized APs honour the IE; stock APs ignore it.
            if getattr(ap.config, "drop_policy", "tail") == "head":
                ap.config = type(ap.config)(
                    drop_policy=ap.config.drop_policy,
                    max_queue_len=requested_queue_len,
                    hardware_queue_batch=ap.config.hardware_queue_batch,
                    service_time_s=ap.config.service_time_s)
        # Newly associated adapters start asleep unless made active.
        ap.client_sleep()
        return association

    # ------------------------------------------------------------------

    @property
    def active_adapter(self) -> Optional[str]:
        """Name of the adapter the radio is currently tuned to."""
        return self._active

    @property
    def is_switching(self) -> bool:
        return self._switching

    def activate(self, adapter_name: str) -> None:
        """Initial activation without a switch handshake (call once)."""
        association = self._require_association(adapter_name)
        self._active = adapter_name
        association.ap.client_wake()

    def _require_association(self, adapter_name: str) -> Association:
        adapter = self.adapters.get(adapter_name)
        if adapter is None or adapter.association is None:
            raise ValueError(f"adapter {adapter_name!r} is not associated")
        return adapter.association

    def switch_to(self, adapter_name: str,
                  done_callback: Callable[[], None] = None) -> bool:
        """Switch the radio to another adapter's link.

        Sequence: PSM-sleep on the current AP, retune (2.3 ms), PSM-wake on
        the target AP.  Returns False (and does nothing) if a switch is
        already in flight or the target is already active.
        """
        if self._switching or adapter_name == self._active:
            return False
        target = self._require_association(adapter_name)
        self._switching = True
        self.switch_count += 1
        switch_start = self.sim.now
        current = (self._require_association(self._active)
                   if self._active else None)

        def after_wake():
            self._switching = False
            self.off_channel_time_s += self.sim.now - switch_start
            if done_callback is not None:
                done_callback()

        def after_retune():
            self._active = adapter_name
            target.psm.send_wake(after_wake)

        def after_sleep():
            # Radio leaves the old channel: neither AP can reach us.
            self._active = None
            self.sim.call_in(self._psm_config.channel_switch_s, after_retune)

        if current is not None:
            current.psm.send_sleep(after_sleep)
        else:
            after_sleep()
        return True
