"""Multi-link association: virtual adapters and the switching NIC.

MultiNet-style virtualization (Chandra et al. [18]): one physical NIC
exposes several virtual station adapters, each with its own MAC address and
AP association.  Only one adapter is *active* (radio tuned to its channel)
at a time; the others are parked in PSM at their APs.

:class:`WifiManager` orchestrates switches: PSM-sleep on the current AP,
retune the radio, PSM-wake on the target — the paper's measured 2.8 ms
link-switch latency, broken down per Table 3 (2.3 ms switching + 0.5 ms
null frames).

The DiversiFi client (``repro.core.client``) drives this manager; the
association-request queue-length IE of Section 5.3.1 is modelled by
passing the desired PSM queue length when an adapter associates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.registry import MetricsRegistry, TimeWeightedGauge
from repro.obs.runtime import active_registry
from repro.sim.engine import Simulator
from repro.wifi.psm import PowerSaveClient, PsmConfig


@dataclass
class Association:
    """One virtual adapter's association with one AP."""

    adapter_name: str
    ap: object
    channel: int
    #: queue length requested via the association-request IE (None = stock)
    requested_queue_len: Optional[int] = None
    psm: Optional[PowerSaveClient] = None


@dataclass
class VirtualAdapter:
    """A software station interface with its own MAC address."""

    name: str
    mac_address: str
    association: Optional[Association] = None


class WifiManager:
    """The client's single physical NIC and its virtual adapters."""

    def __init__(self, sim: Simulator, rng, psm_config: PsmConfig = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self._rng = rng
        self._psm_config = psm_config or PsmConfig()
        self.adapters: Dict[str, VirtualAdapter] = {}
        self._active: Optional[str] = None
        self._switching = False
        #: switch count + cumulative off-channel time (Figure 10 accounting)
        self.switch_count = 0
        self.off_channel_time_s = 0.0
        self._mac_counter = 0
        self._metrics = metrics if metrics is not None \
            else active_registry()
        # Session-local awake gauges (0/1 indicator; time-weighted mean =
        # the PSM wake ratio).  Kept off the registry until
        # :meth:`record_metrics` because each session's simulator clock
        # restarts at zero — registering the gauge directly would trip
        # the monotone-time check when one task runs several sessions.
        self._awake: Dict[str, TimeWeightedGauge] = {}

    def _awake_gauge(self, adapter_name: str
                     ) -> Optional[TimeWeightedGauge]:
        if self._metrics is None:
            return None
        gauge = self._awake.get(adapter_name)
        if gauge is None:
            gauge = TimeWeightedGauge()
            self._awake[adapter_name] = gauge
        return gauge

    def _mark_awake(self, adapter_name: str, awake: bool) -> None:
        gauge = self._awake_gauge(adapter_name)
        if gauge is not None:
            gauge.set(self.sim.now, 1.0 if awake else 0.0)

    def record_metrics(self, close_time: float) -> None:
        """Close this session's awake gauges and fold them into the
        registry (``wifi.awake{adapter=...}``); additive across runs."""
        if self._metrics is None:
            return
        for name in sorted(self._awake):
            local = self._awake[name]
            local.close(close_time)
            self._metrics.time_gauge("wifi.awake",
                                     adapter=name).merge(local)
        self._awake.clear()

    # ------------------------------------------------------------------

    def create_adapter(self, name: str) -> VirtualAdapter:
        """Create a virtual station interface (unique MAC)."""
        if name in self.adapters:
            raise ValueError(f"adapter {name!r} already exists")
        self._mac_counter += 1
        mac = f"02:00:00:00:00:{self._mac_counter:02x}"
        adapter = VirtualAdapter(name=name, mac_address=mac)
        self.adapters[name] = adapter
        return adapter

    def associate(self, adapter_name: str, ap, channel: int,
                  requested_queue_len: Optional[int] = None) -> Association:
        """Associate an adapter with an AP.

        ``requested_queue_len`` models the unused-IE signalling of the
        desired PSM buffer depth (applied only by customized APs).
        """
        adapter = self.adapters[adapter_name]
        psm = PowerSaveClient(
            self.sim, ap, self._rng, self._psm_config,
            metrics=self._metrics,
            metric_labels={"adapter": adapter_name})
        association = Association(
            adapter_name=adapter_name, ap=ap, channel=channel,
            requested_queue_len=requested_queue_len, psm=psm)
        adapter.association = association
        if requested_queue_len is not None and hasattr(ap, "config"):
            # Customized APs honour the IE; stock APs ignore it.
            if getattr(ap.config, "drop_policy", "tail") == "head":
                ap.config = type(ap.config)(
                    drop_policy=ap.config.drop_policy,
                    max_queue_len=requested_queue_len,
                    hardware_queue_batch=ap.config.hardware_queue_batch,
                    service_time_s=ap.config.service_time_s)
        # Newly associated adapters start asleep unless made active.
        ap.client_sleep()
        return association

    # ------------------------------------------------------------------

    @property
    def active_adapter(self) -> Optional[str]:
        """Name of the adapter the radio is currently tuned to."""
        return self._active

    @property
    def is_switching(self) -> bool:
        return self._switching

    def activate(self, adapter_name: str) -> None:
        """Initial activation without a switch handshake (call once)."""
        association = self._require_association(adapter_name)
        self._active = adapter_name
        association.ap.client_wake()
        # Anchor every adapter's awake gauge here so the wake-ratio
        # observation period spans the whole session.
        for name, adapter in sorted(self.adapters.items()):
            if adapter.association is not None:
                self._mark_awake(name, name == adapter_name)

    def _require_association(self, adapter_name: str) -> Association:
        adapter = self.adapters.get(adapter_name)
        if adapter is None or adapter.association is None:
            raise ValueError(f"adapter {adapter_name!r} is not associated")
        return adapter.association

    def switch_to(self, adapter_name: str,
                  done_callback: Callable[[], None] = None) -> bool:
        """Switch the radio to another adapter's link.

        Sequence: PSM-sleep on the current AP, retune (2.3 ms), PSM-wake on
        the target AP.  Returns False (and does nothing) if a switch is
        already in flight or the target is already active.
        """
        if self._switching or adapter_name == self._active:
            return False
        target = self._require_association(adapter_name)
        self._switching = True
        self.switch_count += 1
        if self._metrics is not None:
            self._metrics.counter("wifi.switches",
                                  to=adapter_name).inc()
        switch_start = self.sim.now
        previous = self._active
        current = (self._require_association(self._active)
                   if self._active else None)

        def after_wake():
            self._switching = False
            self.off_channel_time_s += self.sim.now - switch_start
            self._mark_awake(adapter_name, True)
            if done_callback is not None:
                done_callback()

        def after_retune():
            self._active = adapter_name
            target.psm.send_wake(after_wake)

        def after_sleep():
            # Radio leaves the old channel: neither AP can reach us.
            self._active = None
            if previous is not None:
                self._mark_awake(previous, False)
            self.sim.call_in(self._psm_config.channel_switch_s, after_retune)

        if current is not None:
            current.psm.send_sleep(after_sleep)
        else:
            after_sleep()
        return True
