"""Beacons, TIM elements, and standard beacon-driven PSM retrieval.

Stock 802.11 power save works at *beacon granularity*: the AP announces
buffered frames for sleeping stations in the Traffic Indication Map (TIM)
of each beacon (default interval 102.4 ms); a station wakes for beacons,
sees its bit set, and polls the frames down.

That granularity is exactly why DiversiFi cannot just lean on standard
PSM: a packet missed on the primary link would, via beacon-driven
retrieval, arrive on average ~half a beacon interval later — already
outside the 100 ms MaxTolerableDelay budget.  DiversiFi's client instead
switches *just in time* using its own knowledge of the stream cadence
(Algorithm 1).  The :class:`StandardPsmClient` here is the baseline that
quantifies the difference (see ``benchmarks/test_ablation_psm.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.sim.engine import Simulator

#: the 802.11 default beacon interval (100 TU of 1024 us)
DEFAULT_BEACON_INTERVAL_S = 0.1024


@dataclass
class Beacon:
    """One beacon frame (the fields the PSM machinery needs)."""

    timestamp: float
    #: TIM: does the AP hold buffered frames for this station?
    tim_set: bool
    sequence: int = 0


class BeaconScheduler:
    """Emits beacons for one AP at a fixed interval.

    Subscribers receive :class:`Beacon` objects; the TIM bit reflects the
    AP's PSM buffer occupancy at transmission time.
    """

    def __init__(self, sim: Simulator, ap,
                 interval_s: float = DEFAULT_BEACON_INTERVAL_S,
                 offset_s: float = 0.0):
        if interval_s <= 0:
            raise ValueError("beacon interval must be positive")
        self.sim = sim
        self.ap = ap
        self.interval_s = interval_s
        self.beacons_sent = 0
        self._subscribers: List[Callable[[Beacon], None]] = []
        self._running = False
        self._offset_s = offset_s

    def subscribe(self, callback: Callable[[Beacon], None]) -> None:
        self._subscribers.append(callback)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("beacon scheduler already started")
        self._running = True
        self.sim.call_in(self._offset_s, self._tick)

    def _tick(self) -> None:
        beacon = Beacon(timestamp=self.sim.now,
                        tim_set=self.ap.psm_queue_len > 0,
                        sequence=self.beacons_sent)
        self.beacons_sent += 1
        for subscriber in self._subscribers:
            subscriber(beacon)
        self.sim.call_in(self.interval_s, self._tick)


class StandardPsmClient:
    """A station that retrieves buffered frames via beacon TIM + polling.

    On a TIM-set beacon the station wakes the AP (PS-Poll equivalent),
    receives the buffered frames, and goes back to sleep one
    ``drain_window_s`` later.  Retrieval latency is therefore bounded
    below by the residual wait to the next beacon.
    """

    def __init__(self, sim: Simulator, ap, scheduler: BeaconScheduler,
                 drain_window_s: float = 0.010):
        self.sim = sim
        self.ap = ap
        self.drain_window_s = drain_window_s
        self.polls = 0
        self._draining = False
        ap.client_sleep()
        scheduler.subscribe(self._on_beacon)

    def _on_beacon(self, beacon: Beacon) -> None:
        if not beacon.tim_set or self._draining:
            return
        self.polls += 1
        self._draining = True
        self.ap.client_wake()

        def back_to_sleep():
            self.ap.client_sleep()
            self._draining = False

        self.sim.call_in(self.drain_window_s, back_to_sleep)
