"""802.11e / WMM prioritized queueing at the AP.

The related-work discussion (Section 2) notes that DiffServ/802.11e give
real-time packets *priority* — which helps against congestion-induced
queueing — but is "of little use in the face of wireless packet loss",
which is DiversiFi's target.  This module provides the WMM substrate so
that claim can be demonstrated rather than asserted (see
``benchmarks/test_ablation_wmm.py``).

Model: four EDCA access categories with strict-priority dequeueing and
per-AC contention parameters (higher categories grab the medium faster).
Wireless loss is still whatever the attached link says — priority cannot
change that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.core.packet import Packet
from repro.sim.engine import Simulator

#: access categories, highest priority first
AC_VOICE = "AC_VO"
AC_VIDEO = "AC_VI"
AC_BEST_EFFORT = "AC_BE"
AC_BACKGROUND = "AC_BK"
PRIORITY_ORDER = (AC_VOICE, AC_VIDEO, AC_BEST_EFFORT, AC_BACKGROUND)

#: EDCA medium-access penalty per category (AIFS + mean backoff), seconds
_ACCESS_DELAY_S = {
    AC_VOICE: 0.00005,
    AC_VIDEO: 0.0001,
    AC_BEST_EFFORT: 0.0003,
    AC_BACKGROUND: 0.0008,
}


@dataclass
class WmmStats:
    """Per-AC counters."""

    enqueued: Dict[str, int] = field(
        default_factory=lambda: {ac: 0 for ac in PRIORITY_ORDER})
    transmitted: Dict[str, int] = field(
        default_factory=lambda: {ac: 0 for ac in PRIORITY_ORDER})
    dropped: Dict[str, int] = field(
        default_factory=lambda: {ac: 0 for ac in PRIORITY_ORDER})
    queueing_delay_sum_s: Dict[str, float] = field(
        default_factory=lambda: {ac: 0.0 for ac in PRIORITY_ORDER})

    def mean_queueing_delay_s(self, ac: str) -> float:
        n = self.transmitted[ac]
        return self.queueing_delay_sum_s[ac] / n if n else 0.0


class WmmAccessPoint:
    """An AP with four strict-priority EDCA queues over one link.

    ``classify(packet) -> AC`` maps flows to categories (default: flow ids
    starting with "rt" are voice, everything else best effort).  With
    ``enabled=False`` all traffic shares one FIFO — the ablation baseline.
    """

    def __init__(self, sim: Simulator, link,
                 classify: Optional[Callable[[Packet], str]] = None,
                 queue_limit: int = 64,
                 service_time_s: float = 0.0015,
                 enabled: bool = True):
        self.sim = sim
        self.link = link
        self.enabled = enabled
        self.queue_limit = queue_limit
        self.service_time_s = service_time_s
        self._classify = classify or self._default_classify
        self._queues: Dict[str, Deque] = {
            ac: deque() for ac in PRIORITY_ORDER}
        self._serving = False
        self._receiver: Optional[Callable] = None
        self.stats = WmmStats()

    @staticmethod
    def _default_classify(packet: Packet) -> str:
        if packet.flow_id.startswith("rt"):
            return AC_VOICE
        if packet.flow_id.startswith("video"):
            return AC_VIDEO
        return AC_BEST_EFFORT

    def set_receiver(self, callback: Callable[[Packet, float, str],
                                              None]) -> None:
        self._receiver = callback

    def wired_arrival(self, packet: Packet) -> None:
        """Classify and enqueue an arriving downlink packet."""
        ac = self._classify(packet) if self.enabled else AC_BEST_EFFORT
        queue = self._queues[ac]
        if sum(len(q) for q in self._queues.values()) >= self.queue_limit:
            # Drop from the lowest-priority non-empty queue (WMM APs
            # protect voice); FIFO mode just tail-drops.
            victim_ac = ac
            if self.enabled:
                for candidate in reversed(PRIORITY_ORDER):
                    if self._queues[candidate]:
                        victim_ac = candidate
                        break
                if (PRIORITY_ORDER.index(victim_ac)
                        <= PRIORITY_ORDER.index(ac)):
                    victim_ac = ac   # nothing lower to evict
            if victim_ac == ac:
                self.stats.dropped[ac] += 1
                return
            self._queues[victim_ac].pop()
            self.stats.dropped[victim_ac] += 1
        queue.append((packet, self.sim.now))
        self.stats.enqueued[ac] += 1
        self._kick()

    def _kick(self) -> None:
        if not self._serving and any(self._queues.values()):
            self._serving = True
            self.sim.call_in(0.0, self._serve)

    def _serve(self) -> None:
        for ac in PRIORITY_ORDER:
            if self._queues[ac]:
                packet, enqueue_time = self._queues[ac].popleft()
                break
        else:
            self._serving = False
            return
        access_delay = _ACCESS_DELAY_S[ac] if self.enabled \
            else _ACCESS_DELAY_S[AC_BEST_EFFORT]
        start = self.sim.now + access_delay
        record = self.link.transmit(packet.seq, start, packet.size_bytes)
        self.stats.transmitted[ac] += 1
        self.stats.queueing_delay_sum_s[ac] += self.sim.now - enqueue_time
        service = max(record.arrival_time - start, 0.0) \
            if record.delivered else self.service_time_s
        finish = start + max(service, self.service_time_s)

        def complete():
            if record.delivered and self._receiver is not None:
                self._receiver(packet, self.sim.now, "wmm")
            self._serve()

        self.sim.call_at(finish, complete)
