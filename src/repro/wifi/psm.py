"""802.11 power-save-mode signalling from the client side.

DiversiFi keeps its secondary association alive by parking it in PSM and
waking it only to retrieve lost packets (or for periodic keepalives).  The
sleep/wake handshake is a Null-Data frame with the Power Management bit
set/cleared; the paper's client adds 5 driver-level retries because a lost
sleep frame would leave the AP believing the client is still listening
(Section 5.4's ath9k bug fix).

The model charges a per-frame exchange time and, with small probability,
retries; total sleep + channel-switch + wake adds up to the paper's
measured 2.8 ms link-switch latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.obs.registry import Counter, LabelValue, MetricsRegistry
from repro.obs.runtime import active_registry
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PsmConfig:
    """Timing of the PSM null-frame exchange."""

    #: one null-frame + ACK exchange
    frame_exchange_s: float = 0.0003
    #: probability one exchange fails and is retried
    frame_loss_prob: float = 0.05
    #: driver-level retries before giving up (paper: 5)
    max_retries: int = 5
    #: radio retune time between channels (paper measurement: 2.3 ms)
    channel_switch_s: float = 0.0023


class PowerSaveClient:
    """Issues sleep/wake null frames for one association."""

    def __init__(self, sim: Simulator, ap, rng: np.random.Generator,
                 config: PsmConfig = PsmConfig(),
                 metrics: Optional[MetricsRegistry] = None,
                 metric_labels: Optional[Dict[str, LabelValue]] = None):
        self.sim = sim
        self.ap = ap
        self.config = config
        self._rng = rng
        #: exchanges attempted (observability)
        self.exchanges = 0
        self.retries = 0
        registry = metrics if metrics is not None else active_registry()
        self._m_exchanges: Optional[Counter] = None
        self._m_retries: Optional[Counter] = None
        if registry is not None:
            labels = dict(metric_labels or {})
            self._m_exchanges = registry.counter("psm.exchanges", **labels)
            self._m_retries = registry.counter("psm.retries", **labels)

    def _exchange_duration(self) -> float:
        """Time to complete one null-frame exchange including retries."""
        duration = 0.0
        for attempt in range(self.config.max_retries + 1):
            self.exchanges += 1
            if self._m_exchanges is not None:
                self._m_exchanges.inc()
            duration += self.config.frame_exchange_s
            if self._rng.random() >= self.config.frame_loss_prob:
                return duration
            self.retries += 1
            if self._m_retries is not None:
                self._m_retries.inc()
        # All retries failed; the AP state is now stale.  The caller treats
        # this as a completed (slow) exchange — the paper's bug fix makes
        # this vanishingly rare.
        return duration

    def send_sleep(self, done_callback) -> None:
        """Tell the AP we are going to sleep; callback when ACKed."""
        duration = self._exchange_duration()

        def complete():
            self.ap.client_sleep()
            done_callback()

        self.sim.call_in(duration, complete)

    def send_wake(self, done_callback) -> None:
        """Tell the AP we are awake; callback when ACKed."""
        duration = self._exchange_duration()

        def complete():
            self.ap.client_wake()
            done_callback()

        self.sim.call_in(duration, complete)
