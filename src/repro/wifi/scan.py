"""BSSID scanning primitives.

Used by the Section 3.3 availability study: a scan yields the set of BSS
entries the client could *connect to* (i.e. networks it has credentials
for), from which the study counts BSSIDs and distinct channels — the bars
and dashes of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class BssEntry:
    """One beacon heard during a scan."""

    bssid: str
    ssid: str
    channel: int
    band: str
    rssi_dbm: float
    #: does the client hold credentials for this network?
    connectable: bool = True


@dataclass
class ScanResult:
    """The outcome of one scan at one location."""

    location: str
    entries: List[BssEntry]

    def connectable(self) -> List[BssEntry]:
        """Entries on networks the client can join."""
        return [e for e in self.entries if e.connectable]

    @property
    def n_bssids(self) -> int:
        """Count of connectable BSSIDs (Figure 1 bars)."""
        return len({e.bssid for e in self.connectable()})

    @property
    def n_channels(self) -> int:
        """Count of distinct channels among connectable BSSIDs (dashes) —
        discounts virtual APs that share a radio."""
        return len({e.channel for e in self.connectable()})

    def strongest(self, n: int = 2) -> List[BssEntry]:
        """The n connectable entries with the highest RSSI."""
        return sorted(self.connectable(),
                      key=lambda e: e.rssi_dbm, reverse=True)[:n]


def distinct_channel_count(entries: Sequence[BssEntry]) -> int:
    """Distinct channels in an arbitrary entry collection."""
    return len({e.channel for e in entries})
