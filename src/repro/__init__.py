"""DiversiFi — robust multi-link interactive streaming (CoNEXT '15),
reproduced in Python.

Top-level convenience imports cover the most common entry points; the
full API lives in the subpackages (see README.md for the architecture):

* :mod:`repro.core` — strategies, the DiversiFi client, session control.
* :mod:`repro.scenarios` — channel scenarios (wild mix, office testbed).
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.voice` — G.711 / playout / E-model / PCR pipeline.

Quick start::

    from repro import run_session, build_office_pair, G711_PROFILE
    result = run_session(build_office_pair, mode="diversifi-ap",
                         profile=G711_PROFILE, seed=1)
    print(result.effective_trace().loss_rate)
"""

from repro.core.config import (
    APConfig,
    ClientConfig,
    G711_PROFILE,
    HIGH_RATE_PROFILE,
    MiddleboxConfig,
    StreamProfile,
)
from repro.core.controller import SessionResult, run_session
from repro.scenarios import build_office_pair, generate_wild_runs

__version__ = "1.0.0"

__all__ = [
    "APConfig",
    "ClientConfig",
    "G711_PROFILE",
    "HIGH_RATE_PROFILE",
    "MiddleboxConfig",
    "SessionResult",
    "StreamProfile",
    "build_office_pair",
    "generate_wild_runs",
    "run_session",
    "__version__",
]
