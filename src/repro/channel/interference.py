"""External interference and congestion processes.

These are the impairments that PHY-layer (MIMO) diversity cannot remove
because they hit all co-channel spatial streams at once (Section 4.3), and
that make RSSI a poor predictor of link quality (Section 4.1):

* :class:`MicrowaveOven` — a duty-cycled wideband jammer on the 2.4 GHz
  band.  Domestic ovens radiate for roughly half of each mains cycle, so
  the model is a periodic ~50% duty cycle at 50/60 Hz with slow on/off
  episodes (ovens run for tens of seconds at a time).
* :class:`CongestionProcess` — co-channel contention: bursty medium
  occupancy that inflates queuing delay and collision probability.
* :class:`NullInterference` — the quiet-channel stub.

Each process answers two time-indexed queries used by the link model:
``snr_penalty_db(time)`` and ``extra_delay_s(time, rng)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class NullInterference:
    """A quiet channel: no SNR penalty, no extra delay."""

    def snr_penalty_db(self, time: float) -> float:
        return 0.0

    def extra_delay_s(self, time: float, rng: np.random.Generator) -> float:
        return 0.0


class MicrowaveOven:
    """Duty-cycled wideband interference on 2.4 GHz channels.

    The oven is "running" during episodes that start as a Poisson process
    (mean ``episode_rate_hz``) and last ``episode_duration_s``; while
    running, it radiates during ``duty_cycle`` of each mains period,
    imposing a large SNR penalty on affected channels.

    Channels: magnetron sweep hits most of the 2.4 GHz band; the model
    applies to any link constructed with ``affected=True`` (the scenario
    layer marks 2.4 GHz links as affected and 5 GHz links as immune).
    """

    def __init__(self, rng: np.random.Generator,
                 episode_rate_hz: float = 1.0 / 60.0,
                 episode_duration_s: float = 20.0,
                 mains_period_s: float = 0.020,
                 duty_cycle: float = 0.5,
                 penalty_db: float = 25.0,
                 floor_penalty_db: float = 10.0,
                 affected: bool = True):
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must lie in (0, 1]")
        self._rng = rng
        self.episode_rate_hz = episode_rate_hz
        self.episode_duration_s = episode_duration_s
        self.mains_period_s = mains_period_s
        self.duty_cycle = duty_cycle
        self.penalty_db = penalty_db
        #: noise-floor rise for the WHOLE episode (wideband splatter,
        #: deferrals, rate-control collapse) — the component MAC retries
        #: cannot dodge by landing in the magnetron's off-phase
        self.floor_penalty_db = floor_penalty_db
        self.affected = affected
        self._episode_start = self._draw_next_start(0.0)

    def _draw_next_start(self, after: float) -> float:
        gap = self._rng.exponential(1.0 / self.episode_rate_hz)
        return after + gap

    def _advance(self, time: float) -> None:
        while time > self._episode_start + self.episode_duration_s:
            self._episode_start = self._draw_next_start(
                self._episode_start + self.episode_duration_s)

    def is_on(self, time: float) -> bool:
        """True while an oven episode is running (any phase)."""
        if not self.affected:
            return False
        self._advance(time)
        return time >= self._episode_start

    def is_radiating(self, time: float) -> bool:
        """True when the oven is on *and* in the radiating half-cycle."""
        if not self.is_on(time):
            return False
        phase = (time % self.mains_period_s) / self.mains_period_s
        return phase < self.duty_cycle

    def snr_penalty_db(self, time: float) -> float:
        if not self.is_on(time):
            return 0.0
        if self.is_radiating(time):
            return self.penalty_db
        return self.floor_penalty_db

    def extra_delay_s(self, time: float, rng: np.random.Generator) -> float:
        # Deferred medium access while the magnetron radiates.
        if self.is_radiating(time):
            return float(rng.uniform(0.0, self.mains_period_s
                                     * self.duty_cycle))
        return 0.0


class CongestionProcess:
    """Bursty co-channel contention from neighbouring traffic.

    Modelled as an on/off (busy/idle) renewal process; when busy, packets
    see queueing delay (exponential, mean ``busy_delay_s``) and a collision
    SNR penalty applied probabilistically per attempt.
    """

    def __init__(self, rng: np.random.Generator,
                 mean_busy_s: float = 0.5,
                 mean_idle_s: float = 2.0,
                 busy_delay_s: float = 0.015,
                 collision_prob: float = 0.3,
                 collision_penalty_db: float = 15.0):
        self._rng = rng
        self.mean_busy_s = mean_busy_s
        self.mean_idle_s = mean_idle_s
        self.busy_delay_s = busy_delay_s
        self.collision_prob = collision_prob
        self.collision_penalty_db = collision_penalty_db
        self._busy = rng.random() < (mean_busy_s
                                     / (mean_busy_s + mean_idle_s))
        self._time = 0.0
        self._next_flip = self._draw_sojourn()

    def _draw_sojourn(self) -> float:
        mean = self.mean_busy_s if self._busy else self.mean_idle_s
        return self._time + float(self._rng.exponential(mean))

    def is_busy(self, time: float) -> bool:
        """Medium-busy indicator at ``time`` (non-decreasing queries)."""
        while self._next_flip <= time:
            self._busy = not self._busy
            self._time = self._next_flip
            self._next_flip = self._draw_sojourn()
        self._time = max(self._time, time)
        return self._busy

    def snr_penalty_db(self, time: float) -> float:
        if self.is_busy(time) and self._rng.random() < self.collision_prob:
            return self.collision_penalty_db
        return 0.0

    def extra_delay_s(self, time: float, rng: np.random.Generator) -> float:
        if self.is_busy(time):
            return float(rng.exponential(self.busy_delay_s))
        return 0.0


class CompositeInterference:
    """Sum of several interference processes acting on one link."""

    def __init__(self, *processes: Any) -> None:
        self._processes = list(processes)

    def snr_penalty_db(self, time: float) -> float:
        return sum(p.snr_penalty_db(time) for p in self._processes)

    def extra_delay_s(self, time: float, rng: np.random.Generator) -> float:
        return sum(p.extra_delay_s(time, rng) for p in self._processes)
