"""Wireless channel substrate.

Models that turn a link configuration into per-packet outcomes with the
statistics the paper's analysis rests on: bursty within-link loss
(Gilbert–Elliott), RSSI from path loss + shadowing, small-scale fading,
external interference (microwave ovens, congestion), and client mobility.

The composition point is :class:`repro.channel.link.WifiLink`, which renders
a whole call's worth of per-packet (delivered?, delay) outcomes, and
:func:`repro.channel.link.paired_links`, which builds two links with
controllable cross-correlation for the Section 4 experiments.
"""

from repro.channel.cellular import CellularConfig, CellularLink
from repro.channel.fast import FastLinkRenderer, render_fast_pair
from repro.channel.gilbert import (
    GilbertElliott,
    GilbertParams,
    sample_loss_array,
)
from repro.channel.pathloss import LogDistancePathLoss, rssi_to_snr_db
from repro.channel.fading import RayleighFading, RicianFading
from repro.channel.interference import (
    CongestionProcess,
    MicrowaveOven,
    NullInterference,
)
from repro.channel.mobility import RandomWaypointMobility, StaticPosition
from repro.channel.link import LinkConfig, WifiLink, paired_links

__all__ = [
    "CellularConfig",
    "CellularLink",
    "CongestionProcess",
    "FastLinkRenderer",
    "GilbertElliott",
    "GilbertParams",
    "render_fast_pair",
    "sample_loss_array",
    "LinkConfig",
    "LogDistancePathLoss",
    "MicrowaveOven",
    "NullInterference",
    "RandomWaypointMobility",
    "RayleighFading",
    "RicianFading",
    "StaticPosition",
    "WifiLink",
    "paired_links",
    "rssi_to_snr_db",
]
