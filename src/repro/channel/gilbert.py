"""Gilbert–Elliott bursty loss processes.

The classic two-state Markov model: a GOOD state with low per-packet error
probability and a BAD state with high error probability.  Transition
probabilities control burstiness — the paper's Figure 4 (auto-correlation of
loss within a link staying above cross-link correlation out to 400 ms lags)
is a direct consequence of sojourn times in the BAD state spanning several
packet intervals.

The process is sampled *in continuous time*: state transitions are
exponential sojourns, so streams with different packet spacings (20 ms VoIP
vs 1.6 ms high-rate) see consistently scaled burst behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GilbertParams:
    """Parameters of a continuous-time Gilbert–Elliott chain.

    ``mean_good_s``/``mean_bad_s`` are the mean sojourn times of each state;
    ``loss_good``/``loss_bad`` the per-packet loss probabilities while in
    the state (applied per MAC *attempt* when used under retransmissions).
    """

    mean_good_s: float = 10.0
    mean_bad_s: float = 0.200
    loss_good: float = 0.001
    loss_bad: float = 0.6

    def __post_init__(self) -> None:
        if self.mean_good_s <= 0 or self.mean_bad_s <= 0:
            raise ValueError("sojourn times must be positive")
        for p in (self.loss_good, self.loss_bad):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"loss probability {p} outside [0, 1]")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the BAD state."""
        return self.mean_bad_s / (self.mean_good_s + self.mean_bad_s)

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run per-attempt loss probability."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good


class GilbertElliott:
    """A sampled continuous-time Gilbert–Elliott process.

    Query with monotonically non-decreasing times via
    :meth:`loss_probability`; the chain advances lazily.
    """

    GOOD, BAD = 0, 1

    def __init__(self, params: GilbertParams, rng: np.random.Generator,
                 start_time: float = 0.0):
        self.params = params
        self._rng = rng
        self._time = float(start_time)
        # Start from the stationary distribution so traces are unbiased.
        in_bad = rng.random() < params.stationary_bad_fraction
        self._state = self.BAD if in_bad else self.GOOD
        self._next_transition = self._time + self._draw_sojourn()

    def _draw_sojourn(self) -> float:
        mean = (self.params.mean_bad_s if self._state == self.BAD
                else self.params.mean_good_s)
        return float(self._rng.exponential(mean))

    def _advance(self, time: float) -> None:
        if time < self._time - 1e-12:
            raise ValueError(
                f"Gilbert chain queried backwards: {time} < {self._time}")
        while self._next_transition <= time:
            self._state = self.BAD if self._state == self.GOOD else self.GOOD
            self._time = self._next_transition
            self._next_transition = self._time + self._draw_sojourn()
        self._time = time

    def state_at(self, time: float) -> int:
        """Chain state (GOOD/BAD) at ``time`` (must be non-decreasing)."""
        self._advance(time)
        return self._state

    def loss_probability(self, time: float) -> float:
        """Per-attempt loss probability at ``time``."""
        state = self.state_at(time)
        return (self.params.loss_bad if state == self.BAD
                else self.params.loss_good)

    def sample_states(self, times: np.ndarray) -> np.ndarray:
        """Vector of states for a sorted array of query times."""
        return np.array([self.state_at(float(t)) for t in times], dtype=int)


def sample_loss_array(params: GilbertParams, n_packets: int,
                      spacing_s: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Fast path: a whole call's 0/1 loss indicator, vectorized.

    Draws alternating exponential sojourns, marks the BAD spans over the
    packet grid, and applies per-state Bernoulli loss.  Statistically
    matches driving :class:`GilbertElliott` per packet (without MAC
    retries), at a fraction of the cost — used by the large measurement-
    study simulations where 10k calls are scored per run.
    """
    duration = n_packets * spacing_s
    in_bad = rng.random() < params.stationary_bad_fraction
    edges = [0.0]
    states = [in_bad]
    t = 0.0
    while t < duration:
        mean = params.mean_bad_s if in_bad else params.mean_good_s
        t += float(rng.exponential(mean))
        edges.append(min(t, duration))
        in_bad = not in_bad
        states.append(in_bad)
    packet_times = np.arange(n_packets) * spacing_s
    # state index for each packet: which sojourn interval it falls in
    interval = np.searchsorted(np.asarray(edges), packet_times,
                               side="right") - 1
    bad = np.array(states, dtype=bool)[interval]
    p = np.where(bad, params.loss_bad, params.loss_good)
    return (rng.random(n_packets) < p).astype(float)
