"""Small-scale fading: Rayleigh and Rician envelopes with Doppler memory.

Fading is modelled as a complex Gaussian process sampled at packet times
with an autocorrelation set by the channel coherence time (Clarke's model
approximated by an AR(1) on the complex gain, which preserves the envelope
distribution and the coherence-time scaling that matter here).

The per-packet *fade margin* in dB is added to the slow-fading SNR before
the PHY error model.  Multiple MIMO spatial streams draw independent fading
chains — that is precisely the PHY-layer diversity of Section 4.3, and why
MIMO helps against multipath fading but not against shadowing/interference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class RayleighFading:
    """Rayleigh-faded channel gain with AR(1) temporal correlation."""

    def __init__(self, rng: np.random.Generator,
                 coherence_time_s: float = 0.050):
        if coherence_time_s <= 0:
            raise ValueError("coherence time must be positive")
        self._rng = rng
        self.coherence_time_s = coherence_time_s
        self._time: Optional[float] = None
        # complex gain, unit average power: Re/Im ~ N(0, 1/2)
        self._gain = self._fresh_gain()

    def _fresh_gain(self) -> complex:
        re, im = self._rng.normal(0.0, np.sqrt(0.5), size=2)
        return complex(re, im)

    def _rho(self, dt: float) -> float:
        # AR(1) correlation decaying on the coherence timescale.
        return float(np.exp(-dt / self.coherence_time_s))

    def gain_at(self, time: float) -> complex:
        """Complex channel gain at ``time`` (non-decreasing queries)."""
        if self._time is None:
            self._time = time
            return self._gain
        dt = time - self._time
        if dt < -1e-12:
            raise ValueError("fading process queried backwards")
        if dt > 0:
            rho = self._rho(dt)
            sigma = np.sqrt(max(0.0, (1.0 - rho ** 2) / 2.0))
            innovation = complex(self._rng.normal(0.0, sigma),
                                 self._rng.normal(0.0, sigma))
            self._gain = rho * self._gain + innovation
            self._time = time
        return self._gain

    def fade_db(self, time: float) -> float:
        """Instantaneous fade relative to average power, in dB."""
        power = abs(self.gain_at(time)) ** 2
        return float(10.0 * np.log10(max(power, 1e-12)))


class RicianFading(RayleighFading):
    """Rician fading: a line-of-sight component plus Rayleigh scatter.

    ``k_factor_db`` is the LOS-to-scatter power ratio; higher K means
    shallower fades (typical for a client near its AP).
    """

    def __init__(self, rng: np.random.Generator,
                 coherence_time_s: float = 0.050,
                 k_factor_db: float = 6.0):
        super().__init__(rng, coherence_time_s)
        k = 10.0 ** (k_factor_db / 10.0)
        self._los_amplitude = np.sqrt(k / (k + 1.0))
        self._scatter_scale = np.sqrt(1.0 / (k + 1.0))

    def fade_db(self, time: float) -> float:
        scatter = self.gain_at(time) * self._scatter_scale
        total = self._los_amplitude + scatter
        power = abs(total) ** 2
        return float(10.0 * np.log10(max(power, 1e-12)))


class SelectionDiversityFading:
    """Best-of-N independent fading branches (MIMO receive diversity).

    A first-order model of MRC/selection combining across spatial streams:
    the effective fade is the max over branches, which removes most deep
    multipath fades (Section 4.3's PHY-layer diversity).
    """

    def __init__(self, rng: np.random.Generator, n_branches: int = 2,
                 coherence_time_s: float = 0.050):
        if n_branches < 1:
            raise ValueError("need at least one branch")
        self._branches = [RayleighFading(rng, coherence_time_s)
                          for _ in range(n_branches)]

    @property
    def n_branches(self) -> int:
        return len(self._branches)

    def fade_db(self, time: float) -> float:
        """Best branch fade in dB at ``time``."""
        return max(branch.fade_db(time) for branch in self._branches)
