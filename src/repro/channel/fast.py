"""Vectorized whole-call trace rendering.

The event-accurate :class:`~repro.channel.link.WifiLink` walks every MAC
attempt in Python — exact, but ~1 s per simulated call.  For statistical
experiments over hundreds of calls, :class:`FastLinkRenderer` renders the
same channel composition two orders of magnitude faster by vectorizing
over the packet grid:

* Gilbert–Elliott state via exponential sojourn spans (exact);
* slow SNR from path loss + frozen shadowing (static clients);
* Rayleigh/Rician fading as an AR(1) complex-gain sequence at packet
  times (exact marginals, correct coherence-time correlation);
* per-attempt loss from the logistic PER curve composed with the Gilbert
  term (exact), and the MAC retry burst approximated as conditionally
  independent attempts at the packet-time channel state — a *statistical*
  rather than sample-path match to the event-accurate MAC, validated in
  ``tests/test_channel_fast.py``.

Supported scope: static clients, per-link (non-shared) interference off.
The Section 6 system evaluation keeps using the exact path; this renderer
backs large Section 4-style sweeps and user calibration loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig
from repro.channel.mobility import Position
from repro.core.config import StreamProfile
from repro.core.packet import LinkTrace
from repro.sim.random import RandomRouter
from repro.wifi.phy import frame_error_prob, select_mcs


def _ar1_complex(n: int, rho: float,
                 rng: np.random.Generator) -> np.ndarray:
    """A unit-power AR(1) complex Gaussian sequence of length n."""
    innovations = (rng.normal(0.0, 1.0, size=n)
                   + 1j * rng.normal(0.0, 1.0, size=n)) * np.sqrt(0.5)
    if rho <= 0.0:
        return innovations
    scale = np.sqrt(1.0 - rho ** 2)
    out = np.empty(n, dtype=complex)
    state = innovations[0]
    out[0] = state
    # scipy.signal.lfilter vectorizes this; fall back to a tight loop so
    # the core library needs only numpy.
    try:
        from scipy.signal import lfilter
        driven = lfilter([1.0], [1.0, -rho],
                         innovations[1:] * scale)
        # add the decaying contribution of the initial state
        k = np.arange(1, n)
        out[1:] = driven + state * rho ** k
    except ImportError:      # scipy-free fallback (exercised in tests)
        for i in range(1, n):
            state = rho * state + scale * innovations[i]
            out[i] = state
    return out


def _gilbert_spans(params: GilbertParams, n: int, spacing: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Per-packet BAD-state indicator from exponential sojourns."""
    duration = n * spacing
    edges = [0.0]
    states = []
    in_bad = rng.random() < params.stationary_bad_fraction
    t = 0.0
    while t < duration:
        states.append(in_bad)
        mean = params.mean_bad_s if in_bad else params.mean_good_s
        t += float(rng.exponential(mean))
        edges.append(min(t, duration))
        in_bad = not in_bad
    packet_times = np.arange(n) * spacing
    idx = np.searchsorted(np.asarray(edges[1:]), packet_times,
                          side="right")
    return np.asarray(states, dtype=bool)[np.minimum(idx,
                                                     len(states) - 1)]


@dataclass
class FastLinkRenderer:
    """Render statistically faithful traces for one static link."""

    config: LinkConfig
    client_position: Position

    def render(self, profile: StreamProfile, rng_router: RandomRouter,
               start_time: float = 0.0) -> LinkTrace:
        """One call's LinkTrace, vectorized."""
        config = self.config
        n = profile.n_packets
        spacing = profile.inter_packet_spacing_s
        prefix = f"fastlink.{config.name}"
        rng = rng_router.stream(f"{prefix}.main")

        # Slow SNR: path loss + one shadowing draw (static client).
        distance = self.client_position.distance_to(config.ap_position)
        distance = max(distance, config.pathloss.reference_distance_m)
        path_loss = (config.pathloss.reference_loss_db
                     + 10.0 * config.pathloss.exponent
                     * np.log10(distance
                                / config.pathloss.reference_distance_m)
                     + rng.normal(0.0, config.pathloss.shadowing_sigma_db))
        from repro.channel.pathloss import rssi_to_snr_db
        base_snr = rssi_to_snr_db(config.pathloss.tx_power_dbm - path_loss)

        # Fading at packet times.
        rho = float(np.exp(-spacing / config.coherence_time_s))
        gains = _ar1_complex(n, rho, rng_router.stream(f"{prefix}.fade"))
        if config.rician_k_db is not None:
            k = 10.0 ** (config.rician_k_db / 10.0)
            los = np.sqrt(k / (k + 1.0))
            gains = los + gains * np.sqrt(1.0 / (k + 1.0))
        fade_db = 10.0 * np.log10(np.maximum(np.abs(gains) ** 2, 1e-12))

        # PHY error per attempt at the packet-time SNR.
        mcs = select_mcs(base_snr, config.phy)
        snr = base_snr + fade_db
        per = np.array([frame_error_prob(
            float(s), mcs, config.phy.reference_frame_bytes)
            for s in snr])

        # Gilbert composition.
        bad = _gilbert_spans(config.gilbert, n, spacing,
                             rng_router.stream(f"{prefix}.gilbert"))
        p_ge = np.where(bad, config.gilbert.loss_bad,
                        config.gilbert.loss_good)
        p_attempt = 1.0 - (1.0 - per) * (1.0 - p_ge)

        # MAC retry burst: R+1 conditionally independent attempts.
        retries = config.mac.retry_limit
        p_residual = np.clip(p_attempt, 0.0, 1.0) ** (retries + 1)
        lost = rng.random(n) < p_residual

        # Delays: base + service; retried packets pay extra backoff.
        # Expected attempts before success for a geometric with success
        # prob q = 1 - p_attempt (capped at the retry limit).
        with np.errstate(divide="ignore"):
            mean_attempts = np.minimum(
                1.0 / np.maximum(1.0 - p_attempt, 1e-3),
                float(retries + 1))
        from repro.wifi.phy import airtime_s
        per_attempt = (airtime_s(profile.packet_size_bytes, mcs)
                       + config.mac.difs_s
                       + config.mac.cw_min / 2.0 * config.mac.slot_time_s)
        jitter = rng.exponential(per_attempt * 0.3, size=n)
        delays = np.where(
            lost, np.nan,
            config.base_delay_s + mean_attempts * per_attempt + jitter)

        send_times = start_time + np.arange(n) * spacing
        return LinkTrace(config.name, send_times, ~lost, delays)


def render_fast_pair(config_a: LinkConfig, config_b: LinkConfig,
                     client_position: Position,
                     profile: StreamProfile, rng_router: RandomRouter
                     ) -> Tuple[LinkTrace, LinkTrace]:
    """Two independent fast traces for one client position."""
    a = FastLinkRenderer(config_a, client_position).render(
        profile, rng_router)
    b = FastLinkRenderer(config_b, client_position).render(
        profile, rng_router)
    return a, b
