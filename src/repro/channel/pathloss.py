"""Large-scale propagation: log-distance path loss, shadowing, RSSI.

Standard indoor model:  PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma, with
path-loss exponent ``n`` around 3–4 for offices with walls and cubicles and
log-normal shadowing X_sigma.  RSSI = tx_power − PL.  SNR follows from the
thermal noise floor for a 20 MHz channel (≈ −101 dBm) plus a noise figure.

These feed the PHY error model (:mod:`repro.wifi.phy`), and — importantly
for the paper — RSSI is what the ``stronger`` selection policy sees, while
the *actual* loss process also depends on fading and interference the RSSI
does not capture.  That mismatch is why selection underperforms diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: thermal noise for a 20 MHz 802.11 channel at room temperature, dBm
NOISE_FLOOR_DBM = -101.0
#: typical client receiver noise figure, dB
NOISE_FIGURE_DB = 7.0


def rssi_to_snr_db(rssi_dbm: float,
                   noise_floor_dbm: float = NOISE_FLOOR_DBM,
                   noise_figure_db: float = NOISE_FIGURE_DB) -> float:
    """Convert an RSSI reading to an SNR estimate in dB."""
    return rssi_dbm - (noise_floor_dbm + noise_figure_db)


@dataclass(frozen=True)
class PathLossParams:
    """Log-distance model parameters (indoor office defaults)."""

    tx_power_dbm: float = 20.0
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0   # ~2.4 GHz free space at 1 m
    exponent: float = 3.3             # office with cubicles and walls
    shadowing_sigma_db: float = 4.0


class LogDistancePathLoss:
    """RSSI as a function of distance, with frozen per-link shadowing.

    Shadowing is drawn once per link (it models obstructions, which change
    on mobility timescales, not per packet); mobility re-draws it through
    :meth:`redraw_shadowing`.
    """

    def __init__(self, params: PathLossParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        self._shadowing_db = float(
            rng.normal(0.0, params.shadowing_sigma_db))

    @property
    def shadowing_db(self) -> float:
        """Current log-normal shadowing term in dB."""
        return self._shadowing_db

    def redraw_shadowing(self, correlation: float = 0.8) -> None:
        """Evolve shadowing as an AR(1) step (used on client movement)."""
        if not 0.0 <= correlation <= 1.0:
            raise ValueError("correlation must lie in [0, 1]")
        sigma = self.params.shadowing_sigma_db
        innovation = self._rng.normal(
            0.0, sigma * np.sqrt(1.0 - correlation ** 2))
        self._shadowing_db = correlation * self._shadowing_db + innovation

    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss at ``distance_m`` (shadowing included)."""
        d = max(distance_m, self.params.reference_distance_m)
        return (self.params.reference_loss_db
                + 10.0 * self.params.exponent
                * np.log10(d / self.params.reference_distance_m)
                + self._shadowing_db)

    def rssi_dbm(self, distance_m: float) -> float:
        """RSSI at the client for a given AP distance."""
        return self.params.tx_power_dbm - self.path_loss_db(distance_m)

    def snr_db(self, distance_m: float) -> float:
        """SNR implied by the RSSI at ``distance_m``."""
        return rssi_to_snr_db(self.rssi_dbm(distance_m))
