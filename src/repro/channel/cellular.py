"""A cellular (LTE-like) link model for cross-technology hedging.

Section 4.4 defers WiFi+cellular replication to future work; this module
provides the substrate to explore it.  Compared to WiFi, a cellular link
has:

* higher, more variable base latency (scheduling grants, core-network
  detour — tens of milliseconds);
* very low steady-state loss (HARQ) but occasional multi-second outages
  (handover, coverage gaps);
* a metered cost, so hedging policies must budget duplicate bytes.

The model mirrors :class:`repro.channel.link.WifiLink`'s interface
(``transmit`` / ``generate_trace``) so the Section 4 strategy machinery
can consume it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.gilbert import GilbertElliott, GilbertParams
from repro.core.config import StreamProfile
from repro.core.packet import DeliveryRecord, LinkTrace
from repro.sim.random import RandomRouter


@dataclass
class CellularConfig:
    """LTE-like link parameters."""

    name: str = "lte"
    base_delay_s: float = 0.040
    jitter_scale_s: float = 0.008
    #: residual post-HARQ loss probability in coverage
    residual_loss: float = 0.0005
    #: outage process: rare but long (handover / coverage gaps)
    outage: GilbertParams = field(default_factory=lambda: GilbertParams(
        mean_good_s=120.0, mean_bad_s=2.0,
        loss_good=0.0, loss_bad=1.0))
    #: cost per duplicated megabyte (policy input, not simulated money)
    cost_per_mb: float = 1.0


class CellularLink:
    """An LTE-like link with HARQ-clean loss and rare deep outages."""

    def __init__(self, config: CellularConfig,
                 rng_router: RandomRouter) -> None:
        self.config = config
        self.name = config.name
        prefix = f"cell.{config.name}"
        self._rng = rng_router.stream(f"{prefix}.loss")
        self._rng_delay = rng_router.stream(f"{prefix}.delay")
        self._outage = GilbertElliott(
            config.outage, rng_router.stream(f"{prefix}.outage"))
        self.bytes_sent = 0

    def attempt_loss_prob(self, time: float) -> float:
        """Loss probability at ``time`` (outage dominates)."""
        p_outage = self._outage.loss_probability(time)
        return 1.0 - (1.0 - p_outage) * (1.0 - self.config.residual_loss)

    def transmit(self, seq: int, send_time: float,
                 frame_bytes: int = 160) -> DeliveryRecord:
        """Send one packet copy over the cellular path."""
        self.bytes_sent += frame_bytes
        lost = self._rng.random() < self.attempt_loss_prob(send_time)
        if lost:
            return DeliveryRecord(seq=seq, send_time=send_time,
                                  delivered=False)
        delay = (self.config.base_delay_s
                 + float(self._rng_delay.lognormal(0.0, 1.0)
                         * self.config.jitter_scale_s))
        return DeliveryRecord(seq=seq, send_time=send_time, delivered=True,
                              arrival_time=send_time + delay)

    def generate_trace(self, profile: StreamProfile,
                       start_time: float = 0.0) -> LinkTrace:
        """Render a whole call over the cellular link."""
        n = profile.n_packets
        send_times = (start_time
                      + np.arange(n) * profile.inter_packet_spacing_s)
        delivered = np.zeros(n, dtype=bool)
        delays = np.full(n, np.nan)
        for seq in range(n):
            record = self.transmit(seq, float(send_times[seq]),
                                   profile.packet_size_bytes)
            delivered[seq] = record.delivered
            if record.delivered:
                delays[seq] = record.delay
        return LinkTrace(self.name, send_times, delivered, delays)

    def duplicate_cost(self) -> float:
        """Metered cost of the bytes sent so far (policy input)."""
        return self.bytes_sent / 1e6 * self.config.cost_per_mb
