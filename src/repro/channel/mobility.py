"""Client mobility models.

Mobility changes the AP–client distance over time (hence RSSI, hence loss)
and re-rolls shadowing as the client moves past obstructions.  The paper's
"client mobility" impairment scenario (Figure 6) uses random-waypoint walks
through the office floor; the 2-AP office setup of Section 6 places APs at
diagonal corners of a 30 m x 15 m floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Position:
    """A 2-D point on the floor plan, metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return float(np.hypot(self.x - other.x, self.y - other.y))


class StaticPosition:
    """A client that stays put."""

    def __init__(self, position: Position):
        self._position = position

    def position_at(self, time: float) -> Position:
        return self._position

    @property
    def is_moving(self) -> bool:
        return False


class RandomWaypointMobility:
    """Random-waypoint walk inside a rectangular floor.

    The client picks a uniform destination, walks at a uniform speed in
    [v_min, v_max], pauses, repeats.  Positions are queried lazily at
    non-decreasing times.
    """

    def __init__(self, rng: np.random.Generator,
                 floor: Tuple[float, float] = (30.0, 15.0),
                 speed_range: Tuple[float, float] = (0.5, 1.5),
                 pause_s: float = 2.0,
                 start: Optional[Position] = None):
        self._rng = rng
        self.floor = floor
        self.speed_range = speed_range
        self.pause_s = pause_s
        self._time = 0.0
        self._position = start or self._random_point()
        self._begin_leg()

    @property
    def is_moving(self) -> bool:
        return True

    def _random_point(self) -> Position:
        return Position(float(self._rng.uniform(0, self.floor[0])),
                        float(self._rng.uniform(0, self.floor[1])))

    def _begin_leg(self) -> None:
        self._target = self._random_point()
        self._speed = float(self._rng.uniform(*self.speed_range))
        distance = self._position.distance_to(self._target)
        self._leg_start = self._time
        self._leg_end = self._time + distance / max(self._speed, 1e-9)
        self._pause_until = self._leg_end + self.pause_s
        self._leg_origin = self._position

    def position_at(self, time: float) -> Position:
        """Client position at ``time``.

        Queries slightly in the past (two links sharing one walk ask at
        interleaved times) are clamped to the walk's current time — the
        skew is milliseconds against legs lasting tens of seconds.
        """
        time = max(time, self._time)
        while time >= self._pause_until:
            self._position = self._target
            self._time = self._pause_until
            self._begin_leg()
        self._time = max(self._time, time)
        if time >= self._leg_end:
            return self._target
        frac = ((time - self._leg_start)
                / max(self._leg_end - self._leg_start, 1e-12))
        frac = min(max(frac, 0.0), 1.0)
        return Position(
            self._leg_origin.x + frac * (self._target.x - self._leg_origin.x),
            self._leg_origin.y + frac * (self._target.y - self._leg_origin.y))


#: the Section 6 office: APs at diagonal ends of a 30 m x 15 m floor
OFFICE_FLOOR = (30.0, 15.0)
OFFICE_AP_PRIMARY = Position(1.0, 1.0)
OFFICE_AP_SECONDARY = Position(29.0, 14.0)
