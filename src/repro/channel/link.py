"""WifiLink: composition of propagation, fading, burst loss, interference
and MAC retransmission into per-packet outcomes.

One :class:`WifiLink` represents a client association to one AP on one
channel.  The Section 4 experiments render whole-call :class:`LinkTrace`
objects via :meth:`WifiLink.generate_trace`; the Section 6 event-driven
system uses :meth:`WifiLink.transmit` per packet.

Loss composition per MAC attempt at time t::

    SNR(t)   = SNR_rssi(position(t)) + fade(t) - interference_penalty(t)
    p_phy(t) = frame_error_prob(SNR(t), mcs)
    p(t)     = 1 - (1 - p_phy(t)) * (1 - p_gilbert(t))

The Gilbert–Elliott term models loss causes invisible to the SNR budget
(hidden terminals, collisions, firmware hiccups) and carries the burst
structure that Figure 4/5 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.channel.fading import (
    RayleighFading,
    RicianFading,
    SelectionDiversityFading,
)
from repro.channel.gilbert import GilbertElliott, GilbertParams
from repro.channel.interference import NullInterference
from repro.channel.mobility import Position, StaticPosition
from repro.channel.pathloss import LogDistancePathLoss, PathLossParams
from repro.core.packet import DeliveryRecord, LinkTrace
from repro.core.config import StreamProfile
from repro.wifi.mac import MacConfig, MacLayer
from repro.sim.random import RandomRouter
from repro.wifi.phy import (
    Mcs,
    PhyConfig,
    airtime_s,
    effective_snr_db,
    frame_error_prob,
    select_mcs,
)


@dataclass
class LinkConfig:
    """Static description of one client–AP link."""

    name: str = "link"
    band: str = "2.4GHz"
    channel: int = 1
    ap_position: Position = field(default_factory=lambda: Position(1.0, 1.0))
    pathloss: PathLossParams = field(default_factory=PathLossParams)
    gilbert: GilbertParams = field(default_factory=GilbertParams)
    phy: PhyConfig = field(default_factory=PhyConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    #: None -> Rayleigh fading; a K-factor in dB -> Rician
    rician_k_db: Optional[float] = None
    coherence_time_s: float = 0.050
    #: fixed wired-side + AP processing delay before the air interface
    base_delay_s: float = 0.004
    #: how often mobility re-rolls the shadowing term
    shadowing_update_s: float = 1.0
    #: redraw shadowing even for a static client (doors, people, carts —
    #: the environment moves even when the client does not)
    environment_drift: bool = False
    #: how often rate control re-selects the MCS from the current mean SNR
    #: (Minstrel-style long-term adaptation)
    rate_update_interval_s: float = 1.0


class WifiLink:
    """A live link: stateful channel processes plus a MAC retry engine."""

    def __init__(self, config: LinkConfig, rng_router: RandomRouter,
                 mobility: Any = None, interference: Any = None) -> None:
        self.config = config
        self.name = config.name
        prefix = f"link.{config.name}"
        self._rng_loss = rng_router.stream(f"{prefix}.loss")
        self._rng_delay = rng_router.stream(f"{prefix}.delay")
        self._pathloss = LogDistancePathLoss(
            config.pathloss, rng_router.stream(f"{prefix}.shadow"))
        fading_rng = rng_router.stream(f"{prefix}.fading")
        self._fading: Union[RayleighFading, SelectionDiversityFading]
        if config.phy.n_spatial_branches > 1:
            self._fading = SelectionDiversityFading(
                fading_rng, config.phy.n_spatial_branches,
                config.coherence_time_s)
        elif config.rician_k_db is not None:
            self._fading = RicianFading(
                fading_rng, config.coherence_time_s, config.rician_k_db)
        else:
            self._fading = RayleighFading(
                fading_rng, config.coherence_time_s)
        self._gilbert = GilbertElliott(
            config.gilbert, rng_router.stream(f"{prefix}.gilbert"))
        self._mobility = mobility or StaticPosition(Position(10.0, 7.0))
        self._interference = interference or NullInterference()
        self._mac = MacLayer(config.mac,
                             rng_router.stream(f"{prefix}.mac"),
                             metric_labels={"link": config.name})
        self._last_shadow_update = 0.0
        # Channel processes require non-decreasing query times, but MAC
        # retry bursts for one packet can overrun the next packet's send
        # time.  The query clock monotonicizes: a query "in the past" is
        # answered with the current channel state (the skew is < a few ms,
        # far below every process's coherence timescale).
        self._query_clock = 0.0
        # Rate adaptation off the initial average SNR; re-run periodically.
        self._mcs = select_mcs(self.mean_snr_db(0.0), config.phy)
        self._last_rate_update = 0.0

    def _clock(self, time: float) -> float:
        self._query_clock = max(self._query_clock, time)
        return self._query_clock

    # ------------------------------------------------------------------
    # observables

    def distance_m(self, time: float) -> float:
        """Current AP–client distance."""
        return self._mobility.position_at(self._clock(time)).distance_to(
            self.config.ap_position)

    def rssi_dbm(self, time: float) -> float:
        """What the OS sees — drives the ``stronger`` selection policy."""
        self._maybe_update_shadowing(time)
        return self._pathloss.rssi_dbm(self.distance_m(time))

    def mean_snr_db(self, time: float) -> float:
        """Slow (RSSI-derived) SNR, before fading and interference."""
        self._maybe_update_shadowing(time)
        return self._pathloss.snr_db(self.distance_m(time))

    @property
    def mcs(self) -> Mcs:
        """The currently selected modulation-and-coding scheme."""
        return self._mcs

    # ------------------------------------------------------------------
    # channel evolution

    def _maybe_update_shadowing(self, time: float) -> None:
        moving = self._mobility.is_moving or self.config.environment_drift
        if (moving and time - self._last_shadow_update
                >= self.config.shadowing_update_s):
            self._pathloss.redraw_shadowing()
            self._last_shadow_update = time

    def _maybe_update_rate(self, time: float) -> None:
        if (time - self._last_rate_update
                >= self.config.rate_update_interval_s):
            self._mcs = select_mcs(self.mean_snr_db(time), self.config.phy)
            self._last_rate_update = time

    def attempt_loss_prob(self, time: float) -> float:
        """Per-MAC-attempt loss probability at ``time``."""
        time = self._clock(time)
        self._maybe_update_rate(time)
        snr = effective_snr_db(
            self.mean_snr_db(time),
            self._fading.fade_db(time),
            self._interference.snr_penalty_db(time))
        p_phy = frame_error_prob(
            snr, self._mcs, self.config.phy.reference_frame_bytes)
        p_ge = self._gilbert.loss_probability(time)
        return 1.0 - (1.0 - p_phy) * (1.0 - p_ge)

    # ------------------------------------------------------------------
    # transmission

    def transmit(self, seq: int, send_time: float,
                 frame_bytes: int = 160) -> DeliveryRecord:
        """Send one packet copy; returns its delivery record.

        ``send_time`` is when the packet reaches the AP's transmit queue
        for this client (wired-side delay already included by the caller
        for system-mode runs; trace mode adds ``base_delay_s`` here).
        """
        queue_delay = self._interference.extra_delay_s(
            send_time, self._rng_delay)
        air_start = send_time + self.config.base_delay_s + queue_delay
        per_attempt_airtime = airtime_s(frame_bytes, self._mcs)
        result = self._mac.transmit(
            air_start, self.attempt_loss_prob, per_attempt_airtime)
        arrival = air_start + result.service_time_s
        return DeliveryRecord(
            seq=seq, send_time=send_time, delivered=result.delivered,
            arrival_time=arrival if result.delivered else float("nan"))

    def generate_trace(self, profile: StreamProfile,
                       start_time: float = 0.0) -> LinkTrace:
        """Render a whole call's outcomes as a :class:`LinkTrace`."""
        n = profile.n_packets
        send_times = (start_time
                      + np.arange(n) * profile.inter_packet_spacing_s)
        delivered = np.zeros(n, dtype=bool)
        delays = np.full(n, np.nan)
        for seq in range(n):
            record = self.transmit(seq, float(send_times[seq]),
                                   profile.packet_size_bytes)
            delivered[seq] = record.delivered
            if record.delivered:
                delays[seq] = record.delay
        return LinkTrace(self.name, send_times, delivered, delays)


def paired_links(config_a: LinkConfig, config_b: LinkConfig,
                 rng_router: RandomRouter,
                 mobility: Any = None, shared_interference: Any = None,
                 interference_a: Any = None, interference_b: Any = None
                 ) -> Tuple["WifiLink", "WifiLink"]:
    """Two links for one client, as in the two-NIC experiments.

    ``shared_interference`` (e.g. one :class:`MicrowaveOven` hitting both
    2.4 GHz channels) induces cross-link loss correlation; per-link
    interference keeps them independent.  A shared mobility model moves the
    client relative to both APs at once.
    """
    def combine(own: Any) -> Any:
        if shared_interference is None and own is None:
            return None
        if shared_interference is None:
            return own
        if own is None:
            return shared_interference
        from repro.channel.interference import CompositeInterference
        return CompositeInterference(shared_interference, own)

    link_a = WifiLink(config_a, rng_router, mobility=mobility,
                      interference=combine(interference_a))
    link_b = WifiLink(config_b, rng_router, mobility=mobility,
                      interference=combine(interference_b))
    return link_a, link_b
