"""Figure 2e: cross-link replication for 5 Mbps interactive streams.

Paper 90th-percentile worst-5s loss: cross-link 1.7% vs stronger 20.5%.
The diversity benefit must carry over to high-rate (video/gaming)
workloads.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure2e


def test_fig2e_highrate(benchmark):
    result = benchmark.pedantic(
        run_figure2e,
        kwargs={"n_runs": scaled(16, 80), "seed": 0,
                "duration_s": scaled(20, 120)},
        rounds=1, iterations=1)
    print("\n" + result.render())

    assert result.p90("cross-link") < result.p90("stronger") / 2.0
    assert result.p90("cross-link") < result.p90("better") / 2.0
