"""Section 6.3: duplication overhead and residual loss.

Paper: primary loss 1.97% -> residual 0.05% with DiversiFi; only 0.62% of
packets duplicated wastefully (vs ~100% for naive replication).
"""

from conftest import scaled

from repro.experiments.section6 import run_section63_overhead


def test_sec63_overhead(benchmark):
    result = benchmark.pedantic(
        run_section63_overhead,
        kwargs={"n_runs": scaled(30, 61), "seed0": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    # DiversiFi recovers the overwhelming majority of primary losses.
    assert result.residual_loss_pct < result.primary_loss_pct / 4.0
    # Wasteful duplication stays around a percent — two orders of
    # magnitude below naive 100% duplication.
    assert result.wasteful_duplication_pct < 3.0
    # Keepalives fire when the secondary has been idle for AKT=30 s; on
    # lossy runs the recovery visits themselves keep the association
    # fresh, so the average sits between ~1 and ~3 per 2-minute call.
    assert result.keepalive_switches_per_call >= 0.5
