"""Figure 2a: cross-link replication vs link selection.

Paper 90th-percentile worst-5s loss: stronger 37%, better 84%,
cross-link 4.4%.  Shape checks: cross-link dominates both selection
policies by a large factor; ``better`` (trial-and-settle) is the worst in
the tail because channel conditions are non-stationary.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure2a


def test_fig2a_selection(benchmark):
    result = benchmark.pedantic(
        run_figure2a,
        kwargs={"n_runs": scaled(60, 458), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    p90_cross = result.p90("cross-link")
    p90_stronger = result.p90("stronger")
    p90_better = result.p90("better")
    assert p90_cross < p90_stronger / 2.5     # paper factor: ~8x
    assert p90_cross < p90_better / 2.5
    assert p90_better >= p90_stronger * 0.8   # better is no saviour
