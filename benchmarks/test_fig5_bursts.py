"""Figure 5: burst-length distribution per strategy.

Paper (per 2-minute call): temporal loses 61.9 packets, 51.0 of them in
bursts; cross-link loses 25.6, only 15.9 in bursts.  Shape checks:
cross-link loses fewer packets AND a smaller bursty share than both the
baseline and temporal replication.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure5


def test_fig5_bursts(benchmark):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"n_runs": scaled(60, 458), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    lost = {name: stats[0] for name, stats in result.stats.items()}
    bursty = {name: stats[1] for name, stats in result.stats.items()}

    assert lost["cross-link"] < lost["temporal (100ms)"]
    assert lost["cross-link"] < lost["stronger"]
    assert bursty["cross-link"] < bursty["temporal (100ms)"]
    # Bursts carry most of temporal's losses but a smaller share of
    # cross-link's.
    if lost["cross-link"] > 0 and lost["temporal (100ms)"] > 0:
        assert (bursty["cross-link"] / lost["cross-link"]
                <= bursty["temporal (100ms)"] / lost["temporal (100ms)"]
                + 0.05)
