"""Ablations of the PSM retrieval strategy and 802.11e prioritization.

1. **Beacon-driven PSM vs just-in-time switching**: a client relying on
   stock TIM/PS-Poll retrieval waits on average half a beacon interval
   (~51 ms) — and up to a full one — before the secondary AP even starts
   delivering, regularly blowing the 100 ms budget that DiversiFi's
   Algorithm 1 is engineered around.
2. **WMM priority vs wireless loss** (Section 2's claim): prioritization
   removes queueing delay under congestion but cannot touch loss on the
   air; DiversiFi targets exactly the part WMM cannot.
"""

import numpy as np

from conftest import scaled

from repro.core.config import APConfig, G711_PROFILE
from repro.core.controller import run_session
from repro.core.packet import Packet
from repro.scenarios import build_office_pair
from repro.sim import Simulator
from repro.sim.random import RandomRouter
from repro.wifi.ap import AccessPoint
from repro.wifi.beacon import BeaconScheduler, StandardPsmClient
from repro.wifi.wmm import AC_BEST_EFFORT, AC_VOICE, WmmAccessPoint


def test_ablation_standard_psm_latency(benchmark):
    """Distribution of retrieval latency via stock beacon-driven PSM."""
    n = scaled(40, 100)

    def run():
        latencies = []
        for k in range(n):
            sim = Simulator()
            from tests.test_wifi_ap import PerfectLink
            ap = AccessPoint(sim, "ap", PerfectLink(),
                             APConfig(max_queue_len=50))
            scheduler = BeaconScheduler(sim, ap)
            got = []
            ap.set_receiver(lambda p, t, name: got.append(t))
            StandardPsmClient(sim, ap, scheduler)
            scheduler.start()
            arrival = 0.003 + k * (0.1024 / n)   # sweep beacon phase
            sim.call_at(arrival, ap.wired_arrival,
                        Packet(seq=0, send_time=arrival))
            sim.run(until=1.0)
            latencies.append(got[0] - arrival)
        return np.array(latencies)

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_ms = latencies.mean() * 1000
    p95_ms = np.percentile(latencies, 95) * 1000
    blown = float(np.mean(latencies > 0.100))
    print(f"\nstock PSM retrieval: mean {mean_ms:.1f} ms, "
          f"p95 {p95_ms:.1f} ms, {blown * 100:.0f}% exceed the 100 ms "
          f"budget (DiversiFi just-in-time switch: ~4 ms, Table 3)")

    assert mean_ms > 30.0          # ~half a beacon interval
    assert p95_ms > 90.0           # regularly near a full interval
    # DiversiFi's switch path (Table 3 AP row) is an order of magnitude
    # faster than the beacon-bound mean.
    assert mean_ms > 10 * 4.4


def test_ablation_wmm_vs_wireless_loss(benchmark):
    """WMM fixes congestion queueing; only DiversiFi fixes air loss."""
    n_voice = scaled(300, 1000)

    def run():
        from repro.channel.gilbert import GilbertParams
        from repro.channel.link import LinkConfig, WifiLink
        from repro.channel.mobility import Position, StaticPosition

        outcomes = {}
        for enabled in (False, True):
            # A congested AP: heavy best-effort backlog + outage-prone air.
            sim = Simulator()
            link = WifiLink(
                LinkConfig(name="w", ap_position=Position(0, 0),
                           gilbert=GilbertParams(
                               mean_good_s=3.0, mean_bad_s=0.3,
                               loss_good=0.0, loss_bad=0.98)),
                RandomRouter(5),
                mobility=StaticPosition(Position(8, 0)))
            ap = WmmAccessPoint(sim, link, queue_limit=200,
                                enabled=enabled)
            voice_delays, voice_delivered = [], 0
            sent_at = {}

            def receiver(p, t, name):
                nonlocal voice_delivered
                if p.flow_id == "rt0":
                    voice_delivered += 1
                    voice_delays.append(t - sent_at[p.seq])

            ap.set_receiver(receiver)
            # Background saturation.
            for i in range(4 * n_voice):
                sim.call_at(0.005 * i, ap.wired_arrival,
                            Packet(seq=100000 + i, send_time=0.005 * i,
                                   flow_id="web", size_bytes=1500))
            # The voice stream.
            for i in range(n_voice):
                t = 0.02 * i

                def send(seq=i, t=t):
                    sent_at[seq] = t
                    ap.wired_arrival(Packet(seq=seq, send_time=t,
                                            flow_id="rt0"))

                sim.call_at(t, send)
            sim.run(until=0.02 * n_voice + 2.0)
            outcomes[enabled] = (
                float(np.mean(voice_delays)) if voice_delays else 0.0,
                1.0 - voice_delivered / n_voice)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    fifo_delay, fifo_loss = outcomes[False]
    wmm_delay, wmm_loss = outcomes[True]
    print(f"\nFIFO: voice delay {fifo_delay * 1000:.1f} ms, "
          f"loss {fifo_loss * 100:.2f}%")
    print(f"WMM:  voice delay {wmm_delay * 1000:.1f} ms, "
          f"loss {wmm_loss * 100:.2f}%")

    # Priority slashes queueing delay under congestion (and protects
    # voice from queue overflow)...
    assert wmm_delay < fifo_delay / 2
    assert wmm_loss <= fifo_loss + 0.02
    # ...but substantial loss remains: the wireless-loss component that
    # no amount of prioritization can touch — DiversiFi's target.
    assert wmm_loss > 0.02
