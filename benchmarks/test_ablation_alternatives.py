"""Alternatives to cross-link replication: FEC coding and cross-technology
hedging (the paper's related-work baselines and future-work direction).

1. **FEC ([36]-style)**: XOR parity on a single link pays a constant 1/k
   airtime overhead yet cannot recover burst losses — cross-link
   replication must dominate it on bursty channels.
2. **WiFi + LTE hedging** (Section 4.4's future work): a cellular
   secondary provides diversity against WiFi-wide impairments (e.g. a
   microwave oven hitting every 2.4 GHz link), at higher latency.
"""

import numpy as np

from conftest import scaled

from repro.analysis.windows import worst_window_loss
from repro.channel.cellular import CellularConfig, CellularLink
from repro.core import strategies
from repro.core.config import G711_PROFILE, StreamProfile
from repro.core.fec import FecConfig, apply_fec, render_fec_run
from repro.core.packet import merge_traces
from repro.scenarios import build_scenario
from repro.sim.random import RandomRouter

PROFILE = StreamProfile(duration_s=60.0)


def test_ablation_fec_vs_cross_link(benchmark):
    n = scaled(12, 40)

    def run():
        fec_worst, cross_worst, fec_loss, cross_loss = [], [], [], []
        root = RandomRouter(21)
        for i in range(n):
            router = root.fork(f"fec-{i}")
            link_a, link_b = build_scenario("weak_link", router)
            data, parity = render_fec_run(link_a, PROFILE)
            fec_trace = apply_fec(data, parity, FecConfig(block_size=5))
            cross = merge_traces([data, link_b.generate_trace(PROFILE)])
            fec_worst.append(100 * worst_window_loss(fec_trace))
            cross_worst.append(100 * worst_window_loss(cross))
            fec_loss.append(fec_trace.loss_rate * 100)
            cross_loss.append(cross.loss_rate * 100)
        return (np.mean(fec_worst), np.mean(cross_worst),
                np.mean(fec_loss), np.mean(cross_loss))

    fec_w, cross_w, fec_l, cross_l = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\nFEC(k=5, +20% airtime): worst-5s {fec_w:.1f}%  "
          f"loss {fec_l:.2f}%")
    print(f"cross-link (0.6% dup):  worst-5s {cross_w:.1f}%  "
          f"loss {cross_l:.2f}%")

    # Cross-link beats FEC despite FEC's constant 20% overhead.
    assert cross_w < fec_w
    assert cross_l < fec_l


def test_ablation_cross_technology(benchmark):
    n = scaled(8, 25)

    def run():
        wifi_only, with_lte = [], []
        root = RandomRouter(22)
        for i in range(n):
            router = root.fork(f"xtech-{i}")
            # Microwave scenario: BOTH WiFi links share the oven's fate...
            link_a, link_b = build_scenario("microwave", router)
            lte = CellularLink(CellularConfig(), router)
            trace_a = link_a.generate_trace(PROFILE)
            trace_b = link_b.generate_trace(PROFILE)
            wifi_cross = merge_traces([trace_a, trace_b])
            xtech = merge_traces([trace_a, lte.generate_trace(PROFILE)])
            wifi_only.append(100 * worst_window_loss(wifi_cross))
            with_lte.append(100 * worst_window_loss(xtech))
        return np.mean(wifi_only), np.mean(with_lte)

    wifi_cross, xtech = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nWiFi+WiFi cross-link under microwave: worst-5s "
          f"{wifi_cross:.1f}%")
    print(f"WiFi+LTE  cross-tech under microwave: worst-5s {xtech:.1f}%")

    # The cellular secondary dodges the WiFi-wide impairment.
    assert xtech < wifi_cross + 0.5
