"""Ablation: can a longer trial save trial-and-settle selection?

The ``better`` policy samples both links, then settles (Section 4.1).
Figure 2a shows it losing badly in the tail; an obvious objection is
that 5 seconds is just too short a trial.  This sweep shows the problem
is non-stationarity, not trial length: tripling or sextupling the trial
barely moves the tail, and every trial length stays far above
cross-link replication.
"""

import numpy as np

from conftest import scaled

from repro.analysis.windows import worst_window_loss
from repro.core import strategies
from repro.experiments.section4 import wild_dataset


def test_ablation_better_trial_length(benchmark):
    n = scaled(40, 200)

    def run():
        runs = wild_dataset(n, seed=5)
        out = {}
        for trial_s in (5.0, 15.0, 30.0):
            worst = [100 * worst_window_loss(
                strategies.better(r, trial_s=trial_s)) for r in runs]
            out[trial_s] = float(np.percentile(worst, 90))
        out["stronger"] = float(np.percentile(
            [100 * worst_window_loss(strategies.stronger(r))
             for r in runs], 90))
        out["cross"] = float(np.percentile(
            [100 * worst_window_loss(strategies.cross_link(r))
             for r in runs], 90))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("")
    for key, p90 in results.items():
        label = (f"better, {key:.0f}s trial" if isinstance(key, float)
                 else key)
        print(f"  {label:22s} worst-5s p90 = {p90:.1f}%")

    # No trial length approaches replication.
    for trial_s in (5.0, 15.0, 30.0):
        assert results[trial_s] > 2.0 * results["cross"]
    # Longer trials buy little: the channel changes after any trial.
    assert results[30.0] > 0.4 * results[5.0]
