"""Figure 9: burst losses with DiversiFi vs single links.

Paper: the primary alone loses 44.3 packets per call (35.9 in bursts of
>= 2); DiversiFi loses 2.7 (0.9 in bursts) — both total losses and their
bursty share collapse.
"""

from conftest import scaled

from repro.experiments.section6 import run_figure9


def test_fig9_diversifi_bursts(benchmark):
    result = benchmark.pedantic(
        run_figure9,
        kwargs={"n_runs": scaled(30, 61), "seed0": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    lost = {name: s[0] for name, s in result.stats.items()}
    bursty = {name: s[1] for name, s in result.stats.items()}

    assert lost["DiversiFi"] < lost["primary"] / 4.0
    assert bursty["DiversiFi"] < bursty["primary"] / 4.0
    # On the primary, the majority of losses are bursty (paper: 36/44).
    assert bursty["primary"] > 0.5 * lost["primary"]
