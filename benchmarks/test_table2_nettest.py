"""Table 2: NetTest PCR by call category.

Paper: EW 5.22%, WW 7.98%, EW-Relayed 42.11%, WW-Relayed 62.66%,
overall 10.23%; 57.9% of users saw >= 1 poor call, 16.3% had PCR >= 20%.
Shape checks: WW > EW (the ~50% relative WiFi-vs-Azure gap), relayed
categories dramatically worse, overall PCR near 10%.
"""

from conftest import scaled

from repro.experiments.section3 import run_table2


def test_table2_nettest(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"seed": 0, "scale": 1.0 if scaled(0, 1) else 0.25},
        rounds=1, iterations=1)
    print("\n" + result.render())

    ds = result.dataset
    assert ds.pcr("WW") > ds.pcr("EW")
    assert ds.pcr("EW-Relayed") > 3 * ds.pcr("EW")
    assert ds.pcr("WW-Relayed") > 3 * ds.pcr("WW")
    assert 0.05 < ds.pcr() < 0.22          # paper: 10.23%
    assert result.frac_users_any_poor > 0.3
