"""Figure 8: single-NIC DiversiFi loss recovery in the office testbed.

Paper (61 runs): 90th-percentile worst-5s loss — primary 11.6%, secondary
52%, DiversiFi 1.2%; PCR — primary 4.9%, secondary 26.2%, DiversiFi 0%.
"""

from conftest import scaled

from repro.experiments.section6 import run_figure8


def test_fig8_diversifi_loss(benchmark):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={"n_runs": scaled(30, 61), "seed0": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    # DiversiFi's tail is far below either single link's.
    assert result.p90("DiversiFi") < result.p90("primary") / 2.5
    assert result.p90("DiversiFi") < result.p90("secondary") / 2.5
    # The secondary alone is the worst option.
    assert result.pcr["secondary"] > result.pcr["primary"]
    # DiversiFi eliminates (or nearly eliminates) poor calls.
    assert result.pcr["DiversiFi"] <= result.pcr["primary"] / 2.0
    assert result.pcr["DiversiFi"] < 3.0          # paper: 0%
