"""Figure 2c: cross-link vs temporal replication.

Paper 90th-percentile worst-5s loss: baseline 37.2%, temporal delta=0
close to baseline, temporal delta=100ms 23.7%, cross-link 4.4%.
Shape checks: larger temporal spacing helps; cross-link beats any
temporal spacing (loss bursts outlive the offset).
"""

from conftest import scaled

from repro.experiments.section4 import run_figure2c


def test_fig2c_temporal(benchmark):
    result = benchmark.pedantic(
        run_figure2c,
        kwargs={"n_runs": scaled(60, 458), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    p90_baseline = result.p90("baseline")
    p90_t0 = result.p90("temporal (0ms)")
    p90_t100 = result.p90("temporal (100ms)")
    p90_cross = result.p90("cross-link")
    assert p90_t100 <= p90_t0 + 1.0       # spacing helps
    assert p90_t100 <= p90_baseline       # replication helps at all
    assert p90_cross < p90_t100           # cross-link dominates temporal
    assert p90_cross < p90_baseline / 2.5
