"""Table 1: relative PCR deltas from the provider-year analysis.

Paper: EE +27.7%, EW +1.6%, WW -18.4% (row 1), improving to
EE +36.6%, EW +15.1%, WW -3.1% under the PC + balanced-subnet controls.
Shape checks: EE best / WW worst in the full population; the EE-vs-WW gap
survives every control.
"""

from conftest import scaled

from repro.experiments.section3 import run_table1


def test_table1_provider(benchmark):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"n_calls": scaled(120_000, 400_000), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    row1 = result.rows[0]
    assert row1.delta_ee_pct > 0          # Ethernet-both beats baseline
    assert row1.delta_ww_pct < 0          # WiFi-both trails baseline
    assert row1.delta_ee_pct > row1.delta_ew_pct > row1.delta_ww_pct
    # The WiFi gap persists under every control (paper: ~40% relative).
    for row in result.rows:
        assert row.delta_ee_pct - row.delta_ww_pct > 10.0
