"""Ablations of the client policy (Algorithm 1's constants).

1. **Temporal-offset sweep** (Section 4.2): the benefit of temporal
   replication grows with the spacing delta but saturates far above
   cross-link.
2. **Keepalive interval**: more frequent keepalives waste duplicates
   without improving recovery (recovery visits already refresh the
   association).
"""

import numpy as np

from conftest import scaled

from repro.analysis.windows import worst_window_loss
from repro.core import strategies
from repro.core.config import ClientConfig, G711_PROFILE
from repro.core.controller import run_session
from repro.experiments.section4 import wild_dataset
from repro.scenarios import build_office_pair


def test_ablation_temporal_delta_sweep(benchmark):
    n = scaled(30, 100)
    deltas = (0.0, 0.02, 0.05, 0.1)

    def sweep():
        runs = wild_dataset(n, seed=7, deltas=deltas)
        out = {}
        for delta in deltas:
            worst = [100 * worst_window_loss(strategies.temporal(r, delta))
                     for r in runs]
            out[delta] = float(np.percentile(worst, 90))
        out["cross"] = float(np.percentile(
            [100 * worst_window_loss(strategies.cross_link(r))
             for r in runs], 90))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("")
    for key, p90 in results.items():
        print(f"delta={key}: worst-5s p90={p90:.1f}%")

    # Larger spacing helps (monotone modulo noise)...
    assert results[0.1] <= results[0.0] + 2.0
    # ...but never reaches cross-link.
    assert results["cross"] < results[0.1]


def test_ablation_keepalive_interval(benchmark):
    n = scaled(8, 25)

    def sweep():
        out = {}
        for akt in (5.0, 30.0):
            cfg = ClientConfig(association_keepalive_timeout_s=akt)
            waste, keepalives = [], []
            for seed in range(n):
                r = run_session(build_office_pair, mode="diversifi-ap",
                                profile=G711_PROFILE, seed=seed,
                                client_config=cfg)
                waste.append(r.wasteful_duplication_rate() * 100)
                keepalives.append(r.client_stats.keepalive_switches)
            out[akt] = (float(np.mean(waste)), float(np.mean(keepalives)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("")
    for akt, (waste, keepalives) in results.items():
        print(f"AKT={akt:5.1f}s: waste={waste:.2f}% "
              f"keepalives/call={keepalives:.1f}")

    # A 5 s keepalive visits ~6x as often and wastes more airtime.
    assert results[5.0][1] > results[30.0][1] * 2
    assert results[5.0][0] > results[30.0][0]
