"""Ablations of the "Customized AP" design choices (Section 5.3.1).

1. **Head-drop vs tail-drop**: with a stock deep tail-drop PSM queue the
   client drains stale packets before reaching the one it needs, blowing
   the deadline and the airtime budget; head-drop with a short queue keeps
   exactly the recent packets.
2. **Queue length**: too short loses recovery opportunities (packet purged
   before the client arrives), too long wastes airtime; APQL = MTD/IPS = 5
   is the sweet spot the paper derives.
3. **Hardware-queue batch**: flushing many buffered frames per wake
   inflates wasteful duplication.
"""

import numpy as np

from conftest import scaled

from repro.core.config import APConfig, G711_PROFILE
from repro.core.controller import run_session
from repro.scenarios import build_office_pair


def _run_set(ap_config, n_runs, seed0=0):
    residual, waste, recovered = [], [], []
    for seed in range(seed0, seed0 + n_runs):
        r = run_session(build_office_pair, mode="diversifi-ap",
                        profile=G711_PROFILE, seed=seed,
                        ap_config=ap_config)
        residual.append(r.effective_trace().loss_rate * 100)
        waste.append(r.wasteful_duplication_rate() * 100)
        recovered.append(r.client_stats.recovered)
    return (float(np.mean(residual)), float(np.mean(waste)),
            float(np.mean(recovered)))


def test_ablation_head_vs_tail_drop(benchmark):
    n = scaled(10, 30)

    def run_both():
        head = _run_set(APConfig(drop_policy="head", max_queue_len=5), n)
        tail = _run_set(APConfig(drop_policy="tail", max_queue_len=64), n)
        return head, tail

    head, tail = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nhead-drop/5:  residual={head[0]:.2f}% waste={head[1]:.2f}% "
          f"recovered={head[2]:.1f}")
    print(f"tail-drop/64: residual={tail[0]:.2f}% waste={tail[1]:.2f}% "
          f"recovered={tail[2]:.1f}")

    # The stock tail-drop AP wastes far more airtime on stale packets.
    assert tail[1] > head[1] * 2.0
    # Head-drop recovers at least as well.
    assert head[0] <= tail[0] + 0.15


def test_ablation_queue_length(benchmark):
    n = scaled(8, 25)

    def sweep():
        out = {}
        for qlen in (1, 3, 5, 10):
            out[qlen] = _run_set(
                APConfig(drop_policy="head", max_queue_len=qlen), n)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("")
    for qlen, (residual, waste, recovered) in results.items():
        print(f"qlen={qlen:2d}: residual={residual:.2f}% "
              f"waste={waste:.2f}% recovered={recovered:.1f}")

    # A 1-deep queue purges packets before the just-in-time switch lands.
    assert results[1][2] < results[5][2]
    # Deeper queues waste more than the derived APQL=5.
    assert results[10][1] >= results[5][1] - 0.05


def test_ablation_hardware_batch(benchmark):
    n = scaled(8, 25)

    def sweep():
        return {batch: _run_set(
            APConfig(drop_policy="head", max_queue_len=5,
                     hardware_queue_batch=batch), n)
            for batch in (1, 3, 5)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("")
    for batch, (residual, waste, recovered) in results.items():
        print(f"batch={batch}: residual={residual:.2f}% "
              f"waste={waste:.2f}%")

    # Flushing more frames per wake inflates wasteful duplication.
    assert results[5][1] > results[1][1]
