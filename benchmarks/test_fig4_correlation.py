"""Figure 4: loss auto-correlation vs cross-link correlation.

Paper: within a link the loss process stays positively autocorrelated out
to a lag of 20 packets (400 ms), while the correlation between the two
links' loss processes is much smaller — the statistical foundation of
cross-link diversity.
"""

import numpy as np

from conftest import scaled

from repro.experiments.section4 import run_figure4


def test_fig4_correlation(benchmark):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"n_runs": scaled(60, 458), "seed": 0, "max_lag": 20},
        rounds=1, iterations=1)
    print("\n" + result.render())

    auto = np.array(result.autocorrelation)
    cross = np.array(result.crosscorrelation)
    # Auto-correlation dominates cross-correlation at every lag.
    assert np.all(auto >= cross - 0.01)
    assert auto[0] > 0.2              # strongly bursty at lag 1
    assert auto[-1] > cross[-1]       # still separated at lag 20 (400 ms)
    assert np.mean(cross) < 0.1       # links are nearly independent
