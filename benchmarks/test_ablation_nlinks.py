"""Ablation: how many links are worth hedging across?

Figure 1 shows a median of 6 connectable BSSIDs; the paper hedges across
two.  This sweep quantifies the diminishing returns: the second link buys
most of the diversity gain, the third and fourth add progressively less —
supporting the paper's primary+secondary design point.

Also places the make-before-break handoff baseline ([19]) between pure
selection and replication.
"""

import numpy as np
import pytest

from conftest import scaled

from repro.analysis.windows import worst_window_loss
from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.core.multilink import (
    best_of,
    diversity_gain_curve,
    make_before_break,
    render_multilink_run,
)
from repro.sim.random import RandomRouter

PROFILE = StreamProfile(duration_s=60.0)
N_LINKS = 4


def build_links(seed):
    """Four candidate links: the two 2.4 GHz ones (strongest RSSI) share
    band-wide interference, the 5 GHz ones are independent but weaker —
    so the sweep has real structure: the 2nd link is partially
    correlated with the 1st, the 3rd brings a fresh band."""
    from repro.channel.interference import MicrowaveOven
    router = RandomRouter(seed)
    client = StaticPosition(Position(0, 0))
    rng = router.stream("params")
    shared_24 = MicrowaveOven(
        router.stream("oven"),
        episode_rate_hz=1.0 / 40.0, episode_duration_s=25.0,
        penalty_db=30.0, floor_penalty_db=14.0)
    links = []
    for i in range(N_LINKS):
        on_24ghz = i < 2
        bad_frac = float(np.exp(rng.normal(np.log(0.02), 0.8)))
        mean_bad = float(rng.uniform(0.2, 0.8))
        mean_good = mean_bad * (1 - bad_frac) / max(bad_frac, 1e-4)
        distance = 4.0 + 4 * i   # RSSI ordering: 2.4 GHz links first
        links.append(WifiLink(
            LinkConfig(
                name=f"ap{i}", channel=(1 + 5 * i) if on_24ghz else 36 + i,
                band="2.4GHz" if on_24ghz else "5GHz",
                ap_position=Position(distance, float(i)),
                gilbert=GilbertParams(mean_good_s=mean_good,
                                      mean_bad_s=mean_bad,
                                      loss_good=0.0,
                                      loss_bad=float(rng.uniform(0.9, 1.0))),
                base_delay_s=0.0),
            router, mobility=client,
            interference=shared_24 if on_24ghz else None))
    return links


def test_ablation_number_of_links(benchmark):
    n_runs = scaled(10, 30)

    def run():
        runs = [render_multilink_run(build_links(seed), PROFILE)
                for seed in range(n_runs)]
        curve = diversity_gain_curve(
            runs, metric=lambda t: 100 * worst_window_loss(t))
        mbb = float(np.mean(
            [100 * worst_window_loss(make_before_break(r))
             for r in runs]))
        return curve, mbb

    curve, mbb = benchmark.pedantic(run, rounds=1, iterations=1)
    print("")
    for k in sorted(curve):
        print(f"  {k} link(s): mean worst-5s loss {curve[k]:6.2f}%")
    print(f"  make-before-break (1 active): {mbb:6.2f}%")

    # Monotone improvement with diminishing returns.
    assert curve[2] < curve[1]
    assert curve[1] - curve[2] >= curve[3] - curve[4] - 0.2
    # The second link captures the majority of the total diversity gain.
    total_gain = curve[1] - curve[N_LINKS]
    assert curve[1] - curve[2] > 0.5 * total_gain
    # Handoff helps but replication with the same two links helps more.
    assert curve[2] < mbb + 0.2


def test_controller_head_to_head(benchmark):
    """DiversiFi hedging vs QoE rerouting vs RAIL-style replication.

    The control-plane extension: the same 3-path topologies driven by
    the three strategies of :mod:`repro.experiments.controlplane`.
    Expected ordering — replication is the robustness ceiling (N x
    bandwidth), hedging recovers most of that headroom near 1x by
    opening the middlebox valve only under loss, pure QoE rerouting
    trails because it reacts after the counters show damage.
    """
    from repro.experiments.controlplane import run_controller_sweep

    n_runs = scaled(6, 24)

    result = benchmark.pedantic(
        lambda: run_controller_sweep(n_runs=n_runs, seed=5),
        rounds=1, iterations=1)
    print("")
    print(result.render())

    hedge = result.rows["hedge"]
    route = result.rows["qoe-route"]
    replicate = result.rows["replicate"]

    # Robustness ordering with a statistical margin: replication <=
    # hedging <= routing on worst-window loss.
    assert replicate["worst_pct"] <= hedge["worst_pct"] + 0.3
    assert hedge["worst_pct"] <= route["worst_pct"] + 0.3
    # Bandwidth cost ordering is structural, not statistical: routing
    # is 1x, replication is N x, hedging sits strictly between.
    assert route["copies_per_packet"] == pytest.approx(1.0, abs=0.02)
    assert replicate["copies_per_packet"] == pytest.approx(3.0, abs=0.02)
    assert 1.0 <= hedge["copies_per_packet"] <= 2.0
    # The valve actually works: hedging duplicates far less than
    # always-on replication but does open under loss.
    assert hedge["duplicates"] < 0.6 * replicate["duplicates"]
    assert hedge["mbox_starts"] > 0
    # Dynamic selection earns its reroutes; the hedge pair is static.
    assert route["reroutes"] > 0
    assert hedge["reroutes"] == 0
