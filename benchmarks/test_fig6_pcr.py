"""Figure 6: poor call rate by impairment, stronger vs cross-link.

Paper: overall PCR drops from 12.23% to 5.45% (2.24x); the improvement is
largest under client mobility and congestion (~3.5x) and smallest under
microwave interference (~1.2x), where all nearby links share the oven's
fate.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure6


def test_fig6_pcr(benchmark):
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"n_runs_per_scenario": scaled(15, 100), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    assert result.overall["cross-link"] < result.overall["stronger"]
    assert result.improvement_factor() > 1.5        # paper: 2.24x

    # Microwave (shared-fate) shows the smallest relative improvement.
    def factor(scenario):
        cross = result.pcr[scenario]["cross-link"]
        strong = result.pcr[scenario]["stronger"]
        if cross == 0:
            return float("inf")
        return strong / cross

    micro = factor("microwave")
    others = [factor(s) for s in ("mobility", "congestion", "weak_link")]
    assert micro <= max(others)
    assert result.pcr["microwave"]["cross-link"] > 0  # oven still hurts
