"""Figure 3: two weak links combine into one strong one.

Paper's example trace: link A at 4.3% loss, link B at 15.4%, cross-link
replication at 0.88% — the better link benefits from replication over a
significantly WORSE one, which pure selection can never achieve.
"""

from repro.experiments.section4 import run_figure3


def test_fig3_weak_links(benchmark):
    result = benchmark.pedantic(run_figure3, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    print("\n" + result.render())

    # Both links individually weak...
    assert result.loss_a_pct > 1.0
    assert result.loss_b_pct > result.loss_a_pct
    # ...yet the merge is far better than the better link alone.
    assert result.loss_combined_pct < result.loss_a_pct / 2.0
