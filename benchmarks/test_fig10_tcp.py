"""Figure 10: impact on a competing TCP flow.

Paper (26 runs): the CDF of throughput differences is centred near zero;
average TCP throughput is 3.9 Mbps with DiversiFi on vs 4.0 Mbps off —
only a 2.5% degradation, because the NIC leaves the DEF channel only for
milliseconds at a time.
"""

from conftest import scaled

from repro.experiments.section6 import run_figure10


def test_fig10_tcp(benchmark):
    result = benchmark.pedantic(
        run_figure10,
        kwargs={"n_runs": scaled(12, 26), "seed0": 100},
        rounds=1, iterations=1)
    print("\n" + result.render())

    # Degradation stays in the single-digit percent range (paper: 2.5%).
    assert result.degradation_pct() < 8.0
    # And the flow still achieves most of the channel.
    assert result.mean_with > 0.7 * result.mean_without
