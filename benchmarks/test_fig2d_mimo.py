"""Figure 2d: cross-link replication on top of 802.11ac-style MIMO.

Paper: even with PHY-layer spatial diversity, MIMO+cross-link has a lower
worst-window loss than MIMO+selection — shadowing and interference hit
all co-channel spatial streams at once, so only cross-link diversity
removes them.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure2d


def test_fig2d_mimo(benchmark):
    result = benchmark.pedantic(
        run_figure2d,
        kwargs={"n_runs": scaled(30, 44), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    assert (result.p90("MIMO + cross-link")
            < result.p90("MIMO + stronger"))
    assert (result.p90("MIMO + cross-link")
            < result.p90("MIMO + better"))
