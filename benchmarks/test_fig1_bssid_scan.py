"""Figure 1: connectable BSSIDs and distinct channels per location.

Paper: median 6 BSSIDs (range 2-13), median 4 distinct channels (2-9);
~30% of residential clients see more than one BSSID.
"""

import numpy as np

from repro.experiments.section3 import run_figure1


def test_fig1_bssid_scan(benchmark):
    result = benchmark.pedantic(run_figure1, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    print("\n" + result.render())

    bssids = result.bssid_counts
    channels = result.channel_counts
    assert min(bssids) >= 2                      # everywhere multi-AP
    assert 4 <= np.median(bssids) <= 8           # paper: 6
    assert 2 <= np.median(channels) <= 6         # paper: 4
    assert all(c <= b for b, c in zip(bssids, channels))
    assert 0.15 < result.residential_multi_fraction < 0.45  # paper ~30%
