"""Figure 2b: cross-link replication vs Divert (fine-grained selection).

Paper 90th-percentile worst-5s loss: Divert 10.5% vs cross-link 4.4%.
Divert's switches only help future packets; diversity recovers the lost
ones too, so cross-link must dominate.
"""

from conftest import scaled

from repro.experiments.section4 import run_figure2b


def test_fig2b_divert(benchmark):
    result = benchmark.pedantic(
        run_figure2b,
        kwargs={"n_runs": scaled(60, 458), "seed": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    assert result.p90("cross-link") < result.p90("divert")
    # Divert still beats doing nothing: compare medians loosely.
    assert result.cdf("divert").median <= result.cdf("cross-link").median + 25
