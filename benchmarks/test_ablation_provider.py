"""Robustness ablations of the Table 1 synthetic-population analysis.

The Table 1 pipeline must not owe its signs to modelling artifacts:

1. **Response bias off** — the paper worries users rate more readily
   after bad calls; the EE/WW ordering must survive removing that bias.
2. **Device penalty off** — with perfect hardware everywhere, the WiFi
   gap must *remain* (it is a network effect), while the PC-subset row
   stops differing from the full population.
"""

import numpy as np

from conftest import scaled

from repro.studies.provider import analyze_table1, synthesize_provider_year


def rows_with(n_calls, seed=0, **overrides):
    dataset = synthesize_provider_year(n_calls=n_calls, seed=seed,
                                       **overrides)
    return analyze_table1(dataset)


def test_ablation_response_bias(benchmark):
    n = scaled(80_000, 250_000)

    def run():
        biased = rows_with(n)
        unbiased = rows_with(n, response_bias=False)
        return biased, unbiased

    biased, unbiased = benchmark.pedantic(run, rounds=1, iterations=1)
    for rows, label in ((biased, "biased"), (unbiased, "unbiased")):
        row1 = rows[0]
        print(f"\n{label}: EE {row1.delta_ee_pct:+.1f} / "
              f"EW {row1.delta_ew_pct:+.1f} / WW {row1.delta_ww_pct:+.1f}")
        # The WiFi gap is not an artifact of who chooses to rate.
        assert row1.delta_ee_pct > 0
        assert row1.delta_ww_pct < 0


def test_ablation_device_penalty(benchmark):
    n = scaled(80_000, 250_000)

    def run():
        normal = rows_with(n)
        no_device = rows_with(n, device_penalty_scale=1e-6)
        return normal, no_device

    normal, no_device = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nwith device effect:    row1 WW "
          f"{normal[0].delta_ww_pct:+.1f}%, PC row EE "
          f"{normal[2].delta_ee_pct:+.1f}%")
    print(f"without device effect: row1 WW "
          f"{no_device[0].delta_ww_pct:+.1f}%, PC row EE "
          f"{no_device[2].delta_ee_pct:+.1f}%")

    # The WiFi gap is a *network* effect: it survives perfect hardware.
    assert no_device[0].delta_ee_pct > 0
    assert no_device[0].delta_ww_pct < 0
    # Without a device effect the PC control stops buying improvement
    # over the full population (rows converge).
    gap_with = abs(normal[2].delta_ee_pct - normal[0].delta_ee_pct)
    gap_without = abs(no_device[2].delta_ee_pct
                      - no_device[0].delta_ee_pct)
    assert gap_without <= gap_with + 3.0


def test_ablation_wifi_penalty_scaling(benchmark):
    """The EE-vs-WW gap must scale with the injected WiFi impairment —
    the dial the whole synthesis turns on."""
    n = scaled(60_000, 200_000)

    def run():
        gaps = {}
        for wifi_median in (0.001, 0.005, 0.015):
            rows = rows_with(n, wifi_loss_median=wifi_median)
            gaps[wifi_median] = (rows[0].delta_ee_pct
                                 - rows[0].delta_ww_pct)
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print("")
    for median, gap in gaps.items():
        print(f"wifi loss median {median * 100:.1f}%: EE-WW gap "
              f"{gap:.1f} points")
    values = [gaps[k] for k in sorted(gaps)]
    assert values[0] < values[-1]
