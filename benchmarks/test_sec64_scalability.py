"""Section 6.4: middlebox scalability.

Paper: retrieval delay grows very gradually with concurrent replicated
streams — only ~1.1 ms extra at 1000 streams, so one middlebox serves a
large WiFi deployment.
"""

from conftest import scaled

from repro.experiments.section6 import run_section64_scalability


def test_sec64_scalability(benchmark):
    result = benchmark.pedantic(
        run_section64_scalability,
        kwargs={"loads": (0, 10, 100, 500, 1000),
                "n_events": scaled(10, 20), "seed0": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    delays = result.total_delay_ms
    # Monotone-ish growth, tiny slope.
    assert delays[-1] > delays[0]
    assert 0.5 < result.extra_at_max_load_ms() < 2.0   # paper: ~1.1 ms
