"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure and prints the rendered
rows (run with ``-s`` to see them).  Run counts default to a scaled-down
set so the whole suite finishes in minutes; set ``REPRO_FULL=1`` in the
environment to run at the paper's full scale (458 wild calls, 61 office
runs, 9224 NetTest calls...).
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"


def scaled(fast: int, full: int) -> int:
    """Pick the run count for the current scale."""
    return full if FULL else fast


@pytest.fixture(scope="session")
def scale_info():
    return {"full": FULL}
