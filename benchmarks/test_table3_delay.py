"""Table 3: recovery-delay breakdown, AP buffering vs middlebox.

Paper (100 switch events): AP total 2.8 ms (2.3 switching + 0.5 network);
middlebox total 5.2 ms (2.3 + 2.0 + 0.9) — the middlebox adds ~2.4 ms,
acceptable for real-time streaming.
"""

from conftest import scaled

from repro.experiments.section6 import run_table3


def test_table3_delay(benchmark):
    result = benchmark.pedantic(
        run_table3,
        kwargs={"n_events": scaled(50, 100), "seed0": 0},
        rounds=1, iterations=1)
    print("\n" + result.render())

    # The middlebox path costs a few extra ms over the AP path...
    extra = result.mbox_total_ms - result.ap_total_ms
    assert 1.0 < extra < 6.0       # paper: +2.4 ms
    # ...both stay well within the 100 ms real-time budget.
    assert result.mbox_total_ms < 15.0
    # Channel switching dominates both paths.
    assert result.ap_switching_ms > result.ap_network_ms
