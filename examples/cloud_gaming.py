#!/usr/bin/env python3
"""Cloud gaming over WiFi: stalls with and without link hedging.

The paper's intro motivates DiversiFi with cloud gaming as much as with
VoIP: a rendered frame is useless unless *every* packet of it arrives
within the interaction deadline, so even sparse packet loss translates
into visible stalls.  This script streams a 60 fps game feed over the
wild channel scenarios and reports frame failures and stalls-per-minute
with single-link selection vs cross-link replication.

Run:  python examples/cloud_gaming.py [n_runs]
"""

import sys

import numpy as np

from repro.core.packet import merge_traces
from repro.scenarios import build_scenario
from repro.sim.random import RandomRouter
from repro.traffic.gaming import (
    GameStreamProfile,
    packetize_game_stream,
    score_game_session,
    transmit_game_stream,
)

PROFILE = GameStreamProfile(duration_s=20.0)
SCENARIOS = ("weak_link", "congestion", "mobility")


def main():
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    root = RandomRouter(11)
    print(f"Streaming {PROFILE.duration_s:.0f} s of 60 fps game video "
          f"({n_runs} run(s) per scenario)...\n")
    print(f"{'scenario':12s} {'mode':12s} {'failed frames':>13s} "
          f"{'stalls/min':>10s} {'longest stall':>13s}")

    for scenario in SCENARIOS:
        singles, hedged = [], []
        for i in range(n_runs):
            router = root.fork(f"game-{scenario}-{i}")
            link_a, link_b = build_scenario(scenario, router)
            stream = packetize_game_stream(
                PROFILE, router.stream("frames"))
            trace_a = transmit_game_stream(stream, link_a)
            trace_b = transmit_game_stream(stream, link_b)
            singles.append(score_game_session(stream, trace_a))
            hedged.append(score_game_session(
                stream, merge_traces([trace_a, trace_b])))
        for label, scores in (("single link", singles),
                              ("cross-link", hedged)):
            failed = np.mean([s.frame_failure_rate for s in scores])
            stalls = np.mean([s.stalls_per_minute for s in scores])
            longest = max(s.longest_stall_ms for s in scores)
            print(f"{scenario:12s} {label:12s} {failed * 100:12.2f}% "
                  f"{stalls:10.1f} {longest:10.0f} ms")
        print()

    print("A frame fails if ANY of its packets misses the 50 ms deadline,")
    print("so gaming amplifies packet loss ~10x relative to audio — and")
    print("cross-link diversity pays off correspondingly more.")


if __name__ == "__main__":
    main()
