#!/usr/bin/env python3
"""Middlebox deployment: DiversiFi with completely stock APs.

Demonstrates the Figure 7(c) architecture: an SDN switch replicates the
real-time flow — one copy to the client via its primary AP, one to a
Click-style middlebox that buffers it in a shallow head-drop queue.  When
the client misses a packet on the primary link it switches to the
(unmodified) secondary AP, sends the middlebox a *start* message, collects
the buffered packets, sends *stop*, and switches back.

The script compares AP-mode and middlebox-mode recovery on the same
channel conditions and then sweeps middlebox tenancy to show the
Section 6.4 scalability result.

Run:  python examples/middlebox_deployment.py
"""

from repro.core.config import G711_PROFILE
from repro.core.controller import run_session
from repro.experiments.section6 import run_section64_scalability
from repro.scenarios import build_office_pair


def run_mode(mode, seed, **kwargs):
    result = run_session(build_office_pair, mode=mode,
                         profile=G711_PROFILE, seed=seed, **kwargs)
    trace = result.effective_trace()
    return result, trace


def main():
    seed = 5
    print("Same office channel, three deployments:\n")

    base, base_trace = run_mode("primary-only", seed)
    print(f"no DiversiFi        : loss={base_trace.loss_rate * 100:.2f}%")

    ap, ap_trace = run_mode("diversifi-ap", seed)
    print(f"customized AP       : loss={ap_trace.loss_rate * 100:.2f}%  "
          f"(recovered {ap.client_stats.recovered}, "
          f"waste {ap.wasteful_duplication_rate() * 100:.2f}%)")

    mbox, mbox_trace = run_mode("diversifi-mbox", seed)
    stats = mbox.middlebox.stats
    print(f"stock AP + middlebox: loss={mbox_trace.loss_rate * 100:.2f}%  "
          f"(recovered {mbox.client_stats.recovered}, "
          f"start/stop msgs {stats.start_messages}/{stats.stop_messages}, "
          f"buffered {stats.buffered}, head-drops {stats.buffer_drops})")

    print("\nBoth deployments recover nearly all primary-link losses; the")
    print("middlebox adds a couple of milliseconds per retrieval but needs")
    print("no AP changes at all (Table 3).\n")

    print("Middlebox scalability (Section 6.4):")
    sweep = run_section64_scalability(loads=(0, 100, 1000), n_events=10)
    for load, ms in zip(sweep.loads, sweep.total_delay_ms):
        print(f"  {load:5d} concurrent streams -> retrieval delay "
              f"{ms:.2f} ms")
    print(f"  extra delay at 1000 streams: "
          f"{sweep.extra_at_max_load_ms():.2f} ms (paper: ~1.1 ms)")


if __name__ == "__main__":
    main()
