#!/usr/bin/env python3
"""Coexistence: what does DiversiFi cost a competing TCP download?

The DiversiFi NIC leaves its default channel only for a few milliseconds
per recovery or keepalive, so a concurrent TCP flow on the DEF link
barely notices (the paper measured a 2.5% average throughput hit).

This script runs paired sessions — DiversiFi on vs off — over identical
office channels and prints both the VoIP improvement and the TCP cost.

Run:  python examples/coexistence_with_tcp.py [n_runs]
"""

import sys

import numpy as np

from repro.core.config import G711_PROFILE
from repro.core.controller import run_session
from repro.scenarios import build_office_pair
from repro.voice.pcr import score_call


def main():
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"Running {n_runs} paired sessions (DiversiFi on/off) with a "
          f"greedy TCP flow on the DEF link...\n")
    print(f"{'seed':>4s}  {'VoIP loss off':>13s}  {'VoIP loss on':>12s}  "
          f"{'TCP off':>8s}  {'TCP on':>8s}")

    tcp_on, tcp_off, mos_on, mos_off = [], [], [], []
    for seed in range(200, 200 + n_runs):
        off = run_session(build_office_pair, mode="primary-only",
                          profile=G711_PROFILE, seed=seed, with_tcp=True)
        on = run_session(build_office_pair, mode="diversifi-ap",
                         profile=G711_PROFILE, seed=seed, with_tcp=True)
        loss_off = off.effective_trace().loss_rate * 100
        loss_on = on.effective_trace().loss_rate * 100
        print(f"{seed:4d}  {loss_off:12.2f}%  {loss_on:11.2f}%  "
              f"{off.tcp_stats.throughput_mbps:6.2f} M  "
              f"{on.tcp_stats.throughput_mbps:6.2f} M")
        tcp_on.append(on.tcp_stats.throughput_mbps)
        tcp_off.append(off.tcp_stats.throughput_mbps)
        mos_on.append(score_call(on.effective_trace()).mos)
        mos_off.append(score_call(off.effective_trace()).mos)

    deg = 100 * (1 - np.mean(tcp_on) / np.mean(tcp_off))
    print(f"\nTCP throughput: {np.mean(tcp_off):.2f} Mbps without "
          f"DiversiFi, {np.mean(tcp_on):.2f} Mbps with -> "
          f"{deg:.1f}% degradation (paper: 2.5%)")
    print(f"VoIP MOS:       {np.mean(mos_off):.2f} without, "
          f"{np.mean(mos_on):.2f} with DiversiFi")


if __name__ == "__main__":
    main()
