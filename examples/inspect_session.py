#!/usr/bin/env python3
"""Inspect a session: what does the DiversiFi client actually do?

Attaches a structured event log to one call over a lossy office channel
and prints the timeline of loss declarations, just-in-time switches,
recoveries and keepalives — followed by a per-event-type summary and the
fitted Gilbert model of the underlying channel (the calibration path a
user would run on their own recorded traces).

Run:  python examples/inspect_session.py [seed]
"""

import sys

from repro.analysis.fitting import fit_gilbert
from repro.core.config import StreamProfile
from repro.core.controller import run_session
from repro.scenarios import build_office_pair
from repro.sim.tracing import EventLog


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    profile = StreamProfile(duration_s=30.0)
    log = EventLog()

    result = run_session(build_office_pair, mode="diversifi-ap",
                         profile=profile, seed=seed, event_log=log)

    print("Client event timeline (last 25 events):\n")
    print(log.render_timeline(limit=25))

    print("\nEvent summary:")
    for kind, count in sorted(log.counts().items()):
        print(f"  {kind:22s} {count}")

    trace = result.effective_trace()
    print(f"\nCall outcome: loss {trace.loss_rate * 100:.2f}%, "
          f"{result.client_stats.recovered} recovered, "
          f"{result.wasteful_duplicates} wasteful duplicates")

    # What would this channel look like if you fitted it from the trace?
    primary_only = run_session(build_office_pair, mode="primary-only",
                               profile=profile, seed=seed)
    fit = fit_gilbert(primary_only.effective_trace(),
                      spacing_s=profile.inter_packet_spacing_s)
    print(f"\nFitted Gilbert model of the primary channel: {fit}")
    print("(Use repro.analysis.fitting to calibrate the simulator from")
    print(" your own packet traces.)")


if __name__ == "__main__":
    main()
