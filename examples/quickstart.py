#!/usr/bin/env python3
"""Quickstart: one simulated VoIP call, with and without DiversiFi.

Builds the paper's office testbed (two APs at diagonal ends of a
30 m x 15 m floor), runs a 2-minute G.711 call three ways — pinned to the
primary link, pinned to the secondary, and with the single-NIC DiversiFi
client switching between them — and prints loss, burst, and
poor-call-quality numbers for each.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.analysis.bursts import burst_lengths
from repro.analysis.windows import worst_window_loss
from repro.core.config import G711_PROFILE
from repro.core.controller import run_session
from repro.scenarios import build_office_pair
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call


def describe(label, result):
    trace = result.effective_trace()          # 100 ms deadline accounting
    score = score_call(trace)
    bursts = burst_lengths(trace)
    quality = "POOR" if score.mos < POOR_MOS_THRESHOLD else "good"
    print(f"{label:14s} loss={trace.loss_rate * 100:6.2f}%  "
          f"worst-5s={worst_window_loss(trace) * 100:6.2f}%  "
          f"bursts={len(bursts):3d}  MOS={score.mos:.2f} ({quality})")
    return result


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"Simulating a 2-minute VoIP call in the office testbed "
          f"(seed={seed})\n")

    describe("primary only", run_session(
        build_office_pair, mode="primary-only",
        profile=G711_PROFILE, seed=seed))
    describe("secondary only", run_session(
        build_office_pair, mode="secondary-only",
        profile=G711_PROFILE, seed=seed))
    diversifi = describe("DiversiFi", run_session(
        build_office_pair, mode="diversifi-ap",
        profile=G711_PROFILE, seed=seed))

    stats = diversifi.client_stats
    print(f"\nDiversiFi internals:")
    print(f"  losses declared on primary : {stats.losses_declared}")
    print(f"  recovered via secondary    : {stats.recovered}")
    print(f"  recovery switches          : {stats.recovery_switches}")
    print(f"  keepalive switches         : {stats.keepalive_switches}")
    print(f"  wasteful duplicates        : {diversifi.wasteful_duplicates} "
          f"({diversifi.wasteful_duplication_rate() * 100:.2f}% of the "
          f"stream; naive replication would duplicate 100%)")
    print(f"  time off the primary       : "
          f"{diversifi.off_channel_time_s * 1000:.0f} ms of "
          f"{G711_PROFILE.duration_s:.0f} s")


if __name__ == "__main__":
    main()
