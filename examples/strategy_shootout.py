#!/usr/bin/env python3
"""Strategy shootout: selection vs temporal vs cross-link replication.

Reproduces Section 4's analysis in miniature: render N two-NIC calls over
the wild scenario mix (weak links, mobility, microwave ovens, congestion),
then replay every strategy over the identical channel recordings and
compare worst-window loss and poor-call rate.

Run:  python examples/strategy_shootout.py [n_runs]
"""

import sys

import numpy as np

from repro.analysis.windows import worst_window_loss
from repro.core import strategies
from repro.core.config import G711_PROFILE
from repro.scenarios import generate_wild_runs, scenario_counts
from repro.voice.pcr import POOR_MOS_THRESHOLD, score_call

STRATEGIES = {
    "stronger (RSSI pick)": strategies.stronger,
    "better (5s trial)": strategies.better,
    "divert (H=1,T=1)": strategies.divert,
    "temporal +100ms": lambda r: strategies.temporal(r, 0.1),
    "cross-link": strategies.cross_link,
}


def main():
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"Rendering {n_runs} two-NIC calls over the wild mix...")
    runs = generate_wild_runs(n_runs, G711_PROFILE, seed=3,
                              temporal_deltas=(0.1,))
    print(f"scenarios: {scenario_counts(runs)}\n")

    print(f"{'strategy':22s} {'median':>8s} {'p90':>8s} "
          f"{'PCR':>7s}   (worst-5s loss %)")
    for name, fn in STRATEGIES.items():
        worst = [100 * worst_window_loss(fn(run)) for run in runs]
        poor = [score_call(fn(run)).mos < POOR_MOS_THRESHOLD
                for run in runs]
        print(f"{name:22s} {np.median(worst):8.2f} "
              f"{np.percentile(worst, 90):8.2f} "
              f"{100 * np.mean(poor):6.1f}%")

    print("\nThe ordering to look for (paper Figure 2 / Figure 6):")
    print("  cross-link < divert < temporal < stronger <= better,")
    print("  with cross-link cutting PCR by >2x versus stronger.")


if __name__ == "__main__":
    main()
