#!/usr/bin/env python3
"""The Section 3 measurement studies, end to end.

Regenerates (at reduced scale — pass --full for paper scale):

* Table 1 — is WiFi a significant cause of poor calls in a year of
  provider data?  (Subset analysis over EE/EW/WW call categories.)
* Table 2 — the NetTest distributed testbed: 9224 simulated calls
  between 274 WiFi clients and 10 Azure nodes, direct and relayed.
* Figure 1 — how many connectable BSSIDs/channels a client sees at
  enterprise and public venues.

Run:  python examples/measurement_studies.py [--full]
"""

import sys

from repro.experiments.section3 import run_figure1, run_table1, run_table2


def main():
    full = "--full" in sys.argv

    print("=" * 70)
    result1 = run_table1(n_calls=400_000 if full else 100_000)
    print(result1.render())
    print(f"(baseline PCR {result1.overall_pcr * 100:.1f}% over "
          f"{result1.n_rated_calls} rated calls)")

    print("\n" + "=" * 70)
    result2 = run_table2(scale=1.0 if full else 0.2)
    print(result2.render())

    print("\n" + "=" * 70)
    result3 = run_figure1()
    print(result3.render())


if __name__ == "__main__":
    main()
