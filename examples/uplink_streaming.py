#!/usr/bin/env python3
"""Uplink DiversiFi: the direction the paper deferred.

On the uplink the client *transmits*, so the missing MAC ACK reveals a
loss instantly — no network-side buffering, no loss-detection timers, no
wasteful duplication.  The client simply retransmits the failed packet
over the secondary link and returns.

This script runs paired uplink calls (hedging on/off) over increasingly
hostile primary links and prints the recovery.

Run:  python examples/uplink_streaming.py
"""

from repro.channel.gilbert import GilbertParams
from repro.channel.link import LinkConfig, WifiLink
from repro.channel.mobility import Position, StaticPosition
from repro.core.config import StreamProfile
from repro.core.uplink import run_uplink_session

PROFILE = StreamProfile(duration_s=30.0)


def factory(outage_fraction):
    """Two uplink candidates; the primary spends ``outage_fraction`` of
    its time in near-total outage."""
    mean_bad = 0.4
    mean_good = mean_bad * (1 - outage_fraction) / max(outage_fraction,
                                                       1e-6)
    primary_gilbert = GilbertParams(
        mean_good_s=mean_good, mean_bad_s=mean_bad,
        loss_good=0.0, loss_bad=0.995)
    clean = GilbertParams(mean_good_s=1e9, mean_bad_s=0.01,
                          loss_good=0.0, loss_bad=0.0)

    def build(router):
        client = StaticPosition(Position(0, 0))
        primary = WifiLink(
            LinkConfig(name="up-primary", ap_position=Position(7, 0),
                       gilbert=primary_gilbert, base_delay_s=0.0),
            router, mobility=client)
        secondary = WifiLink(
            LinkConfig(name="up-secondary", ap_position=Position(11, 0),
                       gilbert=clean, base_delay_s=0.0),
            router, mobility=client)
        return primary, secondary

    return build


def main():
    print("Uplink streaming, 30 s G.711 calls "
          "(loss within the 100 ms deadline):\n")
    print(f"{'primary outage':>14s}  {'plain loss':>10s}  "
          f"{'hedged loss':>11s}  {'retx':>5s}  {'switches':>8s}")
    for outage in (0.01, 0.03, 0.08):
        build = factory(outage)
        plain = run_uplink_session(build, PROFILE, seed=7, enabled=False)
        hedged = run_uplink_session(build, PROFILE, seed=7, enabled=True)
        plain_loss = plain.trace.effective_trace(0.100).loss_rate
        hedged_loss = hedged.trace.effective_trace(0.100).loss_rate
        print(f"{outage * 100:13.0f}%  {plain_loss * 100:9.2f}%  "
              f"{hedged_loss * 100:10.2f}%  "
              f"{hedged.stats.retransmissions:5d}  "
              f"{hedged.stats.switches:8d}")

    print("\nEvery retransmission is loss-triggered: the uplink needs no")
    print("proactive duplication at all, matching the paper's intuition")
    print("that the uplink direction is the easy one (Section 5).")


if __name__ == "__main__":
    main()
